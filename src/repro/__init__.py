"""repro — reproduction of "Performance and Power Solutions for Caches
Using 8T SRAM Cells" (Farahani & Baniasadi, MICRO 2012).

Public API quick tour::

    from repro import (
        BASELINE_GEOMETRY, get_profile, generate_trace,
        compare_techniques, run_campaign, ExperimentConfig,
    )

    trace = generate_trace(get_profile("bwaves"), 50_000)
    comparison = compare_techniques(trace, BASELINE_GEOMETRY)
    print(comparison.access_reduction("wg"))      # ~0.47 for bwaves
    print(comparison.access_reduction("wg_rb"))   # a bit higher

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.cache import BASELINE_GEOMETRY, CacheGeometry, SetAssociativeCache
from repro.core import (
    CONTROLLER_NAMES,
    ConventionalController,
    RMWController,
    WGRBController,
    WriteGroupingController,
    make_controller,
)
from repro.sim import (
    CheckpointStore,
    ComparisonResult,
    ExecutionPolicy,
    ExperimentConfig,
    FailedRow,
    RetryPolicy,
    Simulator,
    compare_techniques,
    execution_policy,
    run_campaign,
    run_campaign_parallel,
    run_geometry_sweep,
    run_simulation,
)
from repro.obs import (
    ChromeTraceSink,
    IntervalSampler,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    Telemetry,
    Timer,
    span,
)
from repro.trace import (
    AccessType,
    MemoryAccess,
    collect_statistics,
    materialize,
)
from repro.workload import (
    SPEC2006_PROFILES,
    benchmark_names,
    generate_trace,
    get_profile,
    run_kernel,
)

__version__ = "1.0.0"

__all__ = [
    "BASELINE_GEOMETRY",
    "CacheGeometry",
    "SetAssociativeCache",
    "CONTROLLER_NAMES",
    "ConventionalController",
    "RMWController",
    "WriteGroupingController",
    "WGRBController",
    "make_controller",
    "Simulator",
    "run_simulation",
    "ComparisonResult",
    "compare_techniques",
    "ExperimentConfig",
    "run_campaign",
    "run_campaign_parallel",
    "run_geometry_sweep",
    "RetryPolicy",
    "FailedRow",
    "ExecutionPolicy",
    "execution_policy",
    "CheckpointStore",
    "Telemetry",
    "MetricsRegistry",
    "IntervalSampler",
    "NullSink",
    "JsonlSink",
    "ChromeTraceSink",
    "Timer",
    "span",
    "AccessType",
    "MemoryAccess",
    "collect_statistics",
    "materialize",
    "SPEC2006_PROFILES",
    "benchmark_names",
    "get_profile",
    "generate_trace",
    "run_kernel",
    "__version__",
]
