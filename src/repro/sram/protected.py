"""ECC-protected SRAM array with scrubbing.

Wraps :class:`SRAMArray` so that every stored word is a Hamming(72,64)
SEC-DED codeword: writes encode, reads decode (correcting single-bit
upsets in place), and a background *scrub* walks rows to repair latent
errors before a second strike can compound them — standard practice for
low-voltage caches and the operational context of the paper's
reliability premise.

Strikes are injected at logical positions via :meth:`inject_bit_flips`,
which the reliability example/benchmarks drive through
:class:`repro.sram.faults.FaultInjector`-style burst geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.sram.array import SRAMArray
from repro.sram.ecc import CODEWORD_BITS, decode, encode
from repro.sram.geometry import ArrayGeometry
from repro.errors import ValidationError

__all__ = ["ECCProtectedArray", "ScrubReport"]


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    rows_scrubbed: int = 0
    corrected_words: int = 0
    uncorrectable_words: int = 0
    failed_positions: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.uncorrectable_words == 0


class ECCProtectedArray:
    """SEC-DED protected word storage over a behavioural array.

    The backing :class:`SRAMArray` stores 72-bit codewords; this wrapper
    keeps the data/codeword translation and the error accounting.
    """

    def __init__(self, geometry: ArrayGeometry) -> None:
        self.geometry = geometry
        self._array = SRAMArray(geometry)
        # Rows start as encoded zeros, matching FunctionalMemory's
        # zero-filled initial state.
        zero = encode(0)
        for row in range(geometry.rows):
            self._array.load_row(row, [zero] * geometry.words_per_row)
        self.corrected_reads = 0
        self.uncorrectable_reads = 0

    @property
    def events(self):
        """Circuit event log of the backing array."""
        return self._array.events

    # -- data path -------------------------------------------------------------

    def write_word(self, row: int, word_index: int, value: int) -> None:
        """Encode and store one word (a legal partial write via RMW)."""
        self._array.read_modify_write(row, {word_index: encode(value)})

    def write_row(self, row: int, values: Sequence[int]) -> None:
        """Encode and store a full row (the Set-Buffer write-back path)."""
        self._array.write_row(row, [encode(value) for value in values])

    def read_word(self, row: int, word_index: int) -> int:
        """Read one word, transparently correcting a single-bit upset.

        Correction also repairs the stored codeword (read-repair), so a
        corrected error does not linger.  Raises ``ValueError`` on an
        uncorrectable word — data loss, which callers surface.
        """
        codeword = self._array.read_words(row, [word_index])[0]
        result = decode(codeword)
        if result.status == "corrected":
            self.corrected_reads += 1
            self._array.read_modify_write(row, {word_index: encode(result.data)})
        elif result.status == "uncorrectable":
            self.uncorrectable_reads += 1
            raise ValidationError(
                f"uncorrectable ECC error at row {row} word {word_index}"
            )
        return result.data

    # -- faults and scrubbing -----------------------------------------------------

    def inject_bit_flips(
        self, row: int, flips: Sequence[Tuple[int, int]]
    ) -> None:
        """Flip ``(word_index, bit_index)`` positions in a stored row.

        Bypasses the event log (a particle strike is not an access).
        """
        stored = self._array.peek_row(row)
        for word_index, bit_index in flips:
            if not 0 <= bit_index < CODEWORD_BITS:
                raise ValidationError(
                    f"bit_index {bit_index} out of range [0, {CODEWORD_BITS})"
                )
            stored[word_index] ^= 1 << bit_index
        self._array.load_row(row, stored)

    def scrub(self) -> ScrubReport:
        """Walk every row, re-encoding any correctable words.

        Returns the repair census; uncorrectable words are reported (and
        left in place) rather than raising, since a scrubber must finish
        its sweep.
        """
        report = ScrubReport()
        for row in range(self.geometry.rows):
            stored = self._array.read_row(row)
            repaired: Dict[int, int] = {}
            for word_index, codeword in enumerate(stored):
                result = decode(codeword)
                if result.status == "corrected":
                    repaired[word_index] = encode(result.data)
                    report.corrected_words += 1
                elif result.status == "uncorrectable":
                    report.uncorrectable_words += 1
                    report.failed_positions.append((row, word_index))
            if repaired:
                self._array.read_modify_write(row, repaired)
            report.rows_scrubbed += 1
        return report
