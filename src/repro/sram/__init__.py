"""Behavioural 8T (and 6T) SRAM array substrate.

Models the circuit-level machinery the paper builds on (its Figures 1
and 2): cross-coupled cells with separate read/write ports, one row per
cache set, bit-interleaved columns sharing word lines, column muxes for
reads, and the Read-Modify-Write sequence required to write a subset of
an interleaved row safely.

The model is value-accurate at word granularity and *enforces* the
column-selection constraint: a partial write to an interleaved 8T row
without RMW raises :class:`HalfSelectViolation`, which is exactly the
hazard the paper's Section 2 describes.
"""

from repro.sram.cell import SRAMCell6T, SRAMCell8T, read_snm_mv
from repro.sram.geometry import ArrayGeometry
from repro.sram.events import SRAMEventLog
from repro.sram.array import HalfSelectViolation, SRAMArray
from repro.sram.ports import PortKind, PortTracker
from repro.sram.timing import PhaseTiming
from repro.sram.ecc import DecodeResult, InterleavedRowLayout, decode, encode
from repro.sram.faults import FaultInjector, ReliabilityReport, mean_burst_width
from repro.sram.protected import ECCProtectedArray, ScrubReport
from repro.sram.banked import BankedSRAMArray

__all__ = [
    "SRAMCell6T",
    "SRAMCell8T",
    "read_snm_mv",
    "ArrayGeometry",
    "SRAMEventLog",
    "SRAMArray",
    "HalfSelectViolation",
    "PortKind",
    "PortTracker",
    "PhaseTiming",
    "encode",
    "decode",
    "DecodeResult",
    "InterleavedRowLayout",
    "FaultInjector",
    "ReliabilityReport",
    "mean_burst_width",
    "ECCProtectedArray",
    "ScrubReport",
    "BankedSRAMArray",
]
