"""Banked (sub-array) SRAM organisation.

The paper's Section 2: "In order to optimize word and bit lines
latency, power, and area, SRAM arrays are broken vertically and
horizontally into interleaved sub-arrays" — and Park et al. exploit
exactly this structure to localise RMW.  :class:`BankedSRAMArray`
models the organisation: a grid of independent :class:`SRAMArray`
banks, rows striped across them, with per-bank event logs plus an
aggregate view.

The behavioural contract matches a flat array (same data, same
operations), which the equivalence property test pins down; what
banking adds is *locality of occupancy* — the timing model can treat
each bank's ports independently, and per-bank event counts expose load
balance.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.sram.array import SRAMArray
from repro.sram.events import SRAMEventLog
from repro.sram.geometry import ArrayGeometry
from repro.utils.bitops import is_power_of_two
from repro.errors import ValidationError

__all__ = ["BankedSRAMArray"]


class BankedSRAMArray:
    """A grid of sub-arrays presenting one flat row space.

    Row ``r`` lives in bank ``r % banks`` at local row ``r // banks``
    (low-order striping, so consecutive sets land in different banks —
    the arrangement that lets Park's scheme overlap accesses).
    """

    def __init__(self, geometry: ArrayGeometry, banks: int) -> None:
        if not is_power_of_two(banks):
            raise ValidationError(f"banks must be a power of two, got {banks}")
        if banks > geometry.rows:
            raise ValidationError(
                f"banks ({banks}) cannot exceed rows ({geometry.rows})"
            )
        self.geometry = geometry
        self.banks = banks
        bank_geometry = ArrayGeometry(
            rows=geometry.rows // banks,
            words_per_row=geometry.words_per_row,
            interleaved=geometry.interleaved,
        )
        self._banks: List[SRAMArray] = [
            SRAMArray(bank_geometry) for _ in range(banks)
        ]

    # -- routing -----------------------------------------------------------------

    def bank_of(self, row: int) -> int:
        self._check_row(row)
        return row % self.banks

    def _local(self, row: int) -> int:
        return row // self.banks

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.geometry.rows:
            raise ValidationError(
                f"row {row} out of range [0, {self.geometry.rows})"
            )

    # -- flat-array operations ------------------------------------------------------

    def read_row(self, row: int) -> List[int]:
        return self._banks[self.bank_of(row)].read_row(self._local(row))

    def read_words(self, row: int, word_indices: Sequence[int]) -> List[int]:
        return self._banks[self.bank_of(row)].read_words(
            self._local(row), word_indices
        )

    def write_row(self, row: int, values: Sequence[int]) -> None:
        self._banks[self.bank_of(row)].write_row(self._local(row), values)

    def read_modify_write(self, row: int, updates: Dict[int, int]) -> List[int]:
        return self._banks[self.bank_of(row)].read_modify_write(
            self._local(row), updates
        )

    def peek_row(self, row: int) -> List[int]:
        return self._banks[self.bank_of(row)].peek_row(self._local(row))

    def load_row(self, row: int, values: Sequence[int]) -> None:
        self._banks[self.bank_of(row)].load_row(self._local(row), values)

    # -- observation ------------------------------------------------------------------

    def bank_events(self, bank: int) -> SRAMEventLog:
        """Event log of one bank."""
        return self._banks[bank].events

    @property
    def events(self) -> SRAMEventLog:
        """Aggregate event log across banks (a merged copy)."""
        merged = SRAMEventLog()
        for bank in self._banks:
            merged = merged.merge(bank.events)
        return merged

    def load_balance(self) -> List[int]:
        """Array accesses per bank — uniform striping keeps this flat."""
        return [bank.events.array_accesses for bank in self._banks]
