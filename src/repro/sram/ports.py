"""1R/1W port occupancy tracking.

8T arrays have separate read and write ports and can normally service
one read and one write in the same cycle.  RMW breaks this: its read
phase occupies the read port on behalf of a *write* request (paper
Section 2), so a concurrent read must stall.  WG/WG+RB restore read
port availability by eliminating most RMW read phases — the effect the
performance model in :mod:`repro.perf` quantifies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import PortConflictError, ValidationError

__all__ = ["PortKind", "PortTracker"]


class PortKind(enum.Enum):
    """The two independent ports of an 8T array."""

    READ = "read"
    WRITE = "write"


@dataclass
class PortTracker:
    """Tracks when each port becomes free on a monotonically advancing clock.

    ``acquire`` returns the cycle at which the operation actually starts
    (its requested start, or later if the port is busy) and counts a
    conflict whenever an operation had to wait.
    """

    free_at: Dict[PortKind, int] = field(
        default_factory=lambda: {PortKind.READ: 0, PortKind.WRITE: 0}
    )
    busy_cycles: Dict[PortKind, int] = field(
        default_factory=lambda: {PortKind.READ: 0, PortKind.WRITE: 0}
    )
    conflicts: Dict[PortKind, int] = field(
        default_factory=lambda: {PortKind.READ: 0, PortKind.WRITE: 0}
    )

    def acquire(self, port: PortKind, start_cycle: int, duration: int) -> int:
        """Reserve ``port`` for ``duration`` cycles from ``start_cycle``.

        Returns the actual start cycle after any stall.
        """
        if duration < 0:
            raise ValidationError(f"duration must be non-negative, got {duration}")
        actual_start = max(start_cycle, self.free_at[port])
        if actual_start > start_cycle:
            self.conflicts[port] += 1
        self.free_at[port] = actual_start + duration
        self.busy_cycles[port] += duration
        return actual_start

    def reserve(self, port: PortKind, start_cycle: int, duration: int) -> int:
        """Like :meth:`acquire`, but refuses to stall.

        Schedulers that have already committed to a cycle (e.g. a
        lock-step pipeline model) use this to assert exclusivity:
        scheduling two operations onto one port in the same cycle
        raises :class:`PortConflictError` instead of silently pushing
        the second operation later.
        """
        if duration < 0:
            raise ValidationError(f"duration must be non-negative, got {duration}")
        if self.free_at[port] > start_cycle:
            self.conflicts[port] += 1
            raise PortConflictError(
                f"{port.value} port is busy until cycle {self.free_at[port]}, "
                f"cannot reserve it at cycle {start_cycle}"
            )
        self.free_at[port] = start_cycle + duration
        self.busy_cycles[port] += duration
        return start_cycle

    def is_free(self, port: PortKind, cycle: int) -> bool:
        """True when ``port`` is idle at ``cycle``."""
        return self.free_at[port] <= cycle

    def utilisation(self, port: PortKind, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` the port spent busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles[port] / elapsed_cycles)
