"""Behavioural 6T and 8T SRAM cell models.

These follow the paper's Figure 1.  An 8T cell is a 6T core (M1-M4
cross-coupled inverters, M5/M6 write access transistors on WBL/WBLB
gated by the write word line WWL) plus a decoupled read stack (M7/M8 on
the read bit line RBL gated by the read word line RWL).

The behavioural contract captured here:

* 8T reads are non-destructive and do not disturb the cell: RBL
  discharges through M7/M8 when Q == 0 and stays precharged when Q == 1.
* 8T cells are write-optimised; a *half-selected* 8T cell (WWL raised
  but its write drivers not driving the intended value) sees its stored
  value exposed to whatever is on the shared write bit lines, so the
  model treats a half-select during write as data corruption — the very
  reason RMW exists.
* 6T cells tolerate half-select during writes by biasing the cell for a
  read (Section 2), at the cost of read-stability margin under voltage
  scaling.

A small analytic read static-noise-margin (SNM) curve is included so
the power package can derive Vmin for 6T vs 8T arrays and reproduce the
paper's DVFS motivation (8T keeps working below the 6T Vmin).
"""

from __future__ import annotations

from repro.utils.validation import check_in_range
from repro.errors import ValidationError

__all__ = ["SRAMCell6T", "SRAMCell8T", "read_snm_mv"]

# Empirical-shape constants for the toy SNM model (loosely following the
# 65 nm measurements in Verma & Chandrakasan [12]): read SNM shrinks
# roughly linearly with Vdd and the 6T read SNM is much smaller than the
# 8T one because the 8T read stack is decoupled from the storage nodes.
_SNM_SLOPE_6T = 0.18  # mV of read SNM per mV of Vdd
_SNM_SLOPE_8T = 0.34
_SNM_OFFSET_6T = -60.0  # mV
_SNM_OFFSET_8T = -20.0
SNM_FAILURE_THRESHOLD_MV = 40.0
"""Minimum read SNM considered stable (used for Vmin derivation)."""


def read_snm_mv(cell_kind: str, vdd_mv: float) -> float:
    """Analytic read static-noise margin in millivolts.

    Args:
        cell_kind: ``"6T"`` or ``"8T"``.
        vdd_mv: supply voltage in millivolts (300-1200 supported).
    """
    check_in_range("vdd_mv", vdd_mv, 300.0, 1500.0)
    if cell_kind == "6T":
        return max(0.0, _SNM_SLOPE_6T * vdd_mv + _SNM_OFFSET_6T)
    if cell_kind == "8T":
        return max(0.0, _SNM_SLOPE_8T * vdd_mv + _SNM_OFFSET_8T)
    raise ValidationError(f"unknown cell kind {cell_kind!r}")


class SRAMCell6T:
    """Classic six-transistor cell: one shared port for read and write."""

    kind = "6T"
    transistors = 6

    def __init__(self, initial: int = 0) -> None:
        if initial not in (0, 1):
            raise ValidationError(f"cell stores one bit, got {initial!r}")
        self.q = initial

    def write(self, bit: int) -> None:
        """Drive WBL/WBLB with the word line raised."""
        if bit not in (0, 1):
            raise ValidationError(f"cell stores one bit, got {bit!r}")
        self.q = bit

    def read(self) -> int:
        """Differential read through the shared access transistors."""
        return self.q

    def half_select_during_write(self) -> int:
        """A half-selected 6T cell is biased as a read: data survives."""
        return self.q

    @property
    def half_select_safe(self) -> bool:
        return True


class SRAMCell8T:
    """Eight-transistor cell with decoupled read port (paper Figure 1)."""

    kind = "8T"
    transistors = 8

    def __init__(self, initial: int = 0) -> None:
        if initial not in (0, 1):
            raise ValidationError(f"cell stores one bit, got {initial!r}")
        self.q = initial

    def write(self, bit: int) -> None:
        """Full write: WWL raised, write drivers driving WBL/WBLB."""
        if bit not in (0, 1):
            raise ValidationError(f"cell stores one bit, got {bit!r}")
        self.q = bit

    def read_rbl(self, rbl_precharged: bool = True) -> bool:
        """Read through M7/M8.

        Returns True when the read bit line *discharges* — which happens
        when the cell stores 0 (M7 on).  A cell storing 1 leaves the RBL
        precharged.  Raises if the RBL was not precharged first, because
        a floating RBL yields garbage.
        """
        if not rbl_precharged:
            raise ValidationError("RBL must be precharged before RWL rises")
        return self.q == 0

    def read(self) -> int:
        """Convenience logical read (precharge + sense)."""
        return 0 if self.read_rbl(True) else 1

    def half_select_during_write(self, wbl_value: int) -> int:
        """A half-selected 8T cell during a row write is *unsafe*.

        The cell's WWL is raised (shared along the row) while the shared
        write bit lines carry whatever the write drivers put there for
        the selected word.  The cell is overwritten with that value —
        data corruption unless RMW reloaded the correct value into the
        drivers first.
        """
        self.q = wbl_value & 1
        return self.q

    @property
    def half_select_safe(self) -> bool:
        return False
