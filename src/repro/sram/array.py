"""Value-accurate behavioural SRAM array.

Implements the paper's Figure 2 semantics at word granularity:

* a **row read** precharges the RBLs, raises one RWL, and every cell in
  the row drives its read stack; the column mux routes only the
  requested words to the output;
* a **row write** raises one WWL and every write driver in the row
  fires — there is no way to write only some columns of an interleaved
  row;
* a **partial write** therefore must go through :meth:`read_modify_write`,
  which reads the row into the write-back latches, merges the new words,
  and writes the full row back.  Calling :meth:`write_words` directly on
  an interleaved array raises :class:`HalfSelectViolation`.

With ``interleaved=False`` the array models Chang et al.'s alternative
(word-granularity word lines): partial writes are legal and cost a
single row write, which the ablation benchmarks use as a comparison
point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError, ValidationError
from repro.sram.events import SRAMEventLog
from repro.sram.geometry import ArrayGeometry

__all__ = ["SRAMArray", "HalfSelectViolation"]


class HalfSelectViolation(SimulationError):
    """A partial write was attempted on an interleaved row without RMW."""


class SRAMArray:
    """One data array: ``rows`` x ``words_per_row`` words of storage."""

    def __init__(
        self, geometry: ArrayGeometry, event_log: Optional[SRAMEventLog] = None
    ) -> None:
        self.geometry = geometry
        self.events = event_log if event_log is not None else SRAMEventLog()
        self._rows: List[List[int]] = [
            [0] * geometry.words_per_row for _ in range(geometry.rows)
        ]

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.geometry.rows:
            raise ValidationError(f"row {row} out of range [0, {self.geometry.rows})")

    def _check_column(self, word_index: int) -> None:
        if not 0 <= word_index < self.geometry.words_per_row:
            raise ValidationError(
                f"word index {word_index} out of range "
                f"[0, {self.geometry.words_per_row})"
            )

    # -- reads ----------------------------------------------------------------

    def read_row(self, row: int) -> List[int]:
        """Full-row read (RMW's 'read row' phase: fills the latches)."""
        self._check_row(row)
        self.events.record_row_read(words_routed=self.geometry.words_per_row)
        return list(self._rows[row])

    def read_words(self, row: int, word_indices: Sequence[int]) -> List[int]:
        """Architectural read: one row activation, mux routes the words.

        All cells in the row perform the read; half-selected columns are
        simply ignored by the multiplexers (safe for 8T read ports).
        """
        self._check_row(row)
        for word_index in word_indices:
            self._check_column(word_index)
        self.events.record_row_read(words_routed=len(word_indices))
        return [self._rows[row][i] for i in word_indices]

    # -- writes ---------------------------------------------------------------

    def write_row(self, row: int, values: Sequence[int]) -> None:
        """Full-row write: WWL raised, every driver fires.

        This is the only legal *direct* write on an interleaved array;
        it is used for the RMW write-back phase and for the Set-Buffer
        write-back (the buffer holds the whole row).
        """
        self._check_row(row)
        if len(values) != self.geometry.words_per_row:
            raise ValidationError(
                f"row write needs {self.geometry.words_per_row} words, "
                f"got {len(values)}"
            )
        self._rows[row] = list(values)
        self.events.record_row_write(words_driven=self.geometry.words_per_row)

    def write_words(self, row: int, updates: Dict[int, int]) -> None:
        """Partial write without RMW.

        Legal only on a non-interleaved array (Chang-style word-granular
        word lines).  On an interleaved array this is the column
        selection hazard and raises :class:`HalfSelectViolation`.
        """
        self._check_row(row)
        if self.geometry.interleaved:
            raise HalfSelectViolation(
                "partial write to an interleaved 8T row would corrupt "
                "half-selected columns; use read_modify_write()"
            )
        for word_index, value in updates.items():
            self._check_column(word_index)
            self._rows[row][word_index] = value
        self.events.record_row_write(words_driven=len(updates))

    def read_modify_write(self, row: int, updates: Dict[int, int]) -> List[int]:
        """Morita et al.'s RMW sequence (paper Section 2, steps 1-5).

        1-3. precharge, RWL, latch the full row (mux output suppressed);
        4.   selected columns load from Data-in, half-selected columns
             load from the latches;
        5.   WWL rises and the merged row is written back.

        Returns the *pre-write* row contents (what the latches held),
        which the Set-Buffer uses when WG fills it by 'read row'.
        """
        self._check_row(row)
        for word_index in updates:
            self._check_column(word_index)
        latched = self.read_row(row)
        merged = list(latched)
        for word_index, value in updates.items():
            merged[word_index] = value
        self.write_row(row, merged)
        self.events.rmw_operations += 1
        return latched

    # -- inspection -----------------------------------------------------------

    def peek_row(self, row: int) -> List[int]:
        """Row contents without generating events (test/oracle use only)."""
        self._check_row(row)
        return list(self._rows[row])

    def peek_word(self, row: int, word_index: int) -> int:
        self._check_row(row)
        self._check_column(word_index)
        return self._rows[row][word_index]

    def load_row(self, row: int, values: Sequence[int]) -> None:
        """Initialise a row without events (test fixture / fill mirror)."""
        self._check_row(row)
        if len(values) != self.geometry.words_per_row:
            raise ValidationError(
                f"row load needs {self.geometry.words_per_row} words, "
                f"got {len(values)}"
            )
        self._rows[row] = list(values)
