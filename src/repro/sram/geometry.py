"""SRAM array organisation.

One array row holds one cache set (that is why the paper's Set-Buffer —
sized to one set — can buffer a full row).  Words are bit-interleaved
across the row: adjacent cells belong to different words, so one word
line selects all words of the row and reads use column multiplexers to
route only the requested word (paper Section 2 / Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheGeometry
from repro.errors import ConfigurationError
from repro.utils.bitops import is_power_of_two

__all__ = ["ArrayGeometry"]

BITS_PER_WORD = 64


@dataclass(frozen=True)
class ArrayGeometry:
    """Shape of one SRAM data array.

    Attributes:
        rows: number of word-line rows (== cache sets in our mapping).
        words_per_row: interleaved words sharing each row
            (== associativity * words_per_block).
        interleaved: True for bit-interleaved layout (the paper's
            default, required for single-bit-correction ECC).  When
            False the array models Chang et al.'s non-interleaved
            word-granularity-write alternative, where partial writes
            are legal and RMW is unnecessary.
    """

    rows: int
    words_per_row: int
    interleaved: bool = True

    def __post_init__(self) -> None:
        if not is_power_of_two(self.rows):
            raise ConfigurationError(
                f"rows must be a power of two, got {self.rows!r}"
            )
        if not is_power_of_two(self.words_per_row):
            raise ConfigurationError(
                f"words_per_row must be a power of two, got {self.words_per_row!r}"
            )

    @property
    def columns(self) -> int:
        """Bit columns per row."""
        return self.words_per_row * BITS_PER_WORD

    @property
    def interleave_factor(self) -> int:
        """Number of words whose bits are interleaved in one row."""
        return self.words_per_row if self.interleaved else 1

    @property
    def total_cells(self) -> int:
        return self.rows * self.columns

    @classmethod
    def for_cache(
        cls, cache_geometry: CacheGeometry, interleaved: bool = True
    ) -> "ArrayGeometry":
        """Array shape matching a cache: one row per set."""
        return cls(
            rows=cache_geometry.num_sets,
            words_per_row=cache_geometry.words_per_set,
            interleaved=interleaved,
        )
