"""Per-phase latency parameters for array operations.

Default cycle counts reflect the relative costs the paper relies on:
a Set-Buffer access is faster than an array access (Section 5.5 — this
is why WG+RB *improves* read latency), and an RMW occupies both ports
because its read phase feeds its write phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive
from repro.errors import ValidationError

__all__ = ["PhaseTiming"]


@dataclass(frozen=True)
class PhaseTiming:
    """Latency (in core cycles) of each array/buffer operation.

    Attributes:
        array_read_cycles: precharge + RWL + sense + mux.
        array_write_cycles: write-driver load + WWL pulse.
        rmw_extra_cycles: serial dependency between the RMW read and
            write phases beyond their individual latencies.
        set_buffer_cycles: read or write of the Set-Buffer (a small
            latch array next to the write drivers — faster than the
            full array).
    """

    array_read_cycles: int = 2
    array_write_cycles: int = 2
    rmw_extra_cycles: int = 1
    set_buffer_cycles: int = 1

    def __post_init__(self) -> None:
        check_positive("array_read_cycles", self.array_read_cycles)
        check_positive("array_write_cycles", self.array_write_cycles)
        check_positive("set_buffer_cycles", self.set_buffer_cycles)
        if self.rmw_extra_cycles < 0:
            raise ValidationError(
                f"rmw_extra_cycles must be non-negative, "
                f"got {self.rmw_extra_cycles}"
            )
        if self.set_buffer_cycles > self.array_read_cycles:
            raise ValidationError(
                "the Set-Buffer must not be slower than the array "
                "(Section 5.5 premise)"
            )

    @property
    def rmw_cycles(self) -> int:
        """End-to-end latency of one Read-Modify-Write."""
        return (
            self.array_read_cycles + self.array_write_cycles + self.rmw_extra_cycles
        )
