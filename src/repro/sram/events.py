"""SRAM array event accounting.

Every architectural operation decomposes into circuit events (precharge,
read word line pulse, write word line pulse, words routed through the
column mux, write drivers fired).  The controllers in :mod:`repro.core`
and the full :class:`repro.sram.SRAMArray` both record through this log,
so the energy model in :mod:`repro.power` has a single source of truth.

The paper's headline metric — *cache access frequency* — is
``row_reads + row_writes``: each word-line activation of the data array,
which is what costs energy and occupies a port.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["SRAMEventLog"]


@dataclass
class SRAMEventLog:
    """Counters for circuit-level events in one array.

    ``row_reads``/``row_writes`` count word-line activations;
    ``words_routed``/``words_driven`` count data actually moved, which
    the energy model weights separately from the row activation cost.
    """

    row_reads: int = 0
    row_writes: int = 0
    rmw_operations: int = 0
    precharges: int = 0
    rwl_pulses: int = 0
    wwl_pulses: int = 0
    words_routed: int = 0
    words_driven: int = 0
    set_buffer_reads: int = 0
    set_buffer_writes: int = 0

    # -- recording helpers ----------------------------------------------------

    def record_row_read(self, words_routed: int) -> None:
        """A precharge + RWL pulse; ``words_routed`` words leave the mux."""
        self.precharges += 1
        self.rwl_pulses += 1
        self.row_reads += 1
        self.words_routed += words_routed

    def record_row_write(self, words_driven: int) -> None:
        """A WWL pulse with every write driver in the row firing.

        ``words_driven`` is the full row width: the column-selection
        constraint means a row write always drives all columns.
        """
        self.wwl_pulses += 1
        self.row_writes += 1
        self.words_driven += words_driven

    def record_rmw(self, row_words: int) -> None:
        """One Read-Modify-Write: a row read feeding latches + a row write."""
        self.rmw_operations += 1
        self.record_row_read(words_routed=row_words)
        self.record_row_write(words_driven=row_words)

    def record_set_buffer_read(self, words: int = 1) -> None:
        """Words served from the Set-Buffer instead of the array (WG+RB)."""
        self.set_buffer_reads += words

    def record_set_buffer_write(self, words: int = 1) -> None:
        """Words merged into the Set-Buffer (WG)."""
        self.set_buffer_writes += words

    # -- derived -------------------------------------------------------------

    @property
    def array_accesses(self) -> int:
        """The paper's 'cache access' count: all word-line activations."""
        return self.row_reads + self.row_writes

    def merge(self, other: "SRAMEventLog") -> "SRAMEventLog":
        """Elementwise sum of two logs."""
        merged = SRAMEventLog()
        for field in fields(SRAMEventLog):
            setattr(
                merged,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return merged

    def __add__(self, other: object) -> "SRAMEventLog":
        """``log_a + log_b`` — per-worker / per-phase logs fold with
        ``sum(logs, SRAMEventLog())``; no field-by-field hand-rolling."""
        if not isinstance(other, SRAMEventLog):
            return NotImplemented
        return self.merge(other)

    def __radd__(self, other: object) -> "SRAMEventLog":
        # Lets ``sum()`` start from its default 0.
        if other == 0:
            return self.copy()
        return self.__add__(other)

    def __iadd__(self, other: "SRAMEventLog") -> "SRAMEventLog":
        if not isinstance(other, SRAMEventLog):
            return NotImplemented
        for field in fields(SRAMEventLog):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    def to_dict(self) -> dict:
        """Field -> count mapping (the metrics/export wire format)."""
        return {f.name: getattr(self, f.name) for f in fields(SRAMEventLog)}

    def copy(self) -> "SRAMEventLog":
        return SRAMEventLog(
            **{f.name: getattr(self, f.name) for f in fields(SRAMEventLog)}
        )
