"""SEC-DED ECC and bit interleaving — why RMW exists at all.

The chain of reasoning in the paper's Section 2:

1. low-voltage operation raises the soft-error rate, so cache words
   carry ECC — usually single-error-correct/double-error-detect
   (SEC-DED) Hamming codes, because they are small and fast;
2. a single particle strike often upsets *adjacent* cells; if adjacent
   cells belonged to the same word, a strike would produce a multi-bit
   error SEC-DED cannot correct;
3. therefore arrays **bit-interleave**: physically adjacent cells belong
   to different words, converting a spatial multi-bit upset into
   several single-bit (correctable) errors;
4. but interleaving makes all words of a row share word lines — the
   column-selection problem — which for write-optimised 8T cells forces
   Read-Modify-Write.

This module implements each link in that chain: a real Hamming(72,64)
SEC-DED codec, the logical-word-bit to physical-column mapping for an
interleaved row, and an upset model that demonstrates point 3
quantitatively (used by tests and the interleaving ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.utils.validation import check_in_range, check_non_negative
from repro.errors import InvariantViolation, ValidationError

__all__ = [
    "DATA_BITS",
    "CHECK_BITS",
    "CODEWORD_BITS",
    "encode",
    "decode",
    "DecodeResult",
    "InterleavedRowLayout",
]

DATA_BITS = 64
#: 7 Hamming check bits cover 64+7 positions; +1 overall parity = DED.
CHECK_BITS = 8
CODEWORD_BITS = DATA_BITS + CHECK_BITS

# Positions in the (1-indexed) Hamming codeword that hold check bits are
# the powers of two; everything else holds data.  Position 0 is used for
# the overall parity bit.
_HAMMING_POSITIONS = CODEWORD_BITS - 1  # 71 positions, 1..71
_POWER_POSITIONS = (1, 2, 4, 8, 16, 32, 64)
_DATA_POSITIONS = [
    position
    for position in range(1, _HAMMING_POSITIONS + 1)
    if position not in _POWER_POSITIONS
]
if len(_DATA_POSITIONS) != DATA_BITS:  # always-on structural check
    raise InvariantViolation(
        f"Hamming layout broke: {len(_DATA_POSITIONS)} data positions "
        f"for {DATA_BITS} data bits"
    )


def _parity_of(value: int) -> int:
    parity = 0
    while value:
        parity ^= 1
        value &= value - 1
    return parity


def encode(data: int) -> int:
    """Encode a 64-bit word into a 72-bit SEC-DED codeword.

    Bit 0 of the result is the overall parity bit; bits 1..71 are the
    Hamming codeword (check bits at power-of-two positions).
    """
    check_in_range("data", data, 0, (1 << DATA_BITS) - 1)
    codeword = 0
    for bit_index, position in enumerate(_DATA_POSITIONS):
        if (data >> bit_index) & 1:
            codeword |= 1 << position
    for power in _POWER_POSITIONS:
        parity = 0
        for position in range(1, _HAMMING_POSITIONS + 1):
            if position & power and (codeword >> position) & 1:
                parity ^= 1
        if parity:
            codeword |= 1 << power
    # Overall parity over positions 1..71 gives double-error detection.
    if _parity_of(codeword >> 1):
        codeword |= 1
    return codeword


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword.

    ``status`` is one of ``"clean"``, ``"corrected"`` (single-bit error
    repaired), or ``"uncorrectable"`` (double-bit error detected — data
    is not trustworthy).
    """

    data: int
    status: str

    @property
    def ok(self) -> bool:
        return self.status != "uncorrectable"


def decode(codeword: int) -> DecodeResult:
    """Decode a 72-bit codeword, correcting up to one flipped bit."""
    check_in_range("codeword", codeword, 0, (1 << CODEWORD_BITS) - 1)
    syndrome = 0
    for power in _POWER_POSITIONS:
        parity = 0
        for position in range(1, _HAMMING_POSITIONS + 1):
            if position & power and (codeword >> position) & 1:
                parity ^= 1
        if parity:
            syndrome |= power
    overall = _parity_of(codeword)

    corrected = codeword
    if syndrome == 0 and overall == 0:
        status = "clean"
    elif overall == 1:
        # Odd number of flips: a single-bit error (possibly in the
        # parity bit itself when syndrome == 0) — correctable.
        if syndrome:
            corrected = codeword ^ (1 << syndrome)
        else:
            corrected = codeword ^ 1
        status = "corrected"
    else:
        # Even flips with nonzero syndrome: double error, detected.
        return DecodeResult(data=_extract(codeword), status="uncorrectable")

    return DecodeResult(data=_extract(corrected), status=status)


def _extract(codeword: int) -> int:
    data = 0
    for bit_index, position in enumerate(_DATA_POSITIONS):
        if (codeword >> position) & 1:
            data |= 1 << bit_index
    return data


class InterleavedRowLayout:
    """Logical-bit to physical-column mapping of one array row.

    With interleave factor ``words``, physical column ``c`` holds bit
    ``c // words`` of word ``c % words``: adjacent columns belong to
    different words, so a burst of adjacent upsets spreads across words
    (paper Section 2, citing Kim et al. [4]).  ``words == 1`` models the
    non-interleaved layout of Chang et al. [2], where adjacent columns
    belong to the *same* word.
    """

    def __init__(self, words: int, bits_per_word: int = CODEWORD_BITS) -> None:
        if words < 1:
            raise ValidationError(f"words must be >= 1, got {words}")
        if bits_per_word < 1:
            raise ValidationError(f"bits_per_word must be >= 1, got {bits_per_word}")
        self.words = words
        self.bits_per_word = bits_per_word

    @property
    def columns(self) -> int:
        return self.words * self.bits_per_word

    def physical_column(self, word_index: int, bit_index: int) -> int:
        """Column holding ``bit_index`` of ``word_index``."""
        self._check(word_index, bit_index)
        return bit_index * self.words + word_index

    def logical_position(self, column: int) -> Tuple[int, int]:
        """(word_index, bit_index) stored at a physical column."""
        if not 0 <= column < self.columns:
            raise ValidationError(f"column {column} out of range [0, {self.columns})")
        return column % self.words, column // self.words

    def upset_burst(self, first_column: int, width: int) -> List[Tuple[int, int]]:
        """Logical positions hit by ``width`` adjacent upset columns.

        Models a particle strike flipping a contiguous run of cells.
        Truncated at the row edge.
        """
        check_non_negative("width", width)
        hits = []
        for column in range(first_column, min(first_column + width, self.columns)):
            hits.append(self.logical_position(column))
        return hits

    def errors_per_word(self, first_column: int, width: int) -> dict:
        """Upset bit-count per word for an adjacent burst.

        The quantity that decides correctability: SEC-DED survives as
        long as every word sees at most one flipped bit.
        """
        counts: dict = {}
        for word_index, _bit in self.upset_burst(first_column, width):
            counts[word_index] = counts.get(word_index, 0) + 1
        return counts

    def burst_correctable(self, first_column: int, width: int) -> bool:
        """True when SEC-DED corrects the whole burst."""
        return all(
            count <= 1
            for count in self.errors_per_word(first_column, width).values()
        )

    def max_correctable_burst(self) -> int:
        """Widest adjacent burst guaranteed correctable anywhere.

        Equals the interleave factor: with ``words`` interleaved words a
        burst of ``words`` adjacent cells touches each word exactly
        once; ``words + 1`` necessarily doubles up somewhere.
        """
        return self.words

    def _check(self, word_index: int, bit_index: int) -> None:
        if not 0 <= word_index < self.words:
            raise ValidationError(
                f"word_index {word_index} out of range [0, {self.words})"
            )
        if not 0 <= bit_index < self.bits_per_word:
            raise ValidationError(
                f"bit_index {bit_index} out of range [0, {self.bits_per_word})"
            )
