"""Soft-error injection over SRAM rows.

Completes the paper's motivation chain with a quantitative model: at
low supply voltage the critical charge of a cell falls, so one particle
strike upsets *wider bursts* of adjacent cells (Kim et al. [4], the
paper's citation for why bit interleaving is "commonly used ... and
prevents multi-bit upsets in one word").

The injector throws strikes at a row, draws a burst width whose mean
grows as Vdd shrinks, and asks the :class:`InterleavedRowLayout`
whether per-word SEC-DED survives.  Comparing the interleaved and
non-interleaved layouts across voltage reproduces the trade the paper
builds on: interleaving keeps low-voltage operation reliable — at the
price of the column-selection problem that WG/WG+RB then solve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sram.ecc import InterleavedRowLayout
from repro.utils.rng import DeterministicRNG
from repro.utils.validation import check_in_range, check_positive

__all__ = ["ReliabilityReport", "FaultInjector", "mean_burst_width"]

# Behavioural burst-width curve: ~1 adjacent cell per strike at nominal
# voltage, widening toward several cells near threshold.  The constants
# give mean widths of ~1.2 at 1000 mV and ~3.4 at 400 mV — the right
# order for the multi-cell-upset data the paper's citations report.
_WIDTH_AT_NOMINAL = 1.2
_WIDTH_VOLTAGE_SLOPE = 3.7  # extra mean width per 1000 mV of downscaling
_NOMINAL_MV = 1000.0


def mean_burst_width(vdd_mv: float) -> float:
    """Mean adjacent-cell burst width of one strike at ``vdd_mv``."""
    check_in_range("vdd_mv", vdd_mv, 200.0, 1500.0)
    downscale_v = max(0.0, (_NOMINAL_MV - vdd_mv) / 1000.0)
    return _WIDTH_AT_NOMINAL + _WIDTH_VOLTAGE_SLOPE * downscale_v


@dataclass(frozen=True)
class ReliabilityReport:
    """Outcome of a fault-injection campaign."""

    strikes: int
    corrected: int
    uncorrectable: int
    vdd_mv: float
    interleaved: bool

    @property
    def uncorrectable_fraction(self) -> float:
        return self.uncorrectable / self.strikes if self.strikes else 0.0

    @property
    def corrected_fraction(self) -> float:
        return self.corrected / self.strikes if self.strikes else 0.0


class FaultInjector:
    """Monte-Carlo strike injection against one row layout."""

    def __init__(
        self, layout: InterleavedRowLayout, rng: DeterministicRNG
    ) -> None:
        self.layout = layout
        self._rng = rng

    def _draw_width(self, vdd_mv: float) -> int:
        """Geometric burst width with the voltage-dependent mean."""
        return self._rng.geometric(mean_burst_width(vdd_mv))

    def inject(self, strikes: int, vdd_mv: float) -> ReliabilityReport:
        """Throw ``strikes`` independent strikes; classify each.

        A strike is *corrected* when every affected word sees at most
        one flipped bit (SEC-DED repairs it), *uncorrectable* otherwise.
        """
        check_positive("strikes", strikes)
        corrected = 0
        uncorrectable = 0
        last_column = self.layout.columns - 1
        for _ in range(strikes):
            first_column = self._rng.randint(0, last_column)
            width = self._draw_width(vdd_mv)
            if self.layout.burst_correctable(first_column, width):
                corrected += 1
            else:
                uncorrectable += 1
        return ReliabilityReport(
            strikes=strikes,
            corrected=corrected,
            uncorrectable=uncorrectable,
            vdd_mv=vdd_mv,
            interleaved=self.layout.words > 1,
        )
