"""Interval snapshots: windowed time series over a simulation run.

The paper's methodology is built on per-interval access-frequency
accounting (its Figures 3-11 all average over execution windows); this
module recovers that view.  An :class:`IntervalSampler` is ticked once
per request by an instrumented controller and, every ``window``
requests, snapshots the *deltas* of the controller's cumulative
counters — array accesses, hits/misses — plus the instantaneous
Set-Buffer occupancy.  The result is a per-technique time series
showing *when* WG/WG+RB earn their reduction, not just the final total.

Snapshots are plain dataclasses; ``repro.analysis.export.
snapshots_to_csv`` writes them out, and the ``repro-8t profile``
subcommand prints a condensed view.

One sampler can serve several sequential runs (compare/campaign replay
the trace once per technique): state is keyed by controller name, and a
cumulative-counter decrease (a ``reset_measurements`` between warm-up
and measurement) re-baselines that technique's window instead of
producing negative deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.utils.validation import check_positive

__all__ = ["IntervalSnapshot", "IntervalSampler"]

#: Default requests per window — fine enough to see warm-up transients
#: on the repo's default 20k-60k traces, coarse enough to stay cheap.
DEFAULT_WINDOW = 1_000


@dataclass(frozen=True)
class IntervalSnapshot:
    """Deltas over one window of ``window_size`` requests."""

    label: str
    window_index: int
    end_request: int
    window_size: int
    array_accesses: int
    hits: int
    misses: int
    set_buffer_occupancy: int

    @property
    def miss_rate(self) -> float:
        handled = self.hits + self.misses
        return self.misses / handled if handled else 0.0

    @property
    def accesses_per_request(self) -> float:
        return self.array_accesses / self.window_size if self.window_size else 0.0


class _LabelState:
    __slots__ = ("ticks", "windows", "last_accesses", "last_hits", "last_misses")

    def __init__(self) -> None:
        self.ticks = 0
        self.windows = 0
        self.last_accesses = 0
        self.last_hits = 0
        self.last_misses = 0


class IntervalSampler:
    """Per-N-request snapshot recorder, keyed by controller name."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        check_positive("window", window)
        self.window = window
        self.snapshots: List[IntervalSnapshot] = []
        self._states: Dict[str, _LabelState] = {}

    def tick(self, controller) -> None:
        """Advance one request; snapshot when a window closes.

        The fast path (mid-window) is one dict lookup and an integer
        increment; cumulative counters are only read at boundaries.
        """
        state = self._states.get(controller.name)
        if state is None:
            state = self._states[controller.name] = _LabelState()
        state.ticks += 1
        if state.ticks % self.window == 0:
            self._snapshot(controller, state)

    # -- internals -----------------------------------------------------------

    def _snapshot(self, controller, state: _LabelState) -> None:
        accesses = controller.events.array_accesses
        stats = controller.cache.stats
        hits, misses = stats.hits, stats.misses
        if (
            accesses < state.last_accesses
            or hits < state.last_hits
            or misses < state.last_misses
        ):
            # Counters went backwards: reset_measurements() ran between
            # windows (warm-up -> measure).  Re-baseline silently.
            state.last_accesses = state.last_hits = state.last_misses = 0
        self.snapshots.append(
            IntervalSnapshot(
                label=controller.name,
                window_index=state.windows,
                end_request=state.ticks,
                window_size=self.window,
                array_accesses=accesses - state.last_accesses,
                hits=hits - state.last_hits,
                misses=misses - state.last_misses,
                set_buffer_occupancy=controller.set_buffer_occupancy(),
            )
        )
        state.windows += 1
        state.last_accesses = accesses
        state.last_hits = hits
        state.last_misses = misses

    # -- read-out ------------------------------------------------------------

    def series(self, label: str) -> List[IntervalSnapshot]:
        """Snapshots for one technique, in window order."""
        return [snap for snap in self.snapshots if snap.label == label]

    def labels(self) -> List[str]:
        return sorted({snap.label for snap in self.snapshots})

    def __len__(self) -> int:
        return len(self.snapshots)
