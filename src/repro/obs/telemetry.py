"""The :class:`Telemetry` facade — one handle for the whole obs layer.

A ``Telemetry`` bundles the three collection surfaces (metrics
registry, trace sink, interval sampler) behind a single object that
threads through the simulation stack.  Everything downstream accepts
``telemetry=None`` and substitutes :data:`NULL_TELEMETRY`, whose
``enabled`` flag is False — instrumented hot loops reduce to a single
attribute test, which is what keeps the no-observer overhead inside the
~5 % budget (see ``tests/obs/test_integration.py``).

Construction shortcuts::

    Telemetry()                          # metrics only, no tracing
    Telemetry.from_outputs("m.json",     # what the CLI flags build
                           "t.jsonl",
                           sample_window=1000)
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import Optional, Union

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import IntervalSampler
from repro.obs.sinks import NullSink, TraceSink, sink_for_path

__all__ = ["Telemetry", "NULL_TELEMETRY", "obs_logger"]

#: All telemetry-layer log records go through this logger, so callers
#: can silence/redirect the observability plane in one place.
obs_logger = logging.getLogger("repro.obs")


class Telemetry:
    """Registry + sink + sampler, with a cheap global off switch."""

    __slots__ = ("registry", "sink", "sampler", "enabled")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sink: Optional[TraceSink] = None,
        sampler: Optional[IntervalSampler] = None,
        enabled: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink if sink is not None else NullSink()
        self.sampler = sampler
        self.enabled = enabled

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The do-nothing telemetry; prefer :data:`NULL_TELEMETRY`."""
        return cls(enabled=False)

    @classmethod
    def from_outputs(
        cls,
        metrics_out: Optional[Union[str, Path]] = None,
        trace_out: Optional[Union[str, Path]] = None,
        sample_window: Optional[int] = None,
    ) -> Optional["Telemetry"]:
        """Build telemetry matching the CLI's output flags.

        Returns None when nothing was requested, so callers can keep
        the zero-overhead default path.
        """
        if metrics_out is None and trace_out is None and sample_window is None:
            return None
        return cls(
            sink=sink_for_path(trace_out) if trace_out else None,
            sampler=IntervalSampler(sample_window) if sample_window else None,
        )

    # -- convenience pass-throughs ------------------------------------------

    def instant(self, name: str, category: str = "event", **args) -> None:
        """Emit a point event to the sink (no-op when disabled)."""
        if self.enabled and self.sink.enabled:
            self.sink.instant(name, category, args or None)

    def warn(self, name: str, message: str, **args) -> None:
        """A structured warning: log record + counter + trace instant.

        Used for degradations that must not pass silently (e.g. the
        parallel campaign falling back to sequential execution).
        """
        obs_logger.warning("%s: %s", name, message)
        if self.enabled:
            self.registry.inc(f"warning.{name}")
            if self.sink.enabled:
                self.sink.instant(
                    name, category="warning", args={"message": message, **args}
                )

    def close(self) -> None:
        """Flush the trace sink (metrics stay readable)."""
        self.sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


#: Shared do-nothing instance; ``enabled`` False means no instrument
#: ever writes through it, so sharing is safe.
NULL_TELEMETRY = Telemetry.disabled()
