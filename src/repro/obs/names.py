"""The declared metric-name set (``METRIC_NAMES``).

Every counter/gauge/histogram name emitted through the
:class:`repro.obs.registry.MetricsRegistry` must match one of the
patterns below, and every pattern must have at least one statically
visible emission — ``repro-8t lint`` cross-references both directions
(rules RPR131/RPR132), so this file is the single source of truth for
what the metrics plane can contain.  ``*`` spans a dynamic component
(a controller name, a span name, a write-back reason).

Keep the mapping sorted by name; the value is the human answer to
"what does this number mean?" and doubles as dashboard documentation.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["METRIC_NAMES"]

METRIC_NAMES: Dict[str, str] = {
    # -- campaign resilience (repro.sim.campaign / parallel / resilience) --
    "breaker.open": (
        "per-benchmark circuit breakers tripped after "
        "RetryPolicy.breaker_threshold distinct failures; further "
        "attempts on that benchmark are refused"
    ),
    "breaker.skip": (
        "benchmark rows abandoned because their circuit breaker was "
        "open (quarantined as FailedRow.breaker_skipped instead of "
        "burning the retry budget)"
    ),
    "campaign.quarantined": (
        "benchmarks that exhausted their retry budget and were moved "
        "to CampaignResult.failed_rows instead of failing the run"
    ),
    "checkpoint.resumed_rows": (
        "completed benchmark rows loaded from a checkpoint journal "
        "instead of being re-simulated"
    ),
    "checkpoint.skipped_records": (
        "journal records dropped on resume (torn writes, CRC "
        "mismatches); nonzero means the previous run died mid-append"
    ),
    "parallel.workers": (
        "gauge: supervised worker processes backing the current "
        "campaign (0 = in-process sequential execution)"
    ),
    "retry.attempt": (
        "per-benchmark retry attempts after a retryable failure "
        "(WorkerTimeoutError, WorkerCrashError, transient faults)"
    ),
    "store.corrupt": (
        "result-store entries that failed validation on read (torn "
        "write, CRC mismatch, schema or version skew) and were "
        "quarantined instead of served"
    ),
    "store.evict": (
        "result-store entries evicted least-recently-used to keep the "
        "store inside its --result-cache size bound"
    ),
    "store.hit": (
        "campaign rows served from the content-addressed result store "
        "without invoking the simulator"
    ),
    "store.miss": (
        "result-store lookups that found no valid entry (absent, or "
        "quarantined as corrupt) and fell through to recomputation"
    ),
    "worker.complete": (
        "supervised campaign worker processes that finished and "
        "returned a result; the anchor the per-worker metrics "
        "breakdown (state_dict()['workers']) is reconciled against"
    ),
    "worker.crash": (
        "campaign worker processes that died without returning a "
        "result (SIGKILL, OOM, interpreter abort)"
    ),
    "worker.heartbeat": (
        "liveness beats received from supervised campaign workers "
        "(RetryPolicy.heartbeat_interval_s); a worker that stops "
        "beating is killed as stalled before its wall-clock budget"
    ),
    "worker.timeout": (
        "campaign workers terminated for exceeding the per-attempt "
        "wall-clock budget (RetryPolicy.worker_timeout_s) or for "
        "missing heartbeats (stalled=True)"
    ),
    # -- estimator layer (repro.power.estimator.registry) ------------------
    "estimator.cache.hit": (
        "estimation queries served from the durable estimation-record "
        "cache without calling a backend estimate method"
    ),
    "estimator.cache.miss": (
        "estimation-record cache lookups that found no record for the "
        "(backend, query, code-version) key and fell through to the "
        "backend"
    ),
    "estimator.dispatch": (
        "estimation queries routed through the EstimatorRegistry "
        "(cache hits and misses alike); the denominator for the cache "
        "hit rate"
    ),
    # -- controller instrumentation (repro.core.*) -------------------------
    "ctrl.*.hits": "requests that hit in the cache, per technique",
    "ctrl.*.misses": "requests that missed in the cache, per technique",
    "ctrl.*.read_requests": "read requests processed, per technique",
    "ctrl.*.read_bypass": (
        "WG+RB reads served from the Set-Buffer via the RB output "
        "multiplexer (no array access, no premature write-back)"
    ),
    "ctrl.*.rmw_issued": (
        "read-modify-write row operations issued by the RMW-family "
        "controllers (the paper's 2x write cost)"
    ),
    "ctrl.*.sb_fill": (
        "Set-Buffer fills: whole-row reads that load the buffered set"
    ),
    "ctrl.*.sb_hit": "writes absorbed by an already-buffered set",
    "ctrl.*.sb_silent_write": (
        "writes dropped because the Set-Buffer already held the value "
        "(silent-store elimination inside the buffer)"
    ),
    "ctrl.*.sb_writeback_*": (
        "Set-Buffer write-backs by reason: premature, eviction, "
        "fill_flush, or final (the WG cost the paper trades against)"
    ),
    "ctrl.*.write_requests": "write requests processed, per technique",
    # -- span timing (repro.obs.spans) -------------------------------------
    "span.*.calls": "times the named phase/span was entered",
    "span.*.seconds": (
        "histogram: wall-clock duration per span entry (SPAN_BUCKETS_S)"
    ),
    "span.*.total_s": "cumulative wall-clock seconds inside the span",
    # -- structured warnings (Telemetry.warn) ------------------------------
    "warning.estimator.*": (
        "estimator-layer degradations: an unreadable estimation cache "
        "starting cold (warning.estimator.cache_unreadable) or an "
        "unwritable one dropping a record (warning.estimator."
        "cache_unwritable); estimates still succeed"
    ),
    "warning.*": (
        "structured degradation warnings, one counter per warning "
        "name (e.g. warning.parallel.pool_fallback); always paired "
        "with a log record and a trace instant"
    ),
}
