"""Metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the numeric half of the telemetry layer (the trace
sinks in :mod:`repro.obs.sinks` are the event half).  Design goals, in
order:

1. **Hot-loop cheap.**  ``Counter.inc`` is one attribute add on a
   ``__slots__`` object; instruments pre-bind their counters once so
   the per-request cost is a bound-method call, not a dict lookup.
2. **Mergeable.**  Campaign workers in :mod:`repro.sim.parallel` run in
   separate processes; each builds its own registry and the parent
   folds them together with :meth:`MetricsRegistry.merge` /
   :meth:`MetricsRegistry.merge_state`.  Merge is associative and
   commutative (counters/histograms add, gauges keep the max), so the
   fold order never changes the result.
3. **Serialisable.**  :meth:`MetricsRegistry.state_dict` is plain
   JSON-compatible data — it crosses process boundaries and lands in
   ``--metrics-out`` files unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple
from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
]

#: Default histogram bucket upper bounds for wall-clock durations in
#: seconds (1 µs .. 30 s, roughly decade-and-a-half spaced).
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)


class Counter:
    """Monotonic accumulator (ints or floats)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """Last-written value; merges by max (a peak across workers)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram.

    ``bounds`` are inclusive upper edges; one implicit overflow bucket
    catches everything above the last bound, so ``counts`` has
    ``len(bounds) + 1`` cells.  Bounds are fixed at creation — two
    histograms only merge when their bounds match exactly.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValidationError("histogram needs at least one bucket bound")
        ordered = tuple(bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValidationError(
                f"histogram bounds must be strictly increasing, got {bounds}"
            )
        self.name = name
        self.bounds = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count})"


class MetricsRegistry:
    """Named metrics, get-or-create, with cross-process merge.

    Besides the flat aggregate, a registry can keep **worker-labelled**
    sub-states: :meth:`merge_worker_state` folds a worker's snapshot
    into the aggregate *and* files it under its ``worker_id``, so a
    campaign's ``--metrics-out`` shows both the suite totals and the
    per-worker breakdown (``state_dict()["workers"]``).  The aggregate
    is always exactly the sum of the labelled states plus whatever the
    parent recorded directly — pinned bit-identically by
    ``tests/obs/test_registry.py``.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_workers")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._workers: Dict[str, "MetricsRegistry"] = {}

    # -- get-or-create ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_LATENCY_BUCKETS_S
            )
        elif bounds is not None and tuple(bounds) != metric.bounds:
            raise ValidationError(
                f"histogram {name!r} already exists with bounds "
                f"{metric.bounds}, requested {tuple(bounds)}"
            )
        return metric

    # -- convenience --------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float, bounds: Optional[Sequence[float]] = None
    ) -> None:
        self.histogram(name, bounds).observe(value)

    def value(self, name: str) -> float:
        """Counter value by name (0 when the counter never fired)."""
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0

    def counters(self) -> Iterable[Counter]:
        return self._counters.values()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- merge --------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place; returns self."""
        return self.merge_state(other.state_dict())

    def merge_state(self, state: Dict) -> "MetricsRegistry":
        """Fold a :meth:`state_dict` (e.g. from a worker process) in.

        A ``"workers"`` section (worker-labelled sub-states) merges
        label-by-label, so round-tripping a labelled registry through
        ``state_dict``/``from_state`` preserves the breakdown.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in state.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, payload in state.get("histograms", {}).items():
            incoming_bounds = tuple(payload["bounds"])
            histogram = self.histogram(name, incoming_bounds)
            if histogram.bounds != incoming_bounds:
                raise ValidationError(
                    f"cannot merge histogram {name!r}: bounds differ"
                )
            for i, count in enumerate(payload["counts"]):
                histogram.counts[i] += count
            histogram.total += payload["total"]
            histogram.count += payload["count"]
        for worker_id, worker_state in state.get("workers", {}).items():
            self._worker(worker_id).merge_state(worker_state)
        return self

    def merge_worker_state(
        self, state: Dict, worker_id: str
    ) -> "MetricsRegistry":
        """Fold a worker's snapshot in under a ``worker_id`` label.

        The counters/gauges/histograms land in the aggregate exactly as
        :meth:`merge_state` would place them, *and* a per-worker copy
        is kept so the serialised output can attribute metrics to the
        worker that produced them.  Repeated merges under one id
        accumulate (a retried benchmark's final attempt adds to its
        earlier partial state, matching the aggregate's behaviour).
        """
        if not worker_id:
            raise ValidationError("worker_id must be a non-empty string")
        if "workers" in state:
            raise ValidationError(
                "cannot label an already worker-labelled state; merge it "
                "with merge_state() instead"
            )
        self.merge_state(state)
        self._worker(worker_id).merge_state(state)
        return self

    def _worker(self, worker_id: str) -> "MetricsRegistry":
        registry = self._workers.get(worker_id)
        if registry is None:
            registry = self._workers[worker_id] = MetricsRegistry()
        return registry

    def worker_ids(self) -> List[str]:
        """Labels seen by :meth:`merge_worker_state`, insertion-ordered."""
        return list(self._workers)

    def worker_state(self, worker_id: str) -> Dict:
        """One worker's :meth:`state_dict` (raises on unknown id)."""
        registry = self._workers.get(worker_id)
        if registry is None:
            raise ValidationError(f"no worker state labelled {worker_id!r}")
        return registry.state_dict()

    # -- serialisation ------------------------------------------------------

    def state_dict(self) -> Dict:
        """JSON-compatible snapshot (picklable across process pools).

        The ``"workers"`` key is only present when worker-labelled
        states exist, so payloads from unlabelled registries keep their
        historical three-key shape.
        """
        state = {
            "counters": {c.name: c.value for c in self._counters.values()},
            "gauges": {g.name: g.value for g in self._gauges.values()},
            "histograms": {
                h.name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "count": h.count,
                }
                for h in self._histograms.values()
            },
        }
        if self._workers:
            state["workers"] = {
                worker_id: registry.state_dict()
                for worker_id, registry in self._workers.items()
            }
        return state

    @classmethod
    def from_state(cls, state: Dict) -> "MetricsRegistry":
        return cls().merge_state(state)

    def to_dict(self) -> Dict:
        """Alias of :meth:`state_dict` — the ``--metrics-out`` payload."""
        return self.state_dict()

    def top_counters(self, n: int = 20) -> List[Tuple[str, float]]:
        """The ``n`` largest counters, for the profiler's hot table."""
        ranked = sorted(
            ((c.name, c.value) for c in self._counters.values()),
            key=lambda pair: pair[1],
            reverse=True,
        )
        return ranked[:n]
