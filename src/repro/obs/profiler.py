"""Benchmark profiler — the engine behind ``repro-8t profile``.

Runs one benchmark through a set of techniques with telemetry fully
enabled, structured into the three campaign phases (trace-gen, warm-up,
measure), and packages the result for table rendering: phase timings
from the span counters, the hottest instrumentation counters, and the
per-technique event totals (aggregated with ``SRAMEventLog.__add__``).

This module is intentionally *not* re-exported from ``repro.obs`` —
it imports the simulation stack, which itself imports
``repro.obs.telemetry``, and keeping it out of the package ``__init__``
keeps that dependency a one-way street.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.obs.spans import phase_timings, span
from repro.obs.telemetry import Telemetry
from repro.sim.simulator import SimulationResult, Simulator
from repro.sram.events import SRAMEventLog
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

__all__ = ["ProfileReport", "profile_benchmark"]

DEFAULT_TECHNIQUES = ("conventional", "rmw", "wg", "wg_rb")


@dataclass(frozen=True)
class ProfileReport:
    """Everything ``repro-8t profile`` prints."""

    benchmark: str
    geometry: CacheGeometry
    accesses: int
    results: Dict[str, SimulationResult]
    telemetry: Telemetry = field(repr=False)

    def phase_rows(self) -> List[Tuple[str, int, float, float]]:
        """``(phase, calls, total_s, mean_ms)`` sorted by total time."""
        return phase_timings(self.telemetry.registry)

    def hot_counters(self, n: int = 15) -> List[Tuple[str, float]]:
        """Largest non-span counters — the simulator's hot paths."""
        ranked = [
            (name, value)
            for name, value in self.telemetry.registry.top_counters(n=10_000)
            if not name.startswith("span.")
        ]
        return ranked[:n]

    @property
    def total_events(self) -> SRAMEventLog:
        """Event log summed across all techniques (``__add__`` at work)."""
        return sum(
            (result.events for result in self.results.values()),
            SRAMEventLog(),
        )

    def technique_rows(self) -> List[Tuple[str, int, int, float]]:
        """``(technique, array_accesses, requests, hit_rate_pct)`` rows."""
        return [
            (
                name,
                result.array_accesses,
                result.requests,
                100.0 * result.cache_stats.hit_rate,
            )
            for name, result in self.results.items()
        ]


def profile_benchmark(
    benchmark: str,
    geometry: CacheGeometry = BASELINE_GEOMETRY,
    accesses: int = 20_000,
    seed: int = 2012,
    techniques: Sequence[str] = DEFAULT_TECHNIQUES,
    warmup_fraction: float = 0.1,
    telemetry: Optional[Telemetry] = None,
) -> ProfileReport:
    """Profile one benchmark end-to-end with telemetry on.

    A caller-supplied ``telemetry`` is used as-is (so the CLI can point
    its sink at ``--trace-out``); otherwise a metrics-only one is built.
    """
    telem = telemetry if telemetry is not None else Telemetry()
    with span(telem, "trace_gen", benchmark=benchmark, accesses=accesses):
        trace = generate_trace(get_profile(benchmark), accesses, seed=seed)
    warmup = int(accesses * warmup_fraction)
    results: Dict[str, SimulationResult] = {}
    for technique in techniques:
        simulator = Simulator(technique, geometry, telemetry=telem)
        if warmup:
            with span(telem, f"warmup.{technique}", benchmark=benchmark):
                simulator.feed(trace[:warmup])
            simulator.reset_measurements()
        with span(telem, f"measure.{technique}", benchmark=benchmark):
            simulator.feed(trace[warmup:])
        results[technique] = simulator.finish()
    return ProfileReport(
        benchmark=benchmark,
        geometry=geometry,
        accesses=accesses,
        results=results,
        telemetry=telem,
    )
