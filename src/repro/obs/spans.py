"""Wall-clock timing: ``Timer``, ``Span`` and the ``span()`` helper.

This is the API that replaces ad-hoc ``time.perf_counter()`` pairs.
A :class:`Timer` just measures; a :class:`Span` additionally reports —
on exit it feeds the duration into the telemetry registry (as
``span.<name>.calls`` / ``span.<name>.total_s`` counters plus a
``span.<name>.seconds`` histogram) and emits a complete event to the
trace sink, so phases show up both in ``--metrics-out`` tables and on
the Chrome-trace timeline.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.telemetry import Telemetry

__all__ = ["Timer", "Span", "span", "timer", "phase_timings"]

#: Histogram bounds for phase durations (10 µs .. 60 s).
SPAN_BUCKETS_S = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0)


class Timer:
    """Context-manager stopwatch.

    ``elapsed`` is valid both inside the block (time so far) and after
    it (final duration).
    """

    __slots__ = ("started", "_stopped")

    def __init__(self) -> None:
        self.started: Optional[float] = None
        self._stopped: Optional[float] = None

    def start(self) -> "Timer":
        self.started = time.perf_counter()
        self._stopped = None
        return self

    def stop(self) -> float:
        if self.started is None:
            raise ValidationError("timer was never started")
        self._stopped = time.perf_counter()
        return self.elapsed

    @property
    def running(self) -> bool:
        return self.started is not None and self._stopped is None

    @property
    def elapsed(self) -> float:
        """Seconds since start (frozen once stopped)."""
        if self.started is None:
            return 0.0
        end = self._stopped if self._stopped is not None else time.perf_counter()
        return end - self.started

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


class Span(Timer):
    """A timer that reports to a :class:`~repro.obs.telemetry.Telemetry`."""

    __slots__ = ("telemetry", "name", "category", "args")

    def __init__(
        self,
        telemetry: "Telemetry",
        name: str,
        category: str = "phase",
        args: Optional[Dict] = None,
    ) -> None:
        super().__init__()
        self.telemetry = telemetry
        self.name = name
        self.category = category
        self.args = args

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self.stop()
        telemetry = self.telemetry
        if not telemetry.enabled:
            return
        registry = telemetry.registry
        registry.inc(f"span.{self.name}.calls")
        registry.inc(f"span.{self.name}.total_s", self.elapsed)
        registry.observe(f"span.{self.name}.seconds", self.elapsed, SPAN_BUCKETS_S)
        if telemetry.sink.enabled:
            args = dict(self.args) if self.args else None
            if exc_type is not None and args is not None:
                args["error"] = exc_type.__name__
            elif exc_type is not None:
                args = {"error": exc_type.__name__}
            telemetry.sink.complete(
                self.name, self.started, self.elapsed, self.category, args
            )


def span(
    telemetry: "Telemetry",
    name: str,
    category: str = "phase",
    **args,
) -> Span:
    """``with span(telem, "measure", benchmark="bwaves"): ...``"""
    return Span(telemetry, name, category, args or None)


def timer() -> Timer:
    """A plain stopwatch with no reporting attached."""
    return Timer()


def phase_timings(registry) -> List[Tuple[str, int, float, float]]:
    """Extract ``(phase, calls, total_s, mean_ms)`` rows from a registry.

    Reads the ``span.<name>.*`` counters that :class:`Span` maintains;
    rows come back sorted by total time, longest first.
    """
    rows = []
    for counter in registry.counters():
        if counter.name.startswith("span.") and counter.name.endswith(".calls"):
            name = counter.name[len("span."):-len(".calls")]
            calls = int(counter.value)
            total = registry.value(f"span.{name}.total_s")
            mean_ms = (total / calls * 1e3) if calls else 0.0
            rows.append((name, calls, total, mean_ms))
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows
