"""repro.obs.perf — the performance-regression observatory.

The repo's north star is "fast as the hardware allows" *as a ratcheted
invariant*: every perf win the engine lands must stay landed.  A single
overwritten snapshot (``BENCH_hotpath.json``) cannot express that — it
answers "how fast now?" but never "is now slower than before, beyond
noise?".  This package closes the loop with four pieces:

``env``
    :func:`environment_fingerprint` — commit, Python version, CPU
    model/count, hostname — stamped onto every measurement so numbers
    from different machines are never silently compared as equals.
``ledger``
    An append-only JSONL history of hot-path benchmark runs
    (``benchmarks/results/bench_history.jsonl`` by default), written by
    ``repro-8t bench --history``.  ``BENCH_hotpath.json`` stays the
    latest-snapshot view; the ledger is the trajectory.
``gates``
    ``repro-8t perf compare`` — a rolling baseline over the last K
    ledger entries with noise bands derived from the same
    mean/standard-deviation statistics as :mod:`repro.sim.stability`.
    The gate is *self-tightening*: as faster runs enter the ledger the
    baseline mean rises and the regression threshold rises with it,
    replacing hand-pinned speedup floors.
``trend``
    ``repro-8t perf report`` — a per-technique trajectory rendered as a
    markdown table with sparkline deltas (``docs/perf-trend.md``).

Gates compare **speedup ratios** (batched over scalar), not absolute
accesses/sec: a ratio measured on one machine transfers to another,
while raw throughput does not — which is exactly why the ledger also
carries the environment fingerprint for the absolute numbers.
"""

from repro.obs.perf.env import environment_fingerprint, utc_timestamp
from repro.obs.perf.gates import (
    FALLBACK_SPEEDUP_FLOORS,
    GateResult,
    TechniqueGate,
    compare_to_baseline,
)
from repro.obs.perf.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    append_run,
    read_ledger,
    run_record,
)
from repro.obs.perf.trend import render_trend, write_trend_report

__all__ = [
    "environment_fingerprint",
    "utc_timestamp",
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA_VERSION",
    "LedgerEntry",
    "append_run",
    "read_ledger",
    "run_record",
    "FALLBACK_SPEEDUP_FLOORS",
    "GateResult",
    "TechniqueGate",
    "compare_to_baseline",
    "render_trend",
    "write_trend_report",
]
