"""Statistical regression gates over the bench-history ledger.

``repro-8t perf compare`` replaces the hand-pinned speedup floors that
used to live in ``benchmarks/bench_hotpath.py``: instead of a constant
chosen once ("the batched engine must stay above 2.0x"), the gate
derives a **rolling baseline** from the last K comparable ledger
entries and fails only on a drop beyond the measured noise.

Methodology
-----------
For each technique, the baseline window's speedups feed the same
mean / sample-standard-deviation statistics the seed-stability analysis
uses (:class:`repro.sim.stability.StabilityResult` — reused directly,
not re-implemented).  The regression threshold is::

    threshold = mean - max(sigma * std, min_band * mean)

* ``sigma * std`` is the noise band proper: a drop within a few
  standard deviations of the historical mean is scheduler jitter, not a
  regression.  ``sigma`` defaults to 3 — the false-positive rate of a
  3-sigma band on roughly normal noise is well under 1 %.
* ``min_band * mean`` is the floor on the band's width: a very quiet
  ledger (tiny std) must not turn the gate into a hair trigger that
  fires on the first normally-noisy CI run.  Defaults to 10 % of the
  mean.
* The threshold never drops below the legacy static floor for the
  technique (when one exists), so the gate is a **ratchet**: history
  can only tighten it, never loosen it below the hand-pinned minimum.

Only ledger entries measuring the *same workload shape* (benchmark,
geometry, trace length) enter the baseline, and the gate compares
speedup **ratios**, which transfer across machines; absolute
accesses/sec do not and are reported for context only.

With fewer than :data:`MIN_SAMPLES` comparable entries the gate falls
back to the static floor (bootstrap mode) — a brand-new ledger must not
make the perf job vacuous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.obs.perf.ledger import LedgerEntry
from repro.sim.stability import StabilityResult

__all__ = [
    "FALLBACK_SPEEDUP_FLOORS",
    "MIN_SAMPLES",
    "TechniqueGate",
    "GateResult",
    "compare_to_baseline",
]

#: Static bootstrap floors, inherited from the original perf-smoke
#: pins: conservative minima that only apply until the ledger has
#: enough history — and below which the rolling threshold never drops.
FALLBACK_SPEEDUP_FLOORS: Dict[str, float] = {
    "conventional": 2.0,
    "rmw": 2.0,
    "wg": 1.4,
    "wg_rb": 1.4,
}

#: Ledger entries needed before the rolling baseline engages; below
#: this the sample standard deviation is meaningless.
MIN_SAMPLES = 2


@dataclass(frozen=True)
class TechniqueGate:
    """One technique's verdict against the rolling baseline.

    ``source`` says where ``threshold`` came from: ``"ledger"`` (the
    rolling noise band), ``"floor"`` (static bootstrap — not enough
    history), or ``"none"`` (no history *and* no floor: informational
    only, can never regress).
    """

    technique: str
    current_speedup: float
    threshold: float
    source: str
    samples: int
    baseline_mean: float
    baseline_std: float

    @property
    def regressed(self) -> bool:
        return self.source != "none" and self.current_speedup < self.threshold

    def describe(self) -> str:
        if self.source == "ledger":
            basis = (
                f"baseline {self.baseline_mean:.2f}x +/- "
                f"{self.baseline_std:.3f} over {self.samples} runs"
            )
        elif self.source == "floor":
            basis = f"static floor (only {self.samples} comparable runs)"
        else:
            basis = "no baseline"
        verdict = "REGRESSION" if self.regressed else "ok"
        return (
            f"{self.technique}: {self.current_speedup:.2f}x vs "
            f"threshold {self.threshold:.2f}x ({basis}) -> {verdict}"
        )


@dataclass(frozen=True)
class GateResult:
    """All techniques' verdicts for one ``perf compare`` invocation."""

    gates: Tuple[TechniqueGate, ...]
    window: int
    sigma: float
    min_band: float
    comparable_entries: int

    @property
    def regressions(self) -> List[TechniqueGate]:
        return [gate for gate in self.gates if gate.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible gate report (uploaded as a CI artifact)."""
        return {
            "window": self.window,
            "sigma": self.sigma,
            "min_band": self.min_band,
            "comparable_entries": self.comparable_entries,
            "ok": self.ok,
            "gates": [
                {
                    "technique": gate.technique,
                    "current_speedup": gate.current_speedup,
                    "threshold": gate.threshold,
                    "source": gate.source,
                    "samples": gate.samples,
                    "baseline_mean": gate.baseline_mean,
                    "baseline_std": gate.baseline_std,
                    "regressed": gate.regressed,
                }
                for gate in self.gates
            ],
        }


def _current_speedups(results: Sequence[Any]) -> Dict[str, float]:
    """``technique -> speedup`` from BenchResults or their dict form."""
    speedups: Dict[str, float] = {}
    for result in results:
        if hasattr(result, "to_dict"):
            result = result.to_dict()
        if not isinstance(result, dict) or "technique" not in result:
            raise ValidationError(
                "compare_to_baseline needs BenchResult objects or "
                "to_dict() dicts"
            )
        speedups[str(result["technique"])] = float(result["speedup"])
    if not speedups:
        raise ValidationError("no current bench results to gate")
    return speedups


def _gate_one(
    technique: str,
    current: float,
    samples: Sequence[float],
    sigma: float,
    min_band: float,
    floors: Dict[str, float],
) -> TechniqueGate:
    floor = floors.get(technique)
    if len(samples) >= MIN_SAMPLES:
        stats = StabilityResult(
            technique=technique, per_seed_means=tuple(samples)
        )
        band = max(sigma * stats.std, min_band * stats.mean)
        threshold = stats.mean - band
        if floor is not None:
            threshold = max(threshold, floor)
        return TechniqueGate(
            technique=technique,
            current_speedup=current,
            threshold=threshold,
            source="ledger",
            samples=len(samples),
            baseline_mean=stats.mean,
            baseline_std=stats.std,
        )
    if floor is not None:
        return TechniqueGate(
            technique=technique,
            current_speedup=current,
            threshold=floor,
            source="floor",
            samples=len(samples),
            baseline_mean=0.0,
            baseline_std=0.0,
        )
    return TechniqueGate(
        technique=technique,
        current_speedup=current,
        threshold=0.0,
        source="none",
        samples=len(samples),
        baseline_mean=0.0,
        baseline_std=0.0,
    )


def compare_to_baseline(
    current_results: Sequence[Any],
    entries: Sequence[LedgerEntry],
    benchmark: str,
    geometry: str,
    accesses: int,
    window: int = 10,
    sigma: float = 3.0,
    min_band: float = 0.10,
    floors: Optional[Dict[str, float]] = None,
) -> GateResult:
    """Gate ``current_results`` against the rolling ledger baseline.

    ``entries`` is the full parsed ledger (oldest first); only entries
    matching the ``(benchmark, geometry, accesses)`` workload shape are
    baselined, and of those only the newest ``window``.  ``floors``
    defaults to :data:`FALLBACK_SPEEDUP_FLOORS`.
    """
    if window < MIN_SAMPLES:
        raise ValidationError(
            f"window must be >= {MIN_SAMPLES}, got {window}"
        )
    if sigma <= 0:
        raise ValidationError(f"sigma must be positive, got {sigma}")
    if not 0.0 <= min_band < 1.0:
        raise ValidationError(
            f"min_band must be in [0, 1), got {min_band}"
        )
    floors = floors if floors is not None else FALLBACK_SPEEDUP_FLOORS
    speedups = _current_speedups(current_results)
    comparable = [
        entry
        for entry in entries
        if entry.matches_workload(benchmark, geometry, accesses)
    ]
    recent = comparable[-window:]
    gates = []
    for technique in speedups:
        samples = [
            speedup
            for speedup in (entry.speedup(technique) for entry in recent)
            if speedup is not None
        ]
        gates.append(
            _gate_one(
                technique,
                speedups[technique],
                samples,
                sigma,
                min_band,
                floors,
            )
        )
    return GateResult(
        gates=tuple(gates),
        window=window,
        sigma=sigma,
        min_band=min_band,
        comparable_entries=len(comparable),
    )
