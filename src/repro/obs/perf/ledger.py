"""The bench-history ledger: append-only JSONL of hot-path runs.

One line per ``repro-8t bench --history`` run.  Each record carries the
workload identity (benchmark, geometry, accesses, seed), the
per-technique results (speedup, accesses/sec, raw seconds) and the
:func:`repro.obs.perf.env.environment_fingerprint` of the measuring
machine.  ``BENCH_hotpath.json`` remains the latest-snapshot view; the
ledger is the trajectory that the statistical gates
(:mod:`repro.obs.perf.gates`) and the trend report
(:mod:`repro.obs.perf.trend`) are built on.

Robustness rules, in the spirit of the checkpoint journal
(:mod:`repro.sim.checkpoint`): appends are single ``write()`` calls of
one line, reads skip torn or malformed lines instead of failing (a
half-written record from a killed run must not poison the history), and
unknown future schema versions are skipped, not guessed at.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ValidationError

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "DEFAULT_LEDGER_PATH",
    "LedgerEntry",
    "run_record",
    "append_run",
    "read_ledger",
]

#: Bump when the record shape changes incompatibly; readers skip
#: records from the future instead of misinterpreting them.
LEDGER_SCHEMA_VERSION = 1

#: Where ``repro-8t bench --history`` appends by default (repo-relative).
DEFAULT_LEDGER_PATH = Path("benchmarks") / "results" / "bench_history.jsonl"

#: Per-technique result fields copied into each ledger record.  The
#: columnar tier's fields are additive — absent when a run did not
#: measure the columnar engine — so the schema version is unchanged.
_RESULT_FIELDS = (
    "technique",
    "accesses",
    "scalar_seconds",
    "batched_seconds",
    "columnar_seconds",
    "scalar_accesses_per_second",
    "batched_accesses_per_second",
    "columnar_accesses_per_second",
    "speedup",
    "columnar_speedup",
)

#: ``on_skip(line_number, reason)`` callback for unreadable records.
SkipCallback = Callable[[int, str], None]


@dataclass(frozen=True)
class LedgerEntry:
    """One parsed ledger record (one benchmark run, all techniques)."""

    schema: int
    timestamp_utc: str
    benchmark: str
    geometry: str
    accesses: int
    seed: int
    repeats: int
    env: Dict[str, Any] = field(default_factory=dict)
    results: Dict[str, Dict[str, float]] = field(default_factory=dict)

    # -- per-technique accessors --------------------------------------------

    @property
    def techniques(self) -> List[str]:
        return list(self.results)

    def speedup(self, technique: str) -> Optional[float]:
        result = self.results.get(technique)
        return None if result is None else float(result.get("speedup", 0.0))

    def batched_aps(self, technique: str) -> Optional[float]:
        result = self.results.get(technique)
        if result is None:
            return None
        return float(result.get("batched_accesses_per_second", 0.0))

    def columnar_speedup(self, technique: str) -> Optional[float]:
        """Columnar-over-batched speedup; ``None`` when not measured."""
        result = self.results.get(technique)
        if result is None or "columnar_speedup" not in result:
            return None
        return float(result["columnar_speedup"])

    # -- provenance shorthands ----------------------------------------------

    @property
    def commit(self) -> str:
        return str(self.env.get("commit", "unknown"))

    @property
    def short_commit(self) -> str:
        commit = self.commit
        dirty = "+dirty" if commit.endswith("+dirty") else ""
        base = commit[: -len("+dirty")] if dirty else commit
        return (base[:10] + dirty) if base != "unknown" else base

    @property
    def hostname(self) -> str:
        return str(self.env.get("hostname", "unknown"))

    @property
    def short_timestamp(self) -> str:
        """``YYYY-MM-DD HH:MM`` — enough to order runs by eye."""
        return self.timestamp_utc.replace("T", " ")[:16]

    def matches_workload(
        self, benchmark: str, geometry: str, accesses: int
    ) -> bool:
        """True when this entry measured the same workload shape.

        Speedups from different benchmarks, geometries or trace lengths
        are not comparable; the gates only baseline against matching
        entries.
        """
        return (
            self.benchmark == benchmark
            and self.geometry == geometry
            and self.accesses == accesses
        )


def _result_dict(result: Any) -> Dict[str, Any]:
    """Accept a ``BenchResult`` (duck-typed via ``to_dict``) or a dict."""
    if hasattr(result, "to_dict"):
        result = result.to_dict()
    if not isinstance(result, dict) or "technique" not in result:
        raise ValidationError(
            "ledger results must be BenchResult objects or to_dict() "
            f"dicts with a 'technique' key, got {type(result).__name__}"
        )
    return {key: result[key] for key in _RESULT_FIELDS if key in result}


def run_record(
    results: Sequence[Any],
    benchmark: str,
    geometry: str,
    accesses: int,
    seed: int,
    repeats: int,
    env: Optional[Dict[str, Any]] = None,
    timestamp: Optional[str] = None,
) -> Dict[str, Any]:
    """Build one ledger record from a hot-path bench run.

    ``results`` are :class:`repro.engine.bench.BenchResult` objects (or
    their ``to_dict`` form); ``env`` defaults to a fresh
    :func:`environment_fingerprint`, ``timestamp`` to UTC now.
    """
    if env is None:
        from repro.obs.perf.env import environment_fingerprint

        env = environment_fingerprint()
    if timestamp is None:
        from repro.obs.perf.env import utc_timestamp

        timestamp = utc_timestamp()
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "timestamp_utc": timestamp,
        "benchmark": benchmark,
        "geometry": geometry,
        "accesses": accesses,
        "seed": seed,
        "repeats": repeats,
        "env": dict(env),
        "results": [_result_dict(result) for result in results],
    }


def append_run(
    path: Union[str, Path], record: Dict[str, Any]
) -> Path:
    """Append one record as a single JSONL line (creating parents).

    The record is serialised first and written with one ``write()``
    call, so a crash mid-append leaves at most one torn final line —
    which :func:`read_ledger` skips on the next read.
    """
    if "schema" not in record or "results" not in record:
        raise ValidationError(
            "ledger record lacks 'schema'/'results'; build it with "
            "run_record()"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True) + "\n"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
    return path


def _parse_entry(payload: Dict[str, Any]) -> LedgerEntry:
    schema = payload["schema"]
    if not isinstance(schema, int) or schema > LEDGER_SCHEMA_VERSION:
        raise ValidationError(f"unsupported ledger schema {schema!r}")
    results: Dict[str, Dict[str, float]] = {}
    for result in payload["results"]:
        results[str(result["technique"])] = {
            key: value
            for key, value in result.items()
            if key != "technique"
        }
    return LedgerEntry(
        schema=schema,
        timestamp_utc=str(payload.get("timestamp_utc", "")),
        benchmark=str(payload["benchmark"]),
        geometry=str(payload["geometry"]),
        accesses=int(payload["accesses"]),
        seed=int(payload.get("seed", 0)),
        repeats=int(payload.get("repeats", 0)),
        env=dict(payload.get("env", {})),
        results=results,
    )


def read_ledger(
    path: Union[str, Path], on_skip: Optional[SkipCallback] = None
) -> List[LedgerEntry]:
    """Parse a ledger file, oldest first; a missing file is empty.

    Malformed lines — torn writes, hand-edits, records from a future
    schema — are skipped, reported through ``on_skip(line_number,
    reason)`` when given, and never abort the read: one bad line must
    not take the whole history offline.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: List[LedgerEntry] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValidationError("record is not a JSON object")
                entries.append(_parse_entry(payload))
            except (ValueError, KeyError, TypeError) as exc:
                if on_skip is not None:
                    on_skip(line_number, f"{type(exc).__name__}: {exc}")
    return entries
