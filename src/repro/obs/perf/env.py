"""Environment fingerprinting for benchmark records.

A throughput number without its machine is noise: 500 k accesses/sec on
a laptop and 300 k on a shared CI runner are both healthy, and
comparing them as equals would fire (or mask) regressions that do not
exist.  Every ledger entry therefore carries a fingerprint of where it
was measured — commit, Python, CPU — so readers can group comparable
runs and the trend report can annotate machine changes.

Everything here degrades gracefully: a missing ``git`` binary, a
detached worktree or an exotic platform yields ``"unknown"`` fields,
never an exception — benchmarking must not fail because provenance
collection did.
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
import sys
from datetime import datetime, timezone
from typing import Dict, Optional, Union

__all__ = ["environment_fingerprint", "git_commit", "cpu_model", "utc_timestamp"]


def utc_timestamp() -> str:
    """Second-resolution ISO-8601 UTC now (the ledger's timestamp form)."""
    return datetime.now(timezone.utc).replace(microsecond=0).isoformat()

#: Fallback for any fingerprint field that cannot be determined.
UNKNOWN = "unknown"


def git_commit(cwd: Optional[Union[str, "os.PathLike[str]"]] = None) -> str:
    """The current commit hash, or ``"unknown"`` outside a git tree.

    Appends ``+dirty`` when the worktree has uncommitted changes, so a
    ledger entry can never silently claim to be a clean commit it is
    not.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        if commit.returncode != 0:
            return UNKNOWN
        sha = commit.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        if status.returncode == 0 and status.stdout.strip():
            return sha + "+dirty"
        return sha
    except (OSError, subprocess.SubprocessError):
        return UNKNOWN


def cpu_model() -> str:
    """A human CPU description (``/proc/cpuinfo`` model name on Linux)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    _, _, value = line.partition(":")
                    value = value.strip()
                    if value:
                        return value
    except OSError:
        pass
    return platform.processor() or platform.machine() or UNKNOWN


def environment_fingerprint(
    cwd: Optional[Union[str, "os.PathLike[str]"]] = None,
) -> Dict[str, Union[str, int]]:
    """Everything needed to interpret a benchmark number later.

    Keys are stable (they are the ledger's ``env`` schema):

    ``commit``
        git HEAD (``+dirty`` suffix for an unclean tree).
    ``python`` / ``python_impl``
        interpreter version and implementation (CPython vs PyPy changes
        hot-path throughput by an order of magnitude).
    ``cpu_count`` / ``cpu_model``
        parallelism budget and the actual silicon.
    ``hostname`` / ``platform``
        which machine and OS produced the number.
    """
    try:
        hostname = socket.gethostname() or UNKNOWN
    except OSError:  # pragma: no cover - no hostname syscall failure in CI
        hostname = UNKNOWN
    return {
        "commit": git_commit(cwd),
        "python": platform.python_version(),
        "python_impl": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 0,
        "cpu_model": cpu_model(),
        "hostname": hostname,
        "platform": sys.platform,
    }
