"""Structured trace sinks.

A :class:`TraceSink` receives the event half of the telemetry layer:
*instants* (a named point in time — an RMW issued, a Set-Buffer
eviction, a pool-fallback warning) and *completes* (a named span with a
duration — a campaign phase, one figure reproduction).

Three implementations:

``NullSink``
    The zero-overhead default.  ``enabled`` is False, so instruments
    skip even building the event payload.
``JsonlSink``
    One JSON object per line, streamed as events happen — greppable,
    tail-able, and trivially parsed back (see ``read_jsonl_trace``).
``ChromeTraceSink``
    Buffers events and writes Chrome ``trace_event`` JSON on close, so
    a campaign timeline opens directly in ``chrome://tracing`` or
    https://ui.perfetto.dev.

Timestamps are microseconds of ``time.perf_counter`` relative to sink
creation, which is what the Chrome trace viewer expects.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, IO, List, Optional, Union
from repro.errors import ValidationError

__all__ = [
    "TraceSink",
    "NullSink",
    "JsonlSink",
    "ChromeTraceSink",
    "sink_for_path",
    "read_jsonl_trace",
    "merge_chrome_traces",
]


class TraceSink:
    """Base sink: the protocol every sink implements.

    ``enabled`` lets hot-loop instrumentation points skip payload
    construction entirely when tracing is off; always check it before
    doing per-event work that allocates.
    """

    enabled: bool = True

    def instant(
        self,
        name: str,
        category: str = "event",
        args: Optional[Dict] = None,
    ) -> None:
        raise NotImplementedError

    def complete(
        self,
        name: str,
        start: float,
        duration: float,
        category: str = "span",
        args: Optional[Dict] = None,
    ) -> None:
        """Record a finished span.

        ``start`` is an absolute ``time.perf_counter()`` reading and
        ``duration`` is in seconds; the sink converts both to its
        wire format.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; idempotent."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class NullSink(TraceSink):
    """Discard everything; the default when tracing is not requested."""

    enabled = False

    def instant(self, name, category="event", args=None) -> None:
        pass

    def complete(self, name, start, duration, category="span", args=None) -> None:
        pass


class _FileSink(TraceSink):
    """Shared open/close plumbing for file-backed sinks."""

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._handle: Optional[IO[str]] = target
            self._owns_handle = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(target)
            self._handle = open(self.path, "w", encoding="utf-8")
            self._owns_handle = True
        self._origin = time.perf_counter()

    def _ts_us(self, instant: Optional[float] = None) -> float:
        at = time.perf_counter() if instant is None else instant
        return (at - self._origin) * 1e6

    def close(self) -> None:
        if self._handle is not None and self._owns_handle:
            self._handle.close()
        self._handle = None


class JsonlSink(_FileSink):
    """One JSON object per line, written as events arrive."""

    def _emit(self, record: Dict) -> None:
        if self._handle is None:
            raise ValidationError("sink is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def instant(self, name, category="event", args=None) -> None:
        record = {"type": "instant", "name": name, "cat": category,
                  "ts_us": round(self._ts_us(), 3)}
        if args:
            record["args"] = args
        self._emit(record)

    def complete(self, name, start, duration, category="span", args=None) -> None:
        record = {
            "type": "span",
            "name": name,
            "cat": category,
            "ts_us": round(self._ts_us(start), 3),
            "dur_us": round(duration * 1e6, 3),
        }
        if args:
            record["args"] = args
        self._emit(record)


class ChromeTraceSink(_FileSink):
    """Chrome ``trace_event`` JSON (open in chrome://tracing / Perfetto).

    Events are buffered in memory and serialised once on :meth:`close`
    (the format is a single JSON document, so streaming is not an
    option).  All events share one pid/tid pair per process, which is
    exactly right for this single-threaded simulator.  A multi-worker
    campaign can give each worker its own track by passing a
    ``track`` label: the trace viewer then shows the workers stacked
    as separately named processes (see :func:`merge_chrome_traces`).
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        track: Optional[str] = None,
    ) -> None:
        super().__init__(target)
        self._events: List[Dict] = []
        self._pid = os.getpid()
        self._track = track
        if track:
            # Chrome metadata event: names this pid's row in the viewer.
            self._events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": self._pid,
                    "tid": 1,
                    "args": {"name": track},
                }
            )

    def _base(self, name: str, category: str, args: Optional[Dict]) -> Dict:
        event = {"name": name, "cat": category, "pid": self._pid, "tid": 1}
        if args:
            event["args"] = args
        return event

    def instant(self, name, category="event", args=None) -> None:
        event = self._base(name, category, args)
        event.update(ph="i", s="t", ts=round(self._ts_us(), 3))
        self._events.append(event)

    def complete(self, name, start, duration, category="span", args=None) -> None:
        event = self._base(name, category, args)
        event.update(
            ph="X",
            ts=round(self._ts_us(start), 3),
            dur=round(duration * 1e6, 3),
        )
        self._events.append(event)

    def close(self) -> None:
        if self._handle is not None:
            json.dump(
                {"traceEvents": self._events, "displayTimeUnit": "ms"},
                self._handle,
            )
        super().close()


def sink_for_path(path: Union[str, Path]) -> TraceSink:
    """Pick a sink from a file extension.

    ``.jsonl``/``.ndjson`` stream JSON Lines; anything else (``.json``,
    ``.trace``) gets Chrome ``trace_event`` output.
    """
    suffix = Path(path).suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        return JsonlSink(path)
    return ChromeTraceSink(path)


def merge_chrome_traces(
    inputs: Dict[str, Union[str, Path]],
    output: Union[str, Path, IO[str]],
) -> Dict:
    """Merge per-worker Chrome traces into one multi-track document.

    ``inputs`` maps a track label (e.g. ``"worker:bwaves"``) to that
    worker's trace file.  Each input's events are rebased onto a fresh
    synthetic pid — worker pids are meaningless after the processes
    exit and can even collide when a supervisor respawns them — and a
    ``process_name`` metadata event carries the label, so the viewer
    shows one named row per worker.  Returns the merged document (also
    written to ``output``).
    """
    if not inputs:
        raise ValidationError("merge_chrome_traces needs at least one input")
    merged: List[Dict] = []
    for track_pid, (label, path) in enumerate(sorted(inputs.items()), start=1):
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        events = document.get("traceEvents", [])
        merged.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": track_pid,
                "tid": 1,
                "args": {"name": label},
            }
        )
        for event in events:
            if event.get("ph") == "M" and event.get("name") == "process_name":
                continue  # superseded by the label row above
            rebased = dict(event)
            rebased["pid"] = track_pid
            merged.append(rebased)
    document = {"traceEvents": merged, "displayTimeUnit": "ms"}
    if hasattr(output, "write"):
        json.dump(document, output)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
    return document


def read_jsonl_trace(path: Union[str, Path]) -> List[Dict]:
    """Parse a :class:`JsonlSink` file back into event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
