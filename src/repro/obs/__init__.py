"""repro.obs — the observability plane of the simulator.

Three collection surfaces behind one :class:`Telemetry` facade:

``registry``
    :class:`MetricsRegistry` — counters, gauges, fixed-bucket
    histograms; hot-loop cheap and mergeable across process-pool
    workers.
``sinks``
    Structured event tracing — :class:`NullSink` (zero-overhead
    default), :class:`JsonlSink` (JSON Lines), and
    :class:`ChromeTraceSink` (``chrome://tracing`` / Perfetto
    timelines).
``spans`` / ``sampler``
    ``span()``/``timer()`` wall-clock phases, and
    :class:`IntervalSampler` per-N-request snapshots of array
    accesses, miss rate and Set-Buffer occupancy.

Everything in the simulation stack takes ``telemetry=None`` and runs
uninstrumented (one boolean test per request) unless a real
:class:`Telemetry` is passed.  The benchmark profiler
(:mod:`repro.obs.profiler`) and the performance observatory
(:mod:`repro.obs.perf` — bench-history ledger, statistical regression
gates, trend reports) are deliberately *not* re-exported here — both
import the sim stack, and this package must stay importable from
``repro.core`` without cycles.

See ``docs/observability.md`` for the full tour.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sampler import IntervalSampler, IntervalSnapshot
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    NullSink,
    TraceSink,
    merge_chrome_traces,
    read_jsonl_trace,
    sink_for_path,
)
from repro.obs.spans import Span, Timer, phase_timings, span, timer
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, obs_logger

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "IntervalSampler",
    "IntervalSnapshot",
    "TraceSink",
    "NullSink",
    "JsonlSink",
    "ChromeTraceSink",
    "sink_for_path",
    "read_jsonl_trace",
    "merge_chrome_traces",
    "Span",
    "Timer",
    "span",
    "timer",
    "phase_timings",
    "Telemetry",
    "NULL_TELEMETRY",
    "obs_logger",
]
