"""Four-way differential check: oracle vs scalar vs batched vs columnar.

One :func:`run_differential` call replays a single trace through

* the :class:`repro.check.oracle.ReferenceOracle` (independent model),
* the scalar engine (``CacheController.process`` per record),
* the batched engine (``Simulator(engine="batched")``), and
* the columnar engine (``Simulator(engine="columnar")``) whenever
  NumPy is installed — the leg is skipped silently without it,

then compares every observable the models share: per-read values
(oracle vs scalar, access by access), circuit events, operation counts,
hit/miss statistics, and the final memory image after draining the
controller and flushing every dirty line.  The return value is a flat
list of human-readable divergence strings — empty means the models
agree on everything.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.cache.memory import FunctionalMemory
from repro.check.oracle import ORACLE_TECHNIQUES, OracleRun, ReferenceOracle
from repro.core.registry import make_controller
from repro.engine.columnar import HAVE_NUMPY
from repro.sim.simulator import Simulator
from repro.trace.record import MemoryAccess

__all__ = ["run_differential", "WG_FAMILY"]

WG_FAMILY = ("wg", "wg_rb")
"""Techniques that accept the Set-Buffer knobs."""


def _controller_kwargs(
    technique: str,
    count_miss_traffic: bool,
    detect_silent_writes: bool,
    entries: int,
) -> Dict[str, object]:
    kwargs: Dict[str, object] = {"count_miss_traffic": count_miss_traffic}
    if technique in WG_FAMILY:
        kwargs["detect_silent_writes"] = detect_silent_writes
        kwargs["entries"] = entries
    return kwargs


def _run_scalar(
    trace: Sequence[MemoryAccess],
    technique: str,
    geometry: CacheGeometry,
    kwargs: Dict[str, object],
    invariants: bool,
):
    """Scalar reference run; returns (controller, cache, outcomes, memory)."""
    memory = FunctionalMemory()
    cache = SetAssociativeCache(geometry, memory)
    controller = make_controller(technique, cache, **kwargs)
    if invariants:
        controller.enable_invariant_checks()
    outcomes = controller.run(list(trace))
    cache.flush_all_dirty()
    return controller, cache, outcomes, memory.snapshot()


def _run_engine(
    trace: Sequence[MemoryAccess],
    technique: str,
    geometry: CacheGeometry,
    kwargs: Dict[str, object],
    batch_size: Optional[int],
    engine: str,
):
    simulator = Simulator(
        technique, geometry, engine=engine, batch_size=batch_size, **kwargs
    )
    simulator.feed(list(trace))
    result = simulator.finish()
    simulator.cache.flush_all_dirty()
    return result, simulator.memory.snapshot()


def _diff_mapping(
    label: str, reference: Dict[str, int], candidate: Dict[str, int]
) -> List[str]:
    return [
        f"{label}.{name}: {reference[name]} != {candidate[name]}"
        for name in sorted(reference)
        if reference[name] != candidate.get(name)
    ]


def _as_dict(obj) -> Dict[str, int]:
    return {
        f.name: getattr(obj, f.name) for f in dataclass_fields(type(obj))
    }


def _nonzero(memory: Dict[int, int]) -> Dict[int, int]:
    return {word: value for word, value in memory.items() if value != 0}


def run_differential(
    trace: Iterable[MemoryAccess],
    technique: str,
    geometry: CacheGeometry,
    batch_size: Optional[int] = None,
    count_miss_traffic: bool = False,
    detect_silent_writes: bool = True,
    entries: int = 1,
    invariants: bool = False,
) -> List[str]:
    """Replay ``trace`` through all three models; returns divergences.

    ``invariants=True`` additionally runs the scalar engine with the
    inline invariant checker enabled (structural checks after every
    access); an :class:`repro.errors.InvariantViolation` propagates so
    the caller sees the exact broken invariant, not a downstream diff.
    """
    trace = list(trace)
    kwargs = _controller_kwargs(
        technique, count_miss_traffic, detect_silent_writes, entries
    )

    controller, cache, outcomes, scalar_memory = _run_scalar(
        trace, technique, geometry, kwargs, invariants
    )

    divergences: List[str] = []

    # -- scalar vs batched / columnar: must be bit-identical ----------------
    engines = ["batched"]
    if HAVE_NUMPY:
        engines.append("columnar")
    for engine in engines:
        candidate, candidate_memory = _run_engine(
            trace, technique, geometry, kwargs, batch_size, engine
        )
        label = f"scalar-vs-{engine}"
        divergences += _diff_mapping(
            f"{label} events",
            controller.events.to_dict(),
            candidate.events.to_dict(),
        )
        divergences += _diff_mapping(
            f"{label} counts",
            _as_dict(controller.counts),
            _as_dict(candidate.counts),
        )
        divergences += _diff_mapping(
            f"{label} stats",
            _as_dict(cache.stats),
            _as_dict(candidate.cache_stats),
        )
        if scalar_memory != candidate_memory:
            delta = {
                word
                for word in set(scalar_memory) | set(candidate_memory)
                if scalar_memory.get(word, 0) != candidate_memory.get(word, 0)
            }
            divergences.append(
                f"{label} memory: "
                f"{len(delta)} word(s) differ, first at word "
                f"{min(delta)}"
            )

    # -- oracle vs scalar ---------------------------------------------------
    if technique in ORACLE_TECHNIQUES:
        oracle_run = ReferenceOracle(
            technique,
            geometry,
            count_miss_traffic=count_miss_traffic,
            detect_silent_writes=detect_silent_writes,
            entries=entries,
        ).run(trace)
        divergences += _diff_oracle(
            oracle_run, trace, outcomes, controller, cache, scalar_memory
        )
    return divergences


def _diff_oracle(
    oracle_run: OracleRun,
    trace: Sequence[MemoryAccess],
    outcomes,
    controller,
    cache,
    scalar_memory: Dict[int, int],
) -> List[str]:
    divergences: List[str] = []
    for i, (access, outcome, expected) in enumerate(
        zip(trace, outcomes, oracle_run.read_values)
    ):
        if access.is_read and outcome.value != expected:
            divergences.append(
                f"oracle-vs-scalar read value at access {i} "
                f"({access.describe()}): expected {expected}, "
                f"got {outcome.value}"
            )
            break  # one value divergence is enough to localise
    divergences += _diff_mapping(
        "oracle-vs-scalar events",
        oracle_run.events,
        controller.events.to_dict(),
    )
    divergences += _diff_mapping(
        "oracle-vs-scalar counts",
        oracle_run.counts,
        _as_dict(controller.counts),
    )
    divergences += _diff_mapping(
        "oracle-vs-scalar stats", oracle_run.stats, _as_dict(cache.stats)
    )
    scalar_nonzero = _nonzero(scalar_memory)
    if oracle_run.memory != scalar_nonzero:
        delta = {
            word
            for word in set(oracle_run.memory) | set(scalar_nonzero)
            if oracle_run.memory.get(word, 0) != scalar_nonzero.get(word, 0)
        }
        divergences.append(
            "oracle-vs-scalar memory: "
            f"{len(delta)} word(s) differ, first at word {min(delta)}"
        )
    return divergences
