"""Oracle-differential fuzz campaigns with shrinking and corpus replay.

:func:`run_check_campaign` is the engine behind ``repro-8t check``:
for each iteration it asks the :class:`repro.check.fuzz.TraceFuzzer`
for a deterministic case (scenario, geometry, trace, batch size,
knobs), replays it through oracle / scalar / batched for every
requested technique, shrinks any failing trace to a 1-minimal repro,
and optionally saves the repro to a corpus directory.
:func:`replay_corpus` re-runs saved repros as a regression gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cache.config import CacheGeometry
from repro.check.corpus import CorpusEntry, iter_corpus, save_entry
from repro.check.differential import WG_FAMILY, run_differential
from repro.check.fuzz import FuzzCase, TraceFuzzer
from repro.check.shrink import DEFAULT_SHRINK_BUDGET, shrink_trace
from repro.core.registry import CONTROLLER_NAMES
from repro.errors import InvariantViolation, ReproError, ValidationError
from repro.store import ResultStore
from repro.trace.record import MemoryAccess

__all__ = ["CheckFailure", "CheckReport", "run_check_campaign", "replay_corpus"]


@dataclass
class CheckFailure:
    """One confirmed divergence, shrunk to a minimal repro."""

    technique: str
    scenario: str
    seed: int
    iteration: int
    geometry: CacheGeometry
    batch_size: int
    knobs: Dict[str, object]
    divergences: List[str]
    #: the 1-minimal failing trace (the original if shrinking was off).
    trace: Tuple[MemoryAccess, ...]
    original_length: int
    corpus_path: Optional[Path] = None

    def describe(self) -> str:
        lines = [
            f"{self.technique} diverged on scenario {self.scenario!r} "
            f"(seed {self.seed}, iteration {self.iteration}, "
            f"{self.geometry.describe()}, batch_size={self.batch_size}, "
            f"knobs={self.knobs})",
            f"  shrunk to {len(self.trace)} of {self.original_length} "
            "accesses:",
        ]
        lines += [f"    {access.describe()}" for access in self.trace]
        lines += [f"  {divergence}" for divergence in self.divergences[:8]]
        if len(self.divergences) > 8:
            lines.append(
                f"  ... and {len(self.divergences) - 8} more divergence(s)"
            )
        if self.corpus_path is not None:
            lines.append(f"  saved to {self.corpus_path}")
        return "\n".join(lines)


@dataclass
class CheckReport:
    """Outcome of one campaign (or one corpus replay)."""

    seed: int
    iterations: int
    techniques: Tuple[str, ...]
    cases_run: int = 0
    accesses_checked: int = 0
    failures: List[CheckFailure] = field(default_factory=list)
    #: scenario name -> cases run under it.
    scenario_cases: Dict[str, int] = field(default_factory=dict)
    #: replay verdicts served from a result store (see ``replay_corpus``).
    cached_cases: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"check: {status} — {self.cases_run} cases "
            f"({self.accesses_checked} accesses) across "
            f"{len(self.techniques)} technique(s), seed {self.seed}"
        )


def _check_case(
    case_trace: Sequence[MemoryAccess],
    technique: str,
    geometry: CacheGeometry,
    batch_size: int,
    knobs: Dict[str, object],
    invariants: bool,
) -> List[str]:
    """Run one differential; invariant violations become divergences."""
    try:
        return run_differential(
            case_trace,
            technique,
            geometry,
            batch_size=batch_size,
            invariants=invariants,
            **knobs,
        )
    except InvariantViolation as exc:
        return [f"invariant violation: {exc}"]


def run_check_campaign(
    seed: int = 0,
    iterations: int = 100,
    techniques: Sequence[str] = CONTROLLER_NAMES,
    max_accesses: int = 400,
    shrink: bool = True,
    shrink_budget: int = DEFAULT_SHRINK_BUDGET,
    invariants: bool = True,
    corpus_dir: Optional[str] = None,
    geometries: Optional[Tuple[CacheGeometry, ...]] = None,
    progress: Optional[Callable[[int, FuzzCase], None]] = None,
) -> CheckReport:
    """Fuzz ``iterations`` cases through every technique's differential.

    Each iteration is checked under all ``techniques`` — an acceptance
    run like ``--seed 0 --iterations 200`` therefore executes
    ``200 * len(techniques)`` three-way differentials.  Shrinking and
    corpus saving only engage on failure, so a clean campaign costs
    nothing beyond the checks themselves.
    """
    for technique in techniques:
        if technique not in CONTROLLER_NAMES and technique not in WG_FAMILY:
            raise ValidationError(
                f"check campaign cannot model {technique!r}; "
                f"known: {CONTROLLER_NAMES}"
            )
    fuzzer = TraceFuzzer(
        seed=seed, max_accesses=max_accesses, geometries=geometries
    )
    report = CheckReport(
        seed=seed, iterations=iterations, techniques=tuple(techniques)
    )
    for iteration in range(iterations):
        case = fuzzer.case(iteration)
        if progress is not None:
            progress(iteration, case)
        report.scenario_cases[case.scenario] = (
            report.scenario_cases.get(case.scenario, 0) + 1
        )
        knobs = case.knobs()
        for technique in techniques:
            report.cases_run += 1
            report.accesses_checked += len(case.trace)
            divergences = _check_case(
                case.trace,
                technique,
                case.geometry,
                case.batch_size,
                knobs,
                invariants,
            )
            if not divergences:
                continue
            failure = _build_failure(
                case, technique, knobs, divergences,
                seed, iteration, shrink, shrink_budget, invariants,
            )
            if corpus_dir is not None:
                failure.corpus_path = save_entry(
                    corpus_dir, _to_corpus_entry(failure)
                )
            report.failures.append(failure)
    return report


def _build_failure(
    case: FuzzCase,
    technique: str,
    knobs: Dict[str, object],
    divergences: List[str],
    seed: int,
    iteration: int,
    shrink: bool,
    shrink_budget: int,
    invariants: bool,
) -> CheckFailure:
    trace: Sequence[MemoryAccess] = case.trace
    if shrink:
        trace = shrink_trace(
            case.trace,
            lambda candidate: bool(
                _check_case(
                    candidate,
                    technique,
                    case.geometry,
                    case.batch_size,
                    knobs,
                    invariants,
                )
            ),
            budget=shrink_budget,
        )
        # Report the divergences of the *shrunk* trace — that is the
        # repro a human will actually replay.
        divergences = _check_case(
            trace, technique, case.geometry, case.batch_size, knobs, invariants
        )
    return CheckFailure(
        technique=technique,
        scenario=case.scenario,
        seed=seed,
        iteration=iteration,
        geometry=case.geometry,
        batch_size=case.batch_size,
        knobs=dict(knobs),
        divergences=divergences,
        trace=tuple(trace),
        original_length=len(case.trace),
    )


def _to_corpus_entry(failure: CheckFailure) -> CorpusEntry:
    return CorpusEntry(
        technique=failure.technique,
        geometry=failure.geometry,
        trace=failure.trace,
        batch_size=failure.batch_size,
        knobs=failure.knobs,
        scenario=failure.scenario,
        seed=failure.seed,
        iteration=failure.iteration,
        divergences=failure.divergences,
    )


def replay_corpus(
    corpus_dir: str,
    invariants: bool = True,
    result_cache: Optional[Union[str, Path, ResultStore]] = None,
) -> CheckReport:
    """Re-run every saved repro; failures mean a bug has come back.

    With ``result_cache`` pointing at a :class:`repro.store.ResultStore`
    root (or an open store), each case's verdict is keyed on the corpus
    document, the invariant setting, and the current code version —
    replays are served from the store until the checker code changes,
    at which point every key rotates and the corpus is re-checked for
    real.  Store failures degrade to a plain recheck, never an error.
    """
    store: Optional[ResultStore] = None
    if isinstance(result_cache, ResultStore):
        store = result_cache
    elif result_cache is not None:
        try:
            store = ResultStore(Path(result_cache))
        except (ReproError, OSError):
            store = None
    report = CheckReport(seed=0, iterations=0, techniques=())
    techniques = set()
    for entry in iter_corpus(corpus_dir):
        techniques.add(entry.technique)
        report.cases_run += 1
        report.accesses_checked += len(entry.trace)
        report.scenario_cases[entry.scenario] = (
            report.scenario_cases.get(entry.scenario, 0) + 1
        )
        document = entry.to_document()
        divergences: Optional[List[str]] = None
        if store is not None:
            try:
                cached = store.get_verdict(document, invariants)
            except (ReproError, OSError):
                cached = None
            if cached is not None:
                raw = cached.get("divergences", [])
                if isinstance(raw, list):
                    divergences = [str(item) for item in raw]
                    report.cached_cases += 1
        if divergences is None:
            divergences = _check_case(
                entry.trace,
                entry.technique,
                entry.geometry,
                entry.batch_size,
                dict(entry.knobs),
                invariants,
            )
            if store is not None:
                try:
                    store.put_verdict(
                        document, invariants, {"divergences": divergences}
                    )
                except (ReproError, OSError):
                    pass
        if divergences:
            report.failures.append(
                CheckFailure(
                    technique=entry.technique,
                    scenario=entry.scenario,
                    seed=entry.seed,
                    iteration=entry.iteration,
                    geometry=entry.geometry,
                    batch_size=entry.batch_size,
                    knobs=dict(entry.knobs),
                    divergences=divergences,
                    trace=entry.trace,
                    original_length=len(entry.trace),
                )
            )
    report.techniques = tuple(sorted(techniques))
    return report
