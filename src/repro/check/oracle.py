"""Reference oracle: a deliberately slow functional model of the paper.

This module re-implements cache residency and the four techniques
(conventional / RMW / WG / WG+RB) **independently** of
:mod:`repro.core` and :mod:`repro.cache`, straight from the paper's
Section 2 and Algorithm 1, using nothing but dicts and lists.  No code
is shared with the engines beyond the frozen dataclasses they are
compared through: where the production cache keeps flat slot arrays and
stamp-LRU ticks, the oracle keeps one ``dict`` per set in LRU insertion
order; where the production WG controller tracks ``(way, word)``
coordinates, the oracle keys Set-Buffer words by ``(tag, word)``.  An
agreement between the two is therefore evidence about the *semantics*,
not about a shared bug.

The oracle records the same observables the engines are measured by —
circuit events, operation counts, hit/miss statistics, per-read values
and the final memory image — so :mod:`repro.check.differential` can
compare all three models field by field.

Differential-validation of a fast model against an intentionally simple
reference is the discipline hardware-modeling stacks like
Accelergy/CACTI apply between abstract and reference estimators; this
is the same idea applied to our simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.trace.record import MemoryAccess, WORD_BYTES
from repro.errors import StateError, ValidationError

__all__ = ["OracleRun", "ReferenceOracle", "ORACLE_TECHNIQUES"]

ORACLE_TECHNIQUES = ("conventional", "rmw", "wg", "wg_rb")
"""Techniques the oracle models (the paper's Figures 9-11 set)."""


@dataclass
class OracleRun:
    """Everything one oracle run observed, in plain dict/list form."""

    technique: str
    #: value returned for each read, positionally; None for writes.
    read_values: List[Optional[int]] = field(default_factory=list)
    #: SRAMEventLog-equivalent circuit-event counters.
    events: Dict[str, int] = field(default_factory=dict)
    #: OperationCounts-equivalent controller counters.
    counts: Dict[str, int] = field(default_factory=dict)
    #: CacheStats-equivalent residency counters.
    stats: Dict[str, int] = field(default_factory=dict)
    #: word index -> value after drain + full flush, zero words omitted.
    memory: Dict[int, int] = field(default_factory=dict)


class _OracleBlock:
    """One resident cache block: its words and a dirty flag."""

    __slots__ = ("words", "dirty")

    def __init__(self, words: List[int]) -> None:
        self.words = words
        self.dirty = False


class _OracleBuffer:
    """One (Tag-Buffer, Set-Buffer) pair, keyed by tag instead of way."""

    __slots__ = ("valid", "dirty", "set_index", "tags", "data", "modified",
                 "dirty_since")

    def __init__(self) -> None:
        self.valid = False
        self.dirty = False
        self.set_index: Optional[int] = None
        #: tags resident in the set at fill time (the Tag-Buffer snapshot).
        self.tags: Set[int] = set()
        #: (tag, word_offset) -> buffered value, for every snapshot tag.
        self.data: Dict[Tuple[int, int], int] = {}
        #: (tag, word_offset) pairs that differ from the array's copy.
        self.modified: Set[Tuple[int, int]] = set()
        self.dirty_since: Optional[int] = None

    def invalidate(self) -> None:
        self.valid = False
        self.dirty = False
        self.set_index = None
        self.tags = set()
        self.data = {}
        self.modified = set()


class ReferenceOracle:
    """Functional model of one technique over one cache geometry.

    Feed it a trace with :meth:`run` (or access-by-access with
    :meth:`step`) and read the result off :meth:`finish`.
    """

    def __init__(
        self,
        technique: str,
        geometry,
        count_miss_traffic: bool = False,
        detect_silent_writes: bool = True,
        entries: int = 1,
    ) -> None:
        if technique not in ORACLE_TECHNIQUES:
            raise ValidationError(
                f"oracle does not model {technique!r}; known: "
                f"{ORACLE_TECHNIQUES}"
            )
        self.technique = technique
        self.geometry = geometry
        self.count_miss_traffic = count_miss_traffic
        self.detect_silent_writes = detect_silent_writes

        self._offset_bits = geometry.offset_bits
        self._index_bits = geometry.index_bits
        self._index_mask = geometry.num_sets - 1
        self._offset_mask = geometry.block_bytes - 1
        self._ways = geometry.associativity
        self._wpb = geometry.words_per_block
        self._row_words = geometry.words_per_set

        #: set_index -> {tag -> _OracleBlock} in LRU order (first = LRU).
        self._sets: Dict[int, Dict[int, _OracleBlock]] = {}
        #: word index -> value; absent words read as zero.
        self._memory: Dict[int, int] = {}
        #: WG-family buffer pool, LRU order (first = victim candidate).
        self._buffers: List[_OracleBuffer] = [
            _OracleBuffer() for _ in range(entries)
        ]
        self._icount = 0
        self._finished = False

        self._run = OracleRun(technique=technique)
        self._events = {
            name: 0
            for name in (
                "row_reads", "row_writes", "rmw_operations", "precharges",
                "rwl_pulses", "wwl_pulses", "words_routed", "words_driven",
                "set_buffer_reads", "set_buffer_writes",
            )
        }
        self._counts = {
            name: 0
            for name in (
                "read_requests", "write_requests", "grouped_writes",
                "silent_writes_detected", "bypassed_reads",
                "set_buffer_fills", "premature_writebacks",
                "eviction_writebacks", "fill_flush_writebacks",
                "final_writebacks", "rmw_operations",
                "dirty_residency_total", "dirty_residency_max",
                "dirty_windows",
            )
        }
        self._stats = {
            name: 0
            for name in (
                "read_hits", "read_misses", "write_hits", "write_misses",
                "evictions", "dirty_evictions",
            )
        }

    # -- address helpers ----------------------------------------------------

    def _split(self, address: int) -> Tuple[int, int, int]:
        set_index = (address >> self._offset_bits) & self._index_mask
        tag = address >> (self._offset_bits + self._index_bits)
        word_offset = (address & self._offset_mask) // WORD_BYTES
        return set_index, tag, word_offset

    def _block_word(self, set_index: int, tag: int) -> int:
        """First word index of the block ``(set_index, tag)`` in memory."""
        byte = (tag << (self._offset_bits + self._index_bits)) | (
            set_index << self._offset_bits
        )
        return byte // WORD_BYTES

    # -- circuit events -----------------------------------------------------

    def _row_read(self, words_routed: int) -> None:
        ev = self._events
        ev["precharges"] += 1
        ev["rwl_pulses"] += 1
        ev["row_reads"] += 1
        ev["words_routed"] += words_routed

    def _row_write(self, words_driven: int) -> None:
        ev = self._events
        ev["wwl_pulses"] += 1
        ev["row_writes"] += 1
        ev["words_driven"] += words_driven

    def _rmw(self) -> None:
        self._events["rmw_operations"] += 1
        self._row_read(self._row_words)
        self._row_write(self._row_words)

    # -- residency ----------------------------------------------------------

    def _lookup(self, set_index: int, tag: int) -> Optional[_OracleBlock]:
        return self._sets.get(set_index, {}).get(tag)

    def _touch(self, set_index: int, tag: int) -> None:
        blocks = self._sets[set_index]
        blocks[tag] = blocks.pop(tag)  # move to most-recent position

    def _ensure_resident(
        self, set_index: int, tag: int, is_read: bool
    ) -> Tuple[_OracleBlock, bool]:
        """Make the block resident; returns ``(block, filled)``."""
        blocks = self._sets.setdefault(set_index, {})
        block = blocks.get(tag)
        if block is not None:
            self._stats["read_hits" if is_read else "write_hits"] += 1
            self._touch(set_index, tag)
            return block, False

        self._stats["read_misses" if is_read else "write_misses"] += 1
        evicted_dirty = False
        if len(blocks) == self._ways:
            victim_tag = next(iter(blocks))  # least recently used
            victim = blocks.pop(victim_tag)
            self._stats["evictions"] += 1
            if victim.dirty:
                self._stats["dirty_evictions"] += 1
                evicted_dirty = True
                self._write_block_to_memory(set_index, victim_tag, victim)
        first_word = self._block_word(set_index, tag)
        block = _OracleBlock(
            [self._memory.get(first_word + i, 0) for i in range(self._wpb)]
        )
        blocks[tag] = block
        if self.count_miss_traffic:
            if evicted_dirty:
                # Reading the victim block out of the array for write-back.
                self._row_read(self._wpb)
            # Installing the fill is a partial-row write => RMW.
            self._rmw()
            self._counts["rmw_operations"] += 1
        return block, True

    def _write_block_to_memory(
        self, set_index: int, tag: int, block: _OracleBlock
    ) -> None:
        first_word = self._block_word(set_index, tag)
        for i, value in enumerate(block.words):
            self._memory[first_word + i] = value

    # -- WG-family buffer pool ----------------------------------------------

    def _buffer_for_set(self, set_index: int) -> Optional[_OracleBuffer]:
        for buffer in self._buffers:
            if buffer.valid and buffer.set_index == set_index:
                return buffer
        return None

    def _touch_buffer(self, buffer: _OracleBuffer) -> None:
        self._buffers.remove(buffer)
        self._buffers.append(buffer)

    def _victim_buffer(self) -> _OracleBuffer:
        for buffer in self._buffers:
            if not buffer.valid:
                return buffer
        return self._buffers[0]

    def _write_back(self, buffer: _OracleBuffer, reason: str) -> bool:
        """Drain a dirty buffer into the array; no-op when clean."""
        if not buffer.dirty:
            return False
        blocks = self._sets.get(buffer.set_index, {})
        for (tag, word_offset) in buffer.modified:
            block = blocks[tag]
            block.words[word_offset] = buffer.data[(tag, word_offset)]
            block.dirty = True
        buffer.modified = set()
        self._row_write(self._row_words)
        buffer.dirty = False
        if buffer.dirty_since is not None:
            residency = max(0, self._icount - buffer.dirty_since)
            self._counts["dirty_residency_total"] += residency
            self._counts["dirty_residency_max"] = max(
                self._counts["dirty_residency_max"], residency
            )
            self._counts["dirty_windows"] += 1
            buffer.dirty_since = None
        self._counts[f"{reason}_writebacks"] += 1
        return True

    def _fill_buffer(self, buffer: _OracleBuffer, set_index: int) -> None:
        """Load the buffer from the array with one full-row read."""
        blocks = self._sets.get(set_index, {})
        buffer.valid = True
        buffer.dirty = False
        buffer.set_index = set_index
        buffer.tags = set(blocks)
        buffer.data = {
            (tag, word_offset): block.words[word_offset]
            for tag, block in blocks.items()
            for word_offset in range(self._wpb)
        }
        buffer.modified = set()
        buffer.dirty_since = None
        self._row_read(self._row_words)
        self._counts["set_buffer_fills"] += 1

    def _flush_buffered_set_before_fill(self, set_index: int) -> None:
        """The pre-residency rule: a fill about to mutate the buffered
        set drains and drops the buffer first."""
        buffer = self._buffer_for_set(set_index)
        if buffer is not None:
            self._write_back(buffer, "fill_flush")
            buffer.invalidate()

    # -- per-technique request handling -------------------------------------

    def step(self, access: MemoryAccess) -> Optional[int]:
        """Process one access; returns the value read (None for writes)."""
        if self._finished:
            raise StateError("oracle already finished")
        self._icount = access.icount
        set_index, tag, word_offset = self._split(access.address)
        wg_family = self.technique in ("wg", "wg_rb")

        if wg_family and self._lookup(set_index, tag) is None:
            self._flush_buffered_set_before_fill(set_index)

        if access.is_read:
            self._counts["read_requests"] += 1
            block, _ = self._ensure_resident(set_index, tag, True)
            value = self._read(set_index, tag, word_offset, block)
            self._run.read_values.append(value)
            return value

        self._counts["write_requests"] += 1
        block, _ = self._ensure_resident(set_index, tag, False)
        self._write(set_index, tag, word_offset, block, access.value)
        self._run.read_values.append(None)
        return None

    def _read(
        self, set_index: int, tag: int, word_offset: int, block: _OracleBlock
    ) -> int:
        technique = self.technique
        if technique in ("conventional", "rmw"):
            self._row_read(1)
            return block.words[word_offset]

        buffer = self._buffer_for_set(set_index)
        buffered = buffer is not None and tag in buffer.tags
        if buffered and technique == "wg_rb":
            # Read bypass: serve from the Set-Buffer, no array access.
            self._touch_buffer(buffer)
            self._events["set_buffer_reads"] += 1
            self._counts["bypassed_reads"] += 1
            return buffer.data[(tag, word_offset)]
        if buffered:
            # WG: premature write-back so the array holds the newest data.
            self._write_back(buffer, "premature")
            self._touch_buffer(buffer)
        self._row_read(1)
        return block.words[word_offset]

    def _write(
        self,
        set_index: int,
        tag: int,
        word_offset: int,
        block: _OracleBlock,
        value: int,
    ) -> None:
        technique = self.technique
        if technique == "conventional":
            self._row_write(1)
            block.words[word_offset] = value
            block.dirty = True
            return
        if technique == "rmw":
            self._rmw()
            self._counts["rmw_operations"] += 1
            block.words[word_offset] = value
            block.dirty = True
            return

        # WG / WG+RB: Algorithm 1's write path.
        buffer = self._buffer_for_set(set_index)
        if buffer is None:
            buffer = self._victim_buffer()
            self._write_back(buffer, "eviction")
            self._fill_buffer(buffer, set_index)
        else:
            self._counts["grouped_writes"] += 1
        self._touch_buffer(buffer)

        self._events["set_buffer_writes"] += 1
        key = (tag, word_offset)
        silent = buffer.data[key] == value
        if not silent:
            buffer.data[key] = value
            buffer.modified.add(key)
        if self.detect_silent_writes and silent:
            self._counts["silent_writes_detected"] += 1
        else:
            if not buffer.dirty:
                buffer.dirty_since = self._icount
            buffer.dirty = True

    # -- whole-run drivers --------------------------------------------------

    def run(self, trace: Iterable[MemoryAccess]) -> OracleRun:
        for access in trace:
            self.step(access)
        return self.finish()

    def finish(self) -> OracleRun:
        """Drain buffers, flush dirty blocks, and return the run record."""
        if not self._finished:
            for buffer in self._buffers:
                if buffer.valid:
                    self._write_back(buffer, "final")
            for set_index, blocks in self._sets.items():
                for tag, block in blocks.items():
                    if block.dirty:
                        self._write_block_to_memory(set_index, tag, block)
                        block.dirty = False
            self._finished = True
        run = self._run
        run.events = dict(self._events)
        run.counts = dict(self._counts)
        run.stats = dict(self._stats)
        run.memory = {
            word: value for word, value in self._memory.items() if value != 0
        }
        return run
