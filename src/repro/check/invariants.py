"""Inline structural invariant checks for cache and controller state.

:class:`InvariantChecker` is the debug-mode companion the fuzzer (and
any worried developer) can attach to a controller via
:meth:`repro.core.controller.CacheController.enable_invariant_checks`.
Once attached, every processed access is followed by a full structural
audit; a broken invariant raises :class:`repro.errors.
InvariantViolation` *at the access that broke it*, instead of
surfacing hundreds of accesses later as a counter diff.

Checked invariants:

* **Cache slots** (:meth:`SetAssociativeCache.check_invariants`) — at
  most one valid way per tag per set, tags within range, dirty bits
  only on valid ways, and (under stamp-LRU) valid ways carry distinct
  stamps strictly below the global tick while untouched ways stay at 0.
* **WG-family buffers** — a valid entry's tag snapshot matches the
  cache's current tags for its set (the flush-before-fill rule's
  guarantee), Set- and Tag-Buffer agree on the buffered set, at most
  one entry per set, modified words imply the Dirty bit (a pending
  write-back), and — with silent-write detection on — the Dirty bit
  implies modified words.
* **Event-log monotonicity** — no circuit-event or operation counter
  ever decreases between checks, and the derived ``array_accesses``
  stays the sum of its parts.

Checks are read-only: enabling them never changes simulation results,
only speed (the batched fast paths disengage so every access is
audited individually).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import InvariantViolation, ValidationError

__all__ = ["InvariantChecker", "check_controller_invariants"]


def check_controller_invariants(controller) -> None:
    """One-shot structural audit of a controller and its cache."""
    controller.cache.check_invariants()
    _check_buffers(controller)


def _check_buffers(controller) -> None:
    entries = getattr(controller, "buffer_entries", None)
    if entries is None:
        return
    cache = controller.cache
    detect = getattr(controller, "detect_silent_writes", False)
    seen_sets = set()
    for position, entry in enumerate(entries):
        tb, sb = entry.tag_buffer, entry.set_buffer
        where = f"buffer entry {position}"
        if not tb.valid:
            if tb.dirty:
                raise InvariantViolation(f"{where}: dirty but invalid")
            continue
        set_index = tb.set_index
        if set_index is None or not 0 <= set_index < cache.geometry.num_sets:
            raise InvariantViolation(
                f"{where}: buffered set {set_index!r} out of range"
            )
        if set_index in seen_sets:
            raise InvariantViolation(
                f"{where}: set {set_index} buffered by two entries"
            )
        seen_sets.add(set_index)
        if not sb.valid or sb.set_index != set_index:
            raise InvariantViolation(
                f"{where}: Set-Buffer holds set {sb.set_index!r}, "
                f"Tag-Buffer says {set_index}"
            )
        snapshot = tuple(tb.tags)
        current = tuple(cache.set_tags(set_index))
        if snapshot != current:
            raise InvariantViolation(
                f"{where}: tag snapshot {snapshot} stale against cache "
                f"tags {current} for set {set_index}"
            )
        if sb.has_modifications and not tb.dirty:
            raise InvariantViolation(
                f"{where}: {sb.modified_words} modified word(s) pending "
                "but the Dirty bit is clear (write-back would be lost)"
            )
        if detect and tb.dirty and not sb.has_modifications:
            raise InvariantViolation(
                f"{where}: Dirty bit set with no modified words while "
                "silent-write detection is on"
            )


class InvariantChecker:
    """Stateful checker: structure each step + monotone counters."""

    def __init__(self, every: int = 1) -> None:
        if every <= 0:
            raise ValidationError(f"every must be positive, got {every}")
        self.every = every
        self.checks_run = 0
        self._since_last = 0
        self._previous: Optional[Dict[str, int]] = None

    def after_access(self, controller) -> None:
        """Hook called by ``CacheController.process`` after each access."""
        self._since_last += 1
        if self._since_last < self.every:
            return
        self._since_last = 0
        self.check(controller)

    def check(self, controller) -> None:
        check_controller_invariants(controller)
        self._check_monotonicity(controller)
        self.checks_run += 1

    def _check_monotonicity(self, controller) -> None:
        events = controller.events
        snapshot = events.to_dict()
        if events.array_accesses != snapshot["row_reads"] + snapshot["row_writes"]:
            raise InvariantViolation(
                "event log: array_accesses is not row_reads + row_writes"
            )
        counts = controller.counts
        for name in ("read_requests", "write_requests", "rmw_operations"):
            snapshot[f"counts.{name}"] = getattr(counts, name)
        for name, value in snapshot.items():
            if value < 0:
                raise InvariantViolation(
                    f"event log: counter {name} went negative ({value})"
                )
        previous = self._previous
        if previous is not None:
            for name, value in snapshot.items():
                if value < previous[name]:
                    raise InvariantViolation(
                        f"event log: counter {name} decreased "
                        f"({previous[name]} -> {value})"
                    )
        self._previous = snapshot
