"""Correctness tooling: oracle, differential runner, fuzzer, shrinker.

``repro.check`` pins the semantics of the cache controllers from three
independent directions (see ``docs/correctness.md``):

* :mod:`repro.check.oracle` — a deliberately slow, dict-based
  functional model of each technique, written against the paper's
  algorithm descriptions rather than against ``repro.core``;
* :mod:`repro.check.differential` — replays one trace through oracle,
  scalar engine, and batched engine and diffs every observable;
* :mod:`repro.check.fuzz` + :mod:`repro.check.shrink` — deterministic
  adversarial trace generation with ddmin shrinking of failures;
* :mod:`repro.check.invariants` — debug-mode structural audits of the
  live cache/controller state;
* :mod:`repro.check.campaign` + :mod:`repro.check.corpus` — the
  ``repro-8t check`` campaign loop and its saved-repro regression
  corpus.
"""

from repro.check.campaign import (
    CheckFailure,
    CheckReport,
    replay_corpus,
    run_check_campaign,
)
from repro.check.corpus import CorpusEntry, iter_corpus, load_entry, save_entry
from repro.check.differential import run_differential
from repro.check.fuzz import SCENARIO_NAMES, FuzzCase, TraceFuzzer
from repro.check.invariants import InvariantChecker, check_controller_invariants
from repro.check.oracle import ORACLE_TECHNIQUES, OracleRun, ReferenceOracle
from repro.check.shrink import shrink_trace

__all__ = [
    "CheckFailure",
    "CheckReport",
    "CorpusEntry",
    "FuzzCase",
    "InvariantChecker",
    "ORACLE_TECHNIQUES",
    "OracleRun",
    "ReferenceOracle",
    "SCENARIO_NAMES",
    "TraceFuzzer",
    "check_controller_invariants",
    "iter_corpus",
    "load_entry",
    "replay_corpus",
    "run_check_campaign",
    "run_differential",
    "save_entry",
    "shrink_trace",
]
