"""Saved-corpus persistence for shrunk failing traces.

Each failure the campaign finds is saved as one self-contained JSON
document carrying everything needed to replay it: technique, geometry,
batch size, controller knobs, the shrunk trace, and the divergences
observed when it was recorded.  ``repro-8t check --corpus DIR --replay``
re-runs every saved document and reports which still diverge — the
regression-suite mode that keeps yesterday's bugs fixed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Sequence, Tuple, Union

from repro.cache.config import CacheGeometry
from repro.errors import TraceFormatError
from repro.trace.record import AccessType, MemoryAccess

__all__ = ["CorpusEntry", "save_entry", "load_entry", "iter_corpus"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


class CorpusEntry:
    """One saved repro: a failing case plus the divergences it showed."""

    def __init__(
        self,
        technique: str,
        geometry: CacheGeometry,
        trace: Sequence[MemoryAccess],
        batch_size: int,
        knobs: Dict[str, object],
        scenario: str = "unknown",
        seed: int = 0,
        iteration: int = 0,
        divergences: Sequence[str] = (),
    ) -> None:
        self.technique = technique
        self.geometry = geometry
        self.trace: Tuple[MemoryAccess, ...] = tuple(trace)
        self.batch_size = batch_size
        self.knobs = dict(knobs)
        self.scenario = scenario
        self.seed = seed
        self.iteration = iteration
        self.divergences = list(divergences)

    def file_name(self) -> str:
        return (
            f"repro_{self.technique}_{self.scenario}"
            f"_s{self.seed}_i{self.iteration}.json"
        )

    def to_document(self) -> Dict[str, object]:
        return {
            "version": _FORMAT_VERSION,
            "technique": self.technique,
            "geometry": {
                "size_bytes": self.geometry.size_bytes,
                "associativity": self.geometry.associativity,
                "block_bytes": self.geometry.block_bytes,
                "address_bits": self.geometry.address_bits,
            },
            "batch_size": self.batch_size,
            "knobs": self.knobs,
            "scenario": self.scenario,
            "seed": self.seed,
            "iteration": self.iteration,
            "divergences": self.divergences,
            "trace": [
                [access.icount, access.kind.value, access.address, access.value]
                for access in self.trace
            ],
        }

    @classmethod
    def from_document(cls, document: Dict[str, object], where: str) -> "CorpusEntry":
        try:
            version = document["version"]
            if version != _FORMAT_VERSION:
                raise TraceFormatError(
                    f"{where}: unsupported corpus version {version!r}"
                )
            geometry_doc = document["geometry"]
            geometry = CacheGeometry(
                size_bytes=geometry_doc["size_bytes"],
                associativity=geometry_doc["associativity"],
                block_bytes=geometry_doc["block_bytes"],
                address_bits=geometry_doc.get("address_bits", 48),
            )
            trace = tuple(
                MemoryAccess(
                    icount=record[0],
                    kind=AccessType.from_letter(record[1]),
                    address=record[2],
                    value=record[3],
                )
                for record in document["trace"]
            )
            return cls(
                technique=document["technique"],
                geometry=geometry,
                trace=trace,
                batch_size=document["batch_size"],
                knobs=dict(document.get("knobs", {})),
                scenario=document.get("scenario", "unknown"),
                seed=document.get("seed", 0),
                iteration=document.get("iteration", 0),
                divergences=list(document.get("divergences", ())),
            )
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"{where}: malformed corpus entry: {exc}") from exc


def save_entry(corpus_dir: PathLike, entry: CorpusEntry) -> Path:
    """Write one entry into ``corpus_dir`` (created if missing)."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry.file_name()
    with open(path, "w", encoding="ascii") as handle:
        json.dump(entry.to_document(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_entry(path: PathLike) -> CorpusEntry:
    """Read one saved repro back."""
    path = Path(path)
    try:
        with open(path, "r", encoding="ascii") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"{path}: unreadable corpus entry: {exc}") from exc
    return CorpusEntry.from_document(document, str(path))


def iter_corpus(corpus_dir: PathLike) -> Iterator[CorpusEntry]:
    """Load every ``*.json`` entry in ``corpus_dir``, sorted by name."""
    directory = Path(corpus_dir)
    if not directory.is_dir():
        raise TraceFormatError(f"corpus directory {directory} does not exist")
    for path in sorted(directory.glob("*.json")):
        yield load_entry(path)
