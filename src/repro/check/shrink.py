"""Automatic trace shrinking: minimise a failing trace to a repro.

Classic delta debugging (ddmin) over the access list: try removing
progressively smaller chunks, keeping any removal after which the
failure predicate still holds, until no single access can be removed.
The result is 1-minimal — every access in the shrunk trace is necessary
to reproduce the failure — which is what turns a 400-access fuzz case
into a repro a human can step through by hand.

The predicate is arbitrary (typically ``lambda t: bool(run_differential
(t, ...))``), so the same shrinker minimises divergence repros and
invariant-violation repros alike.  A budget caps predicate evaluations
so a pathological case cannot stall a campaign.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["shrink_trace", "DEFAULT_SHRINK_BUDGET"]

DEFAULT_SHRINK_BUDGET = 2_000
"""Default cap on predicate evaluations during one shrink."""


def shrink_trace(
    trace: Sequence[T],
    still_fails: Callable[[List[T]], bool],
    budget: int = DEFAULT_SHRINK_BUDGET,
) -> List[T]:
    """Return a 1-minimal sublist of ``trace`` on which the failure holds.

    ``still_fails`` must be deterministic and must return True for
    ``trace`` itself (otherwise the input is returned unchanged).  The
    relative order of the surviving accesses is preserved — shrinking
    only ever deletes, never reorders, so the repro is a genuine
    subsequence of the original trace.
    """
    current = list(trace)
    evaluations = 0

    def fails(candidate: List[T]) -> bool:
        nonlocal evaluations
        evaluations += 1
        return still_fails(candidate)

    if not current or not fails(current):
        return current

    chunk = max(1, len(current) // 2)
    while chunk >= 1 and evaluations < budget:
        index = 0
        removed_any = False
        while index < len(current) and evaluations < budget:
            candidate = current[:index] + current[index + chunk:]
            # An empty candidate cannot exhibit a divergence; skip it.
            if candidate and fails(candidate):
                current = candidate
                removed_any = True
                # Keep index: the next chunk slid into this position.
            else:
                index += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if removed_any else 0)
    return current
