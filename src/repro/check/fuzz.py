"""Deterministic trace fuzzer biased toward the simulator's hard corners.

Every generator draws from a :class:`random.Random` seeded through
:func:`repro.utils.rng.derive_seed`, so a campaign is fully reproducible
from ``(seed, iteration)`` — rerunning ``repro-8t check --seed 0``
regenerates the exact traces, geometries, batch sizes and knobs.

The scenarios target the places where the batched fast paths diverge
from a naive per-request loop:

* ``write_runs`` — long same-set write runs with lengths chosen to
  straddle the (deliberately tiny) fuzzed batch sizes, so runs span
  batch boundaries while the Set-Buffer is dirty;
* ``silent_dirty`` — silent and dirty writes interleaved on the same
  words (value-tracking makes silent writes genuinely silent);
* ``buffered_reads`` — reads to Set-Buffer-resident sets (premature
  write-backs under WG, bypasses under WG+RB);
* ``eviction_storm`` — more live tags than ways per set, mostly writes,
  so fills constantly evict dirty victims and flush the buffer;
* ``way_alias`` — a small tag pool aliasing across the ways of a few
  sets, stressing tag-probe and victim-choice agreement;
* ``mixed`` — an unbiased blend as a control.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.config import CacheGeometry
from repro.trace.record import AccessType, MemoryAccess, WORD_BYTES
from repro.utils.rng import derive_seed
from repro.errors import ValidationError

__all__ = ["FuzzCase", "TraceFuzzer", "SCENARIO_NAMES", "FUZZ_GEOMETRIES"]

FUZZ_GEOMETRIES: Tuple[CacheGeometry, ...] = (
    # Tiny caches so short traces still cause fills, evictions and
    # Set-Buffer flushes; one wide-block geometry for offset coverage.
    CacheGeometry(size_bytes=512, associativity=2, block_bytes=32),
    CacheGeometry(size_bytes=1024, associativity=4, block_bytes=32),
    CacheGeometry(size_bytes=2048, associativity=2, block_bytes=64),
)

#: Batch sizes biased small so multi-access patterns cross boundaries.
_BATCH_SIZES = (1, 2, 3, 5, 7, 13, 32, 256)


@dataclass(frozen=True)
class FuzzCase:
    """One generated differential test case (minus the technique)."""

    scenario: str
    geometry: CacheGeometry
    trace: Tuple[MemoryAccess, ...]
    batch_size: int
    count_miss_traffic: bool = False
    detect_silent_writes: bool = True
    entries: int = 1

    def knobs(self) -> Dict[str, object]:
        return {
            "count_miss_traffic": self.count_miss_traffic,
            "detect_silent_writes": self.detect_silent_writes,
            "entries": self.entries,
        }


class _TraceBuilder:
    """Accumulates accesses with value tracking for true silent writes."""

    def __init__(self, rng: random.Random, geometry: CacheGeometry) -> None:
        self.rng = rng
        self.geometry = geometry
        self._memory: Dict[int, int] = {}
        self._accesses: List[MemoryAccess] = []
        self._icount = 0
        self._fresh = 1

    def address(self, set_index: int, tag: int, word_offset: int) -> int:
        g = self.geometry
        return (
            (tag << (g.offset_bits + g.index_bits))
            | (set_index << g.offset_bits)
            | (word_offset * WORD_BYTES)
        )

    def read(self, address: int) -> None:
        self._icount += self.rng.randint(1, 3)
        self._accesses.append(
            MemoryAccess(
                icount=self._icount, kind=AccessType.READ, address=address
            )
        )

    def write(self, address: int, silent: bool = False) -> None:
        word = address // WORD_BYTES
        if silent:
            # The last value architecturally stored at this word; a cache
            # or buffer holding anything else is itself a bug the
            # differential check will surface.
            value = self._memory.get(word, 0)
        else:
            value = self._fresh
            self._fresh += 1
            self._memory[word] = value
        self._icount += self.rng.randint(1, 3)
        self._accesses.append(
            MemoryAccess(
                icount=self._icount,
                kind=AccessType.WRITE,
                address=address,
                value=value,
            )
        )

    def build(self) -> Tuple[MemoryAccess, ...]:
        return tuple(self._accesses)


# -- scenario generators ----------------------------------------------------
# Each takes (builder, length) and appends ~length accesses.


def _gen_mixed(b: _TraceBuilder, length: int) -> None:
    g, rng = b.geometry, b.rng
    sets = min(g.num_sets, 4)
    for _ in range(length):
        address = b.address(
            rng.randrange(sets),
            rng.randrange(g.associativity + 2),
            rng.randrange(g.words_per_block),
        )
        if rng.random() < 0.5:
            b.write(address, silent=rng.random() < 0.3)
        else:
            b.read(address)


def _gen_write_runs(b: _TraceBuilder, length: int) -> None:
    """Maximal same-set write runs sized to straddle batch boundaries."""
    g, rng = b.geometry, b.rng
    sets = min(g.num_sets, 3)
    produced = 0
    while produced < length:
        set_index = rng.randrange(sets)
        run = rng.choice((2, 3, 5, 7, 8, 13, 14, 15, 17, 29))
        for _ in range(min(run, length - produced)):
            address = b.address(
                set_index,
                rng.randrange(g.associativity + 1),
                rng.randrange(g.words_per_block),
            )
            b.write(address, silent=rng.random() < 0.25)
            produced += 1
        if produced < length and rng.random() < 0.4:
            # A read (sometimes to the buffered set) between runs.
            b.read(
                b.address(
                    set_index if rng.random() < 0.6 else rng.randrange(sets),
                    rng.randrange(g.associativity + 1),
                    rng.randrange(g.words_per_block),
                )
            )
            produced += 1


def _gen_silent_dirty(b: _TraceBuilder, length: int) -> None:
    """Silent and dirty writes interleaved on a handful of words."""
    g, rng = b.geometry, b.rng
    hot = [
        b.address(
            rng.randrange(min(g.num_sets, 2)),
            rng.randrange(g.associativity),
            rng.randrange(g.words_per_block),
        )
        for _ in range(4)
    ]
    for _ in range(length):
        address = rng.choice(hot)
        roll = rng.random()
        if roll < 0.45:
            b.write(address, silent=True)
        elif roll < 0.85:
            b.write(address, silent=False)
        else:
            b.read(address)


def _gen_buffered_reads(b: _TraceBuilder, length: int) -> None:
    """Writes establish a buffered set, then reads hit it repeatedly."""
    g, rng = b.geometry, b.rng
    sets = min(g.num_sets, 3)
    produced = 0
    while produced < length:
        set_index = rng.randrange(sets)
        tags = [rng.randrange(g.associativity) for _ in range(2)]
        for tag in tags:
            if produced >= length:
                break
            b.write(
                b.address(set_index, tag, rng.randrange(g.words_per_block)),
                silent=rng.random() < 0.2,
            )
            produced += 1
        for _ in range(rng.randint(1, 4)):
            if produced >= length:
                break
            b.read(
                b.address(
                    set_index,
                    rng.choice(tags),
                    rng.randrange(g.words_per_block),
                )
            )
            produced += 1


def _gen_eviction_storm(b: _TraceBuilder, length: int) -> None:
    """More live tags than ways: every few accesses evict a dirty block."""
    g, rng = b.geometry, b.rng
    sets = min(g.num_sets, 2)
    tag_pool = g.associativity + 2
    for _ in range(length):
        address = b.address(
            rng.randrange(sets),
            rng.randrange(tag_pool),
            rng.randrange(g.words_per_block),
        )
        if rng.random() < 0.75:
            b.write(address, silent=rng.random() < 0.15)
        else:
            b.read(address)


def _gen_way_alias(b: _TraceBuilder, length: int) -> None:
    """A tag pool exactly filling the ways, aliasing reads over writes."""
    g, rng = b.geometry, b.rng
    set_index = rng.randrange(min(g.num_sets, 4))
    tags = list(range(g.associativity))
    for _ in range(length):
        address = b.address(
            set_index, rng.choice(tags), rng.randrange(g.words_per_block)
        )
        if rng.random() < 0.55:
            b.write(address, silent=rng.random() < 0.35)
        else:
            b.read(address)


_SCENARIOS: Dict[str, Callable[[_TraceBuilder, int], None]] = {
    "mixed": _gen_mixed,
    "write_runs": _gen_write_runs,
    "silent_dirty": _gen_silent_dirty,
    "buffered_reads": _gen_buffered_reads,
    "eviction_storm": _gen_eviction_storm,
    "way_alias": _gen_way_alias,
}

SCENARIO_NAMES: Tuple[str, ...] = tuple(_SCENARIOS)


class TraceFuzzer:
    """Seeded generator of :class:`FuzzCase` objects.

    ``case(iteration)`` is a pure function of ``(seed, iteration)``:
    the same pair always regenerates the identical case, which is what
    makes corpus-free reproduction possible (``repro-8t check --seed S``
    plus an iteration number *is* the repro).
    """

    def __init__(
        self,
        seed: int = 0,
        max_accesses: int = 400,
        geometries: Optional[Tuple[CacheGeometry, ...]] = None,
    ) -> None:
        if max_accesses <= 0:
            raise ValidationError(
                f"max_accesses must be positive, got {max_accesses}"
            )
        self.seed = seed
        self.max_accesses = max_accesses
        self.geometries = geometries if geometries else FUZZ_GEOMETRIES

    def case(self, iteration: int) -> FuzzCase:
        """Deterministically generate case number ``iteration``."""
        rng = random.Random(
            derive_seed(self.seed, "check.fuzz", str(iteration))
        )
        scenario = SCENARIO_NAMES[iteration % len(SCENARIO_NAMES)]
        geometry = rng.choice(self.geometries)
        length = rng.randint(max(16, self.max_accesses // 8), self.max_accesses)
        builder = _TraceBuilder(rng, geometry)
        _SCENARIOS[scenario](builder, length)
        return FuzzCase(
            scenario=scenario,
            geometry=geometry,
            trace=builder.build(),
            batch_size=rng.choice(_BATCH_SIZES),
            count_miss_traffic=rng.random() < 0.25,
            detect_silent_writes=rng.random() >= 0.2,
            entries=rng.choice((1, 1, 1, 2, 3)),
        )
