"""Command-line interface.

Installed as the ``repro-8t`` console script::

    repro-8t figures                      # list reproducible figures
    repro-8t figure fig9 --accesses 20000 # reproduce one figure
    repro-8t compare bwaves --geometry 64K:4:32
    repro-8t compare bwaves --metrics-out m.json --trace-out t.jsonl
    repro-8t profile bwaves               # phase timings + hot counters
    repro-8t trace bwaves out.trc --accesses 50000 --format binary
    repro-8t stats out.trc --geometry 64K:4:32
    repro-8t bench --json BENCH_hotpath.json   # scalar vs batched engine
    repro-8t bench --history              # append run to the bench ledger
    repro-8t perf compare                 # gate against the rolling baseline
    repro-8t perf report                  # render docs/perf-trend.md
    repro-8t kernels                      # list instrumented kernels
    repro-8t kernel matmul out.trc
    repro-8t benchmarks                   # list workload profiles
    repro-8t check --seed 0 --iterations 200   # oracle-differential fuzzing
    repro-8t check --corpus repros --replay    # re-run saved repros
    repro-8t cache stats .cache           # result-store contents + counters
    repro-8t cache verify .cache          # validate + quarantine (exit 3)
    repro-8t cache gc .cache              # drop stale-code-version entries
    repro-8t cache invalidate .cache --benchmark mcf
    repro-8t power --estimator library --json overheads.json
    repro-8t power --estimator-cache .estimates   # reuse estimation records

Every subcommand is a thin shell over the public library API, so the
CLI doubles as executable documentation.

Observability flags (``compare``, ``figure``, ``report``, ``profile``):
``--metrics-out m.json`` dumps the metrics registry, ``--trace-out``
writes a structured trace (``.jsonl`` for JSON Lines, anything else
for Chrome ``trace_event`` JSON), ``--sample-window N`` turns on
per-N-request interval snapshots and ``--snapshots-out s.csv`` saves
them.  With none of these set, the simulation runs fully
uninstrumented.

Resilience flags (``compare``, ``figure``, ``report``):
``--checkpoint PATH`` journals completed work and resumes interrupted
runs, ``--result-cache DIR`` serves previously computed rows from a
durable content-addressed store, ``--retries N``/``--worker-timeout S``
tune the retry policy, ``--breaker-threshold N`` skips rows that keep
failing, ``--heartbeat S`` detects frozen workers early, ``--strict``
restores fail-fast, and ``--processes N`` (``figure``, ``report``)
runs campaigns on supervised worker processes.  See
``docs/robustness.md``.

Estimator flags (``figure``, ``report``, ``power``): ``--estimator
{auto,analytical,library}`` selects the energy/area backend (auto
routes each query to the most accurate capable backend) and
``--estimator-cache DIR`` serves repeat estimates from durable,
code-versioned estimation records.  See ``docs/power.md``.

Errors derived from :class:`ReproError` print a one-line message and
exit with code 2 (usage/configuration) or 3 (runtime failure); pass
``--debug`` (before the subcommand) for the full traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.export import figure_to_csv, metrics_to_json, snapshots_to_csv
from repro.analysis.figures import FIGURE_IDS, reproduce_figure
from repro.cache.address import AddressMapper
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.core.registry import ALL_CONTROLLER_NAMES, CONTROLLER_NAMES
from repro.errors import ConfigurationError, ReproError
from repro.obs.perf import DEFAULT_LEDGER_PATH
from repro.obs.spans import span
from repro.obs.telemetry import Telemetry
from repro.sim.comparison import compare_techniques
from repro.sim.resilience import ExecutionPolicy, RetryPolicy, execution_policy
from repro.trace.binio import read_binary_trace, write_binary_trace
from repro.trace.stats import collect_statistics
from repro.trace.textio import read_text_trace, write_text_trace
from repro.utils.tables import format_table
from repro.workload.generator import generate_trace
from repro.workload.kernels import KERNEL_NAMES, run_kernel
from repro.workload.spec2006 import SPEC2006_PROFILES, benchmark_names, get_profile

__all__ = ["main", "parse_geometry"]


def parse_geometry(spec: str) -> CacheGeometry:
    """Parse ``SIZE:WAYS:BLOCK`` (e.g. ``64K:4:32``) into a geometry.

    SIZE accepts an optional K/M suffix; WAYS and BLOCK are plain
    integers (block in bytes).
    """
    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"geometry must be SIZE:WAYS:BLOCK, got {spec!r}"
        )
    size_text, ways_text, block_text = parts
    multiplier = 1
    if size_text[-1:].upper() == "K":
        multiplier, size_text = 1024, size_text[:-1]
    elif size_text[-1:].upper() == "M":
        multiplier, size_text = 1024 * 1024, size_text[:-1]
    try:
        return CacheGeometry(
            size_bytes=int(size_text) * multiplier,
            associativity=int(ways_text),
            block_bytes=int(block_text),
        )
    except (ValueError, Exception) as exc:  # ConfigurationError included
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _read_trace(path: str):
    if path.endswith(".bin") or path.endswith(".rpt"):
        return read_binary_trace(path)
    return read_text_trace(path)


# -- observability plumbing --------------------------------------------------------


def _add_obs_flags(sub: argparse.ArgumentParser) -> None:
    """The shared telemetry output flags."""
    group = sub.add_argument_group("observability")
    group.add_argument(
        "--metrics-out", help="write the metrics registry to this JSON path"
    )
    group.add_argument(
        "--trace-out",
        help=(
            "write a structured trace (.jsonl => JSON Lines, otherwise "
            "Chrome trace_event JSON for chrome://tracing / Perfetto)"
        ),
    )
    group.add_argument(
        "--sample-window",
        type=int,
        help="record interval snapshots every N requests",
    )
    group.add_argument(
        "--snapshots-out",
        help="write interval snapshots to this CSV path (implies sampling)",
    )


def _telemetry_from_args(args, force: bool = False) -> Optional[Telemetry]:
    """Build a Telemetry matching the CLI flags (None => stay dark)."""
    sample_window = args.sample_window
    if args.snapshots_out and not sample_window:
        sample_window = 1_000
    telemetry = Telemetry.from_outputs(
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
        sample_window=sample_window,
    )
    if telemetry is None and force:
        telemetry = Telemetry.from_outputs(sample_window=sample_window or 1_000)
    return telemetry


def _finish_telemetry(telemetry: Optional[Telemetry], args) -> None:
    """Write the requested output files and close the sink."""
    if telemetry is None:
        return
    telemetry.close()
    if args.metrics_out:
        metrics_to_json(telemetry.registry, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    if args.trace_out:
        print(f"wrote trace to {args.trace_out}")
    if args.snapshots_out and telemetry.sampler is not None:
        rows = snapshots_to_csv(telemetry.sampler.snapshots, args.snapshots_out)
        print(f"wrote {rows} interval snapshots to {args.snapshots_out}")


# -- estimator plumbing ------------------------------------------------------------


def _add_estimator_flags(sub: argparse.ArgumentParser) -> None:
    """The shared energy/area estimator flags (see docs/power.md)."""
    from repro.power.estimator import ESTIMATOR_CHOICES

    group = sub.add_argument_group("estimator")
    group.add_argument(
        "--estimator",
        choices=ESTIMATOR_CHOICES,
        default="auto",
        help=(
            "energy/area backend: auto routes each query to the most "
            "accurate capable backend; analytical/library force one"
        ),
    )
    group.add_argument(
        "--estimator-cache",
        metavar="DIR",
        help=(
            "durable estimation-record cache: energy/area estimates "
            "already computed for this exact query + backend + code "
            "version are served from here instead of recomputed"
        ),
    )


# -- resilience plumbing -----------------------------------------------------------


def _add_resilience_flags(sub: argparse.ArgumentParser, campaign: bool = True) -> None:
    """The shared fault-tolerance flags (see docs/robustness.md)."""
    group = sub.add_argument_group("resilience")
    group.add_argument(
        "--checkpoint",
        help=(
            "journal completed rows to this path and resume from it; "
            "a .jsonl path holds one run, a directory holds one journal "
            "per config fingerprint"
        ),
    )
    group.add_argument(
        "--retries",
        type=int,
        help="attempts per benchmark before quarantine (default 3)",
    )
    if campaign:
        group.add_argument(
            "--worker-timeout",
            type=float,
            metavar="SECONDS",
            help=(
                "per-attempt wall-clock budget; hung workers are killed "
                "and retried (needs --processes > 1)"
            ),
        )
        group.add_argument(
            "--strict",
            action="store_true",
            help="fail fast instead of quarantining failed benchmarks",
        )
        group.add_argument(
            "--processes",
            type=int,
            help="run campaigns on this many supervised worker processes",
        )
        group.add_argument(
            "--result-cache",
            metavar="DIR",
            help=(
                "durable content-addressed result store: rows already "
                "computed for this exact config + workload + code "
                "version are served from here instead of re-simulated, "
                "and new rows are committed back (see 'repro-8t cache')"
            ),
        )
        group.add_argument(
            "--result-cache-max-bytes",
            type=int,
            metavar="BYTES",
            help="LRU size bound for --result-cache (default: unbounded)",
        )
        group.add_argument(
            "--breaker-threshold",
            type=int,
            metavar="N",
            help=(
                "open a per-benchmark circuit breaker after N failures: "
                "the row is skipped and quarantined instead of retried "
                "(default: breakers off)"
            ),
        )
        group.add_argument(
            "--heartbeat",
            type=float,
            metavar="SECONDS",
            help=(
                "worker heartbeat interval; a worker silent for several "
                "beats is killed as stalled before --worker-timeout "
                "expires (needs --processes > 1)"
            ),
        )


def _policy_from_args(args) -> ExecutionPolicy:
    """Build the ambient execution policy the CLI flags describe."""
    retry = RetryPolicy(
        max_attempts=args.retries if args.retries is not None else 3,
        worker_timeout_s=getattr(args, "worker_timeout", None),
        breaker_threshold=getattr(args, "breaker_threshold", None),
        heartbeat_interval_s=getattr(args, "heartbeat", None),
    )
    return ExecutionPolicy(
        retry=retry,
        strict=getattr(args, "strict", False),
        checkpoint=args.checkpoint,
        processes=getattr(args, "processes", None),
        result_cache=getattr(args, "result_cache", None),
        result_cache_max_bytes=getattr(args, "result_cache_max_bytes", None),
        estimator=getattr(args, "estimator", None) or "auto",
        estimator_cache=getattr(args, "estimator_cache", None),
    )


# -- subcommand handlers ---------------------------------------------------------


def _cmd_figures(_args) -> int:
    print("reproducible figures/tables/claims:")
    for figure_id in FIGURE_IDS:
        print(f"  {figure_id}")
    return 0


def _cmd_figure(args) -> int:
    kwargs = {}
    if args.figure_id == "reliability":
        kwargs["seed"] = args.seed
    elif args.figure_id != "sec5.4":
        kwargs["accesses"] = args.accesses
        kwargs["seed"] = args.seed
        if args.benchmarks:
            kwargs["benchmarks"] = args.benchmarks
    telemetry = _telemetry_from_args(args)
    with execution_policy(_policy_from_args(args)):
        if telemetry is not None:
            with span(telemetry, f"figure.{args.figure_id}", category="figure"):
                result = reproduce_figure(args.figure_id, **kwargs)
            _finish_telemetry(telemetry, args)
        else:
            result = reproduce_figure(args.figure_id, **kwargs)
    if args.bars:
        from repro.analysis.bars import render_bars

        print(render_bars(result))
    else:
        print(result.render())
    if args.csv:
        rows = figure_to_csv(result, args.csv)
        print(f"\nwrote {rows} rows to {args.csv}")
    return 0


def _cmd_compare(args) -> int:
    telemetry = _telemetry_from_args(args)
    policy = _policy_from_args(args)
    trace = generate_trace(
        get_profile(args.benchmark), args.accesses, seed=args.seed
    )
    comparison = compare_techniques(
        trace,
        args.geometry,
        techniques=tuple(args.techniques),
        telemetry=telemetry,
        retry=policy.retry,
        checkpoint=policy.checkpoint,
    )
    rows = []
    for technique in args.techniques:
        result = comparison.result(technique)
        reduction = (
            100.0 * comparison.access_reduction(technique)
            if "rmw" in args.techniques
            else float("nan")
        )
        rows.append(
            (
                technique,
                result.array_accesses,
                reduction,
                100.0 * result.cache_stats.hit_rate,
            )
        )
    print(
        format_table(
            ("technique", "array accesses", "reduction vs rmw %", "hit rate %"),
            rows,
            title=f"{args.benchmark} on {args.geometry.describe()}",
        )
    )
    _finish_telemetry(telemetry, args)
    return 0


def _cmd_trace(args) -> int:
    trace = generate_trace(
        get_profile(args.benchmark), args.accesses, seed=args.seed
    )
    if args.format == "binary":
        count = write_binary_trace(args.output, trace, crc=args.crc)
    else:
        if args.crc:
            raise ConfigurationError(
                "--crc requires --format binary (the text format has "
                "no record checksums)"
            )
        count = write_text_trace(args.output, trace)
    print(f"wrote {count} accesses to {args.output} ({args.format})")
    return 0


def _cmd_kernel(args) -> int:
    trace = run_kernel(args.kernel, words=args.words, seed=args.seed)
    if args.output:
        if args.format == "binary":
            count = write_binary_trace(args.output, trace)
        else:
            count = write_text_trace(args.output, trace)
        print(f"wrote {count} accesses to {args.output}")
    else:
        for access in trace[: args.head]:
            print(access.describe())
        print(f"... {len(trace)} accesses total")
    return 0


def _cmd_stats(args) -> int:
    mapper = AddressMapper(args.geometry)
    stats = collect_statistics(_read_trace(args.trace), mapper.set_index)
    rows = [
        ("accesses", stats.accesses),
        ("instructions", stats.instructions),
        ("read frequency", f"{100 * stats.read_frequency:.2f}%"),
        ("write frequency", f"{100 * stats.write_frequency:.2f}%"),
        ("silent writes", f"{100 * stats.silent_write_fraction:.2f}%"),
        ("same-set pairs", f"{100 * stats.scenarios.same_set_share:.2f}%"),
        ("RR share", f"{100 * stats.scenarios.share('RR'):.2f}%"),
        ("RW share", f"{100 * stats.scenarios.share('RW'):.2f}%"),
        ("WW share", f"{100 * stats.scenarios.share('WW'):.2f}%"),
        ("WR share", f"{100 * stats.scenarios.share('WR'):.2f}%"),
    ]
    print(
        format_table(
            ("metric", "value"),
            rows,
            title=f"{args.trace} @ {args.geometry.describe()}",
        )
    )
    return 0


def _cmd_fit(args) -> int:
    from repro.trace.stream import materialize
    from repro.workload.fitting import fit_profile

    trace = materialize(_read_trace(args.trace))
    profile = fit_profile(trace, name=args.name)
    rows = [
        ("read frequency", f"{100 * profile.read_frequency:.2f}%"),
        ("write frequency", f"{100 * profile.write_frequency:.2f}%"),
        ("silent fraction", f"{100 * profile.silent_fraction:.2f}%"),
        ("burst mean", f"{profile.burst_mean:.2f}"),
        ("type persistence", f"{profile.type_persistence:.2f}"),
        ("footprint", f"{profile.footprint_kib} KiB"),
    ] + [
        (f"stream: {spec.kind}", f"weight {spec.weight:.2f}")
        for spec in profile.streams
    ]
    print(
        format_table(
            ("knob", "fitted value"),
            rows,
            title=f"profile fitted from {args.trace}",
        )
    )
    return 0


def _cmd_kernels(_args) -> int:
    print("instrumented kernels:")
    for name in KERNEL_NAMES:
        print(f"  {name}")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import write_report

    telemetry = _telemetry_from_args(args)
    with execution_policy(_policy_from_args(args)):
        path = write_report(
            args.output,
            accesses=args.accesses,
            seed=args.seed,
            figure_ids=args.figures,
            telemetry=telemetry,
        )
    print(f"wrote reproduction report to {path}")
    _finish_telemetry(telemetry, args)
    return 0


def _cmd_power(args) -> int:
    import json as json_mod

    from repro.analysis.overheads import check_overhead_claims, overhead_report
    from repro.power.estimator import default_registry

    telemetry = _telemetry_from_args(args)
    registry = default_registry(
        args.estimator,
        cache_path=args.estimator_cache,
        telemetry=telemetry,
    )
    result = overhead_report(
        accesses=args.accesses,
        seed=args.seed,
        geometry=args.geometry,
        node_nm=args.node,
        benchmarks=args.benchmarks or None,
        estimator=registry,
    )
    print(result.render())
    stats = registry.stats()
    calls = ", ".join(
        f"{backend}={count}"
        for backend, count in sorted(stats["backend_calls"].items())
    )
    line = f"\nestimator: backend calls {calls}"
    cache_stats = stats.get("cache")
    if cache_stats:
        line += (
            f"; cache {cache_stats['hits']} hit(s) / "
            f"{cache_stats['misses']} miss(es) at {cache_stats['path']}"
        )
    print(line)
    violations = check_overhead_claims(result)
    if args.json:
        document = {
            "figure_id": result.figure_id,
            "title": result.title,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "summary": result.summary,
            "paper_values": result.paper_values,
            "violations": violations,
            "estimator": stats,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_mod.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote overhead report to {args.json}")
    _finish_telemetry(telemetry, args)
    if violations:
        for violation in violations:
            print(f"CLAIM FAILED: {violation}", file=sys.stderr)
        return EXIT_RUNTIME
    print("all overhead claims verified")
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profiler import profile_benchmark

    telemetry = _telemetry_from_args(args, force=True)
    report = profile_benchmark(
        args.benchmark,
        geometry=args.geometry,
        accesses=args.accesses,
        seed=args.seed,
        techniques=tuple(args.techniques),
        telemetry=telemetry,
    )
    print(
        format_table(
            ("phase", "calls", "total s", "mean ms"),
            [
                (phase, calls, f"{total:.3f}", f"{mean_ms:.3f}")
                for phase, calls, total, mean_ms in report.phase_rows()
            ],
            title=(
                f"phase timings: {args.benchmark} x {len(args.techniques)} "
                f"techniques, {args.accesses} accesses"
            ),
        )
    )
    print()
    print(
        format_table(
            ("technique", "array accesses", "requests", "hit rate %"),
            report.technique_rows(),
            title="per-technique results",
        )
    )
    print()
    print(
        format_table(
            ("counter", "value"),
            [(name, int(value)) for name, value in report.hot_counters()],
            title="hot counters",
        )
    )
    total = report.total_events
    print(
        f"\ntotal across techniques: {total.array_accesses} array accesses "
        f"({total.row_reads} row reads, {total.row_writes} row writes, "
        f"{total.rmw_operations} RMWs)"
    )
    _finish_telemetry(telemetry, args)
    return 0


def _print_bench_table(args, results) -> None:
    with_columnar = any(
        result.columnar_seconds is not None for result in results
    )
    headers = ["technique", "scalar acc/s", "batched acc/s", "speedup"]
    if with_columnar:
        headers += ["columnar acc/s", "col/batched"]
    rows = []
    for result in results:
        row = [
            result.technique,
            f"{result.scalar_aps:,.0f}",
            f"{result.batched_aps:,.0f}",
            f"{result.speedup:.2f}x",
        ]
        if with_columnar:
            if result.columnar_seconds is not None:
                row += [
                    f"{result.columnar_aps:,.0f}",
                    f"{result.columnar_speedup:.2f}x",
                ]
            else:
                row += ["-", "-"]
        rows.append(tuple(row))
    print(
        format_table(
            tuple(headers),
            rows,
            title=(
                f"hot-path throughput: {args.benchmark}, "
                f"{args.accesses} accesses on {args.geometry.describe()}"
            ),
        )
    )


def _write_bench_snapshot(args, results, env, timestamp) -> None:
    """The ``--json`` latest-snapshot view (``BENCH_hotpath.json``)."""
    import json

    from repro.engine.bench import bench_report

    report = bench_report(
        results,
        args.benchmark,
        args.geometry,
        environment=env,
        timestamp=timestamp,
    )
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote benchmark report to {args.json}")


def _append_bench_history(args, results, env, timestamp) -> None:
    """Append one run to the bench-history ledger (``--history``)."""
    from repro.obs.perf import append_run, run_record

    record = run_record(
        results,
        benchmark=args.benchmark,
        geometry=args.geometry.describe(),
        accesses=args.accesses,
        seed=args.seed,
        repeats=args.repeats,
        env=env,
        timestamp=timestamp,
    )
    path = append_run(args.history, record)
    print(f"appended run to ledger {path}")


def _cmd_bench(args) -> int:
    from repro.engine.bench import run_hotpath_bench

    engines = {"scalar", "batched"}
    engines.update(getattr(args, "engines", None) or ())
    if "columnar" in engines:
        from repro.engine.columnar import HAVE_NUMPY

        if not HAVE_NUMPY:
            print(
                "warning: --engine columnar requested but NumPy is not "
                "installed (pip install repro-8t[columnar]); skipping the "
                "columnar tier",
                file=sys.stderr,
            )
            engines.discard("columnar")
    results = run_hotpath_bench(
        techniques=tuple(args.techniques),
        accesses=args.accesses,
        geometry=args.geometry,
        benchmark=args.benchmark,
        seed=args.seed,
        batch_size=args.batch_size,
        repeats=args.repeats,
        engines=sorted(engines),
    )
    _print_bench_table(args, results)
    env = timestamp = None
    if args.json or args.history:
        from repro.obs.perf import environment_fingerprint, utc_timestamp

        env = environment_fingerprint()
        timestamp = utc_timestamp()
    if args.json:
        _write_bench_snapshot(args, results, env, timestamp)
    if args.history:
        _append_bench_history(args, results, env, timestamp)
    return 0


def _ledger_skip_warning(line_number: int, reason: str) -> None:
    print(
        f"warning: skipping unreadable ledger line {line_number}: {reason}",
        file=sys.stderr,
    )


def _cmd_perf_compare(args) -> int:
    import json

    from repro.obs.perf import (
        compare_to_baseline,
        environment_fingerprint,
        read_ledger,
        utc_timestamp,
    )

    entries = read_ledger(args.ledger, on_skip=_ledger_skip_warning)
    env = environment_fingerprint()
    timestamp = utc_timestamp()
    if args.current:
        with open(args.current, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        results = snapshot["results"]
        benchmark = snapshot["benchmark"]
        geometry_desc = snapshot["geometry"]
        accesses = results[0]["accesses"] if results else 0
        print(f"gating existing snapshot {args.current}")
    else:
        from repro.engine.bench import run_hotpath_bench

        bench_results = run_hotpath_bench(
            techniques=tuple(args.techniques),
            accesses=args.accesses,
            benchmark=args.benchmark,
            geometry=args.geometry,
            seed=args.seed,
            repeats=args.repeats,
        )
        _print_bench_table(args, bench_results)
        results = [result.to_dict() for result in bench_results]
        benchmark = args.benchmark
        geometry_desc = args.geometry.describe()
        accesses = args.accesses
        if args.json:
            _write_bench_snapshot(args, bench_results, env, timestamp)
    gate = compare_to_baseline(
        results,
        entries,
        benchmark=benchmark,
        geometry=geometry_desc,
        accesses=accesses,
        window=args.window,
        sigma=args.sigma,
        min_band=args.min_band,
    )
    print(
        format_table(
            ("technique", "speedup", "threshold", "basis", "verdict"),
            [
                (
                    g.technique,
                    f"{g.current_speedup:.2f}x",
                    f"{g.threshold:.2f}x" if g.source != "none" else "-",
                    (
                        f"ledger mean {g.baseline_mean:.2f}x "
                        f"+/- {g.baseline_std:.3f} (n={g.samples})"
                        if g.source == "ledger"
                        else f"static floor (n={g.samples})"
                        if g.source == "floor"
                        else "no baseline"
                    ),
                    "REGRESSION" if g.regressed else "ok",
                )
                for g in gate.gates
            ],
            title=(
                f"perf gate: {benchmark} x {accesses} accesses, "
                f"window {gate.window}, {gate.sigma:g}-sigma noise band"
            ),
        )
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(gate.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote gate report to {args.report}")
    if args.append and not args.current:
        from repro.obs.perf import append_run, run_record

        append_run(
            args.ledger,
            run_record(
                results,
                benchmark=benchmark,
                geometry=geometry_desc,
                accesses=accesses,
                seed=args.seed,
                repeats=args.repeats,
                env=env,
                timestamp=timestamp,
            ),
        )
        print(f"appended this run to ledger {args.ledger}")
    if not gate.ok:
        for regression in gate.regressions:
            print(f"REGRESSION: {regression.describe()}", file=sys.stderr)
        return EXIT_RUNTIME
    print("perf gate passed")
    return 0


def _cmd_perf_report(args) -> int:
    from repro.obs.perf import read_ledger, write_trend_report

    entries = read_ledger(args.ledger, on_skip=_ledger_skip_warning)
    path = write_trend_report(
        args.out, entries, window=args.window, recent_runs=args.recent
    )
    print(f"wrote trend report for {len(entries)} ledger run(s) to {path}")
    return 0


def _cmd_check(args) -> int:
    from repro.check import replay_corpus, run_check_campaign

    if args.replay:
        if not args.corpus:
            raise ConfigurationError("--replay needs --corpus DIR to read from")
        report = replay_corpus(
            args.corpus,
            invariants=not args.no_invariants,
            result_cache=args.result_cache,
        )
        mode = f"replaying corpus {args.corpus}"
        if args.result_cache:
            mode += (
                f" ({report.cached_cases}/{report.cases_run} verdicts "
                f"from {args.result_cache})"
            )
    else:
        geometries = tuple(args.geometry) if args.geometry else None
        report = run_check_campaign(
            seed=args.seed,
            iterations=args.iterations,
            techniques=tuple(args.techniques),
            max_accesses=args.accesses,
            shrink=not args.no_shrink,
            invariants=not args.no_invariants,
            corpus_dir=args.corpus,
            geometries=geometries,
        )
        mode = (
            f"fuzzing {args.iterations} cases x "
            f"{len(args.techniques)} technique(s)"
        )
    print(mode)
    if report.scenario_cases:
        print(
            "scenarios: "
            + ", ".join(
                f"{name}={count}"
                for name, count in sorted(report.scenario_cases.items())
            )
        )
    print(report.summary())
    if report.failures:
        for failure in report.failures:
            print()
            print(failure.describe())
        return EXIT_RUNTIME
    return 0


def _cmd_cache(args) -> int:
    from repro.store import ResultStore

    store = ResultStore(args.store)
    if args.cache_command == "stats":
        stats = store.stats()
        counters = stats.pop("counters")
        rows = [(key, str(value)) for key, value in sorted(stats.items())]
        rows += [
            (f"counters.{key}", str(value))
            for key, value in sorted(counters.items())
        ]
        print(
            format_table(
                ("field", "value"),
                rows,
                title=f"result store {args.store}",
            )
        )
        return 0
    if args.cache_command == "verify":
        report = store.verify()
        print(
            f"verified {report['checked']} entr(ies): {report['ok']} ok, "
            f"{len(report['corrupt'])} quarantined"
        )
        for item in report["corrupt"]:
            print(f"  {item['key']}: {item['reason']}")
        return EXIT_RUNTIME if report["corrupt"] else 0
    if args.cache_command == "gc":
        report = store.gc(prune_quarantine=args.prune_quarantine)
        print(
            f"gc: removed {report['removed']} stale entr(ies), "
            f"freed {report['freed_bytes']} bytes, pruned "
            f"{report['quarantine_pruned']} quarantined file(s) "
            f"(code version {report['code_version']})"
        )
        return 0
    # invalidate
    if not (args.all or args.benchmark or args.kind):
        raise ConfigurationError(
            "cache invalidate needs --benchmark, --kind, or --all"
        )
    report = store.invalidate(
        benchmark=args.benchmark, kind=args.kind, everything=args.all
    )
    print(f"invalidated {report['removed']} entr(ies)")
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.lint import RULE_TYPES, run_lint
    from repro.lint.deep import DEFAULT_CACHE_PATH

    if args.list_rules:
        rows = [
            (
                rule_id,
                rule_type.name,
                str(rule_type.severity),
                "deep" if rule_type.deep else "ast",
                rule_type.description,
            )
            for rule_id, rule_type in sorted(RULE_TYPES.items())
        ]
        print(
            format_table(
                ("id", "name", "severity", "tier", "description"),
                rows,
                title="repro-8t lint rule catalogue",
            )
        )
        return 0
    cache_path = (
        None if args.no_cache else (args.cache_path or DEFAULT_CACHE_PATH)
    )
    report = run_lint(
        args.paths,
        select=args.select,
        ignore=args.ignore,
        baseline_path=args.baseline,
        deep=args.deep,
        cache_path=cache_path,
        timing=bool(args.timing or args.timing_out),
    )
    if args.write_baseline:
        from repro.lint import Baseline

        entries = Baseline.from_findings(report.raw_findings).save(
            args.write_baseline
        )
        print(f"wrote {entries} baseline entries to {args.write_baseline}")
        return 0
    if args.format == "json":
        print(report.render_json())
    elif args.format == "github":
        print(report.render_github())
    else:
        print(report.render_text())
    if args.timing and report.timings:
        # Timing goes to stderr so --format json stdout stays parseable.
        width = max(len(key) for key in report.timings)
        print("rule timing:", file=sys.stderr)
        for key, seconds in sorted(
            report.timings.items(), key=lambda item: -item[1]
        ):
            print(f"  {key:<{width}}  {seconds * 1000:8.2f} ms", file=sys.stderr)
    if args.timing_out:
        payload = {"timings": report.timings}
        if report.deep_stats is not None:
            payload["deep"] = report.deep_stats.to_dict()
        with open(args.timing_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report.ok else 1


def _cmd_benchmarks(_args) -> int:
    rows = [
        (
            name,
            f"{100 * profile.read_frequency:.0f}%",
            f"{100 * profile.write_frequency:.0f}%",
            f"{100 * profile.silent_fraction:.0f}%",
            profile.description,
        )
        for name, profile in sorted(SPEC2006_PROFILES.items())
    ]
    print(
        format_table(
            ("benchmark", "reads", "writes", "silent", "character"),
            rows,
            title="SPEC CPU2006 workload profiles (25 of 29, as in the paper)",
        )
    )
    return 0


# -- parser ------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-8t",
        description=(
            "Reproduction toolkit for 'Performance and Power Solutions "
            "for Caches Using 8T SRAM Cells' (MICRO 2012)."
        ),
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="show full tracebacks instead of one-line error summaries",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("figures", help="list reproducible figures")
    sub.set_defaults(handler=_cmd_figures)

    sub = subparsers.add_parser("figure", help="reproduce one figure")
    sub.add_argument("figure_id", choices=FIGURE_IDS)
    sub.add_argument("--accesses", type=int, default=15_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument("--benchmarks", nargs="*", choices=benchmark_names())
    sub.add_argument("--csv", help="also write the table to this CSV path")
    sub.add_argument(
        "--bars", action="store_true", help="render as ASCII bar chart"
    )
    _add_obs_flags(sub)
    _add_resilience_flags(sub)
    _add_estimator_flags(sub)
    sub.set_defaults(handler=_cmd_figure)

    sub = subparsers.add_parser(
        "compare", help="compare techniques on one benchmark"
    )
    sub.add_argument("benchmark", choices=benchmark_names())
    sub.add_argument("--accesses", type=int, default=20_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument(
        "--geometry", type=parse_geometry, default=BASELINE_GEOMETRY
    )
    sub.add_argument(
        "--techniques",
        nargs="+",
        default=["conventional", "rmw", "wg", "wg_rb"],
        choices=ALL_CONTROLLER_NAMES,
    )
    _add_obs_flags(sub)
    _add_resilience_flags(sub, campaign=False)
    sub.set_defaults(handler=_cmd_compare)

    sub = subparsers.add_parser(
        "profile",
        help="profile one benchmark: phase timings + hot counters",
    )
    sub.add_argument("benchmark", choices=benchmark_names())
    sub.add_argument("--accesses", type=int, default=20_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument(
        "--geometry", type=parse_geometry, default=BASELINE_GEOMETRY
    )
    sub.add_argument(
        "--techniques",
        nargs="+",
        default=["conventional", "rmw", "wg", "wg_rb"],
        choices=ALL_CONTROLLER_NAMES,
    )
    _add_obs_flags(sub)
    sub.set_defaults(handler=_cmd_profile)

    sub = subparsers.add_parser("trace", help="synthesise a trace file")
    sub.add_argument("benchmark", choices=benchmark_names())
    sub.add_argument("output")
    sub.add_argument("--accesses", type=int, default=50_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument("--format", choices=("text", "binary"), default="text")
    sub.add_argument(
        "--crc",
        action="store_true",
        help="write the integrity-checked RPTRACE2 format "
        "(per-record CRC-32; binary only)",
    )
    sub.set_defaults(handler=_cmd_trace)

    sub = subparsers.add_parser(
        "kernel", help="run an instrumented kernel, dump/preview its trace"
    )
    sub.add_argument("kernel", choices=KERNEL_NAMES)
    sub.add_argument("output", nargs="?")
    sub.add_argument("--words", type=int, default=2048)
    sub.add_argument("--seed", type=int, default=7)
    sub.add_argument("--format", choices=("text", "binary"), default="text")
    sub.add_argument("--head", type=int, default=10)
    sub.set_defaults(handler=_cmd_kernel)

    sub = subparsers.add_parser("stats", help="Figure 3/4/5 stats of a trace file")
    sub.add_argument("trace")
    sub.add_argument(
        "--geometry", type=parse_geometry, default=BASELINE_GEOMETRY
    )
    sub.set_defaults(handler=_cmd_stats)

    sub = subparsers.add_parser("kernels", help="list instrumented kernels")
    sub.set_defaults(handler=_cmd_kernels)

    sub = subparsers.add_parser(
        "fit", help="fit workload-profile knobs to a trace file"
    )
    sub.add_argument("trace")
    sub.add_argument("--name", default="fitted")
    sub.set_defaults(handler=_cmd_fit)

    sub = subparsers.add_parser(
        "report", help="reproduce every figure into one markdown report"
    )
    sub.add_argument("output", nargs="?", default="reproduction_report.md")
    sub.add_argument("--accesses", type=int, default=15_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument("--figures", nargs="*", choices=FIGURE_IDS)
    _add_obs_flags(sub)
    _add_resilience_flags(sub)
    _add_estimator_flags(sub)
    sub.set_defaults(handler=_cmd_report)

    sub = subparsers.add_parser(
        "bench",
        help="hot-path throughput: scalar vs batched vs columnar engine",
    )
    sub.add_argument(
        "benchmark", nargs="?", default="bwaves", choices=benchmark_names()
    )
    sub.add_argument("--accesses", type=int, default=200_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument(
        "--geometry", type=parse_geometry, default=BASELINE_GEOMETRY
    )
    sub.add_argument(
        "--techniques",
        nargs="+",
        default=["conventional", "rmw", "wg", "wg_rb"],
        choices=ALL_CONTROLLER_NAMES,
    )
    sub.add_argument(
        "--engine",
        action="append",
        dest="engines",
        choices=["scalar", "batched", "columnar"],
        metavar="ENGINE",
        help=(
            "engine tier to measure (repeatable); scalar and batched are "
            "always timed, '--engine columnar' adds the columnar tier "
            "(needs NumPy; skipped with a warning when absent)"
        ),
    )
    sub.add_argument(
        "--batch-size", type=int, help="records per batch (default 4096)"
    )
    sub.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per engine; the fastest is kept",
    )
    sub.add_argument(
        "--json", help="also write the BENCH_hotpath.json document here"
    )
    sub.add_argument(
        "--history",
        nargs="?",
        const=str(DEFAULT_LEDGER_PATH),
        default=None,
        metavar="PATH",
        help=(
            "append this run to the bench-history ledger "
            f"(default path: {DEFAULT_LEDGER_PATH})"
        ),
    )
    sub.set_defaults(handler=_cmd_bench)

    perf = subparsers.add_parser(
        "perf",
        help="performance observatory: statistical gates and trend reports",
        description=(
            "Consume the bench-history ledger written by 'bench "
            "--history'.  'perf compare' gates the current tree against "
            "a rolling baseline with stability-derived noise bands "
            "(exit 3 on regression); 'perf report' renders the "
            "per-technique trajectory to markdown."
        ),
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    sub = perf_sub.add_parser(
        "compare",
        help="gate current speedups against the rolling ledger baseline",
    )
    sub.add_argument(
        "--ledger",
        default=str(DEFAULT_LEDGER_PATH),
        help="bench-history ledger to baseline against",
    )
    sub.add_argument(
        "--current",
        metavar="PATH",
        help=(
            "gate an existing BENCH_hotpath.json snapshot instead of "
            "measuring afresh"
        ),
    )
    sub.add_argument(
        "--window",
        type=int,
        default=10,
        help="ledger entries in the rolling baseline",
    )
    sub.add_argument(
        "--sigma",
        type=float,
        default=3.0,
        help="noise-band width in standard deviations",
    )
    sub.add_argument(
        "--min-band",
        type=float,
        default=0.10,
        help="minimum noise band as a fraction of the baseline mean",
    )
    sub.add_argument(
        "--report", metavar="PATH", help="write the gate verdict as JSON here"
    )
    sub.add_argument(
        "--json",
        metavar="PATH",
        help="also write a BENCH_hotpath.json snapshot of this measurement",
    )
    sub.add_argument(
        "--append",
        action="store_true",
        help="append this measurement to the ledger after gating",
    )
    sub.add_argument(
        "--benchmark", default="bwaves", choices=benchmark_names()
    )
    sub.add_argument("--accesses", type=int, default=200_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument(
        "--geometry", type=parse_geometry, default=BASELINE_GEOMETRY
    )
    sub.add_argument(
        "--techniques",
        nargs="+",
        default=["conventional", "rmw", "wg", "wg_rb"],
        choices=ALL_CONTROLLER_NAMES,
    )
    sub.add_argument("--repeats", type=int, default=3)
    sub.set_defaults(handler=_cmd_perf_compare)

    sub = perf_sub.add_parser(
        "report",
        help="render the per-technique trend report from the ledger",
    )
    sub.add_argument(
        "--ledger",
        default=str(DEFAULT_LEDGER_PATH),
        help="bench-history ledger to read",
    )
    sub.add_argument(
        "--out",
        default="docs/perf-trend.md",
        help="markdown file to write",
    )
    sub.add_argument(
        "--window",
        type=int,
        default=20,
        help="entries in the rolling mean/std columns",
    )
    sub.add_argument(
        "--recent",
        type=int,
        default=10,
        help="runs shown in the recent-runs table",
    )
    sub.set_defaults(handler=_cmd_perf_report)

    sub = subparsers.add_parser(
        "check",
        help="oracle-differential fuzz campaign (correctness tooling)",
        description=(
            "Fuzz deterministic adversarial traces through the reference "
            "oracle, the scalar engine, and the batched engine, diffing "
            "every observable.  Failures are shrunk to minimal repro "
            "traces; --corpus saves them and --replay re-runs saved "
            "repros as a regression gate.  Exit code 3 on divergence."
        ),
    )
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--iterations",
        type=int,
        default=100,
        help="fuzz cases; each runs under every requested technique",
    )
    sub.add_argument(
        "--techniques",
        nargs="+",
        default=list(CONTROLLER_NAMES),
        choices=CONTROLLER_NAMES,
    )
    sub.add_argument(
        "--accesses",
        type=int,
        default=400,
        help="max accesses per fuzzed trace",
    )
    sub.add_argument(
        "--geometry",
        type=parse_geometry,
        action="append",
        help=(
            "restrict fuzzing to this SIZE:WAYS:BLOCK geometry "
            "(repeatable; default: a built-in adversarial mix)"
        ),
    )
    sub.add_argument(
        "--corpus", metavar="DIR", help="save shrunk failing traces here"
    )
    sub.add_argument(
        "--replay",
        action="store_true",
        help="re-run the saved --corpus repros instead of fuzzing",
    )
    sub.add_argument(
        "--result-cache",
        metavar="DIR",
        help=(
            "serve --replay verdicts from a content-addressed result "
            "store; entries invalidate automatically when the checker "
            "code version changes"
        ),
    )
    sub.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing traces unshrunk (faster on failure)",
    )
    sub.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip debug-mode structural invariant checks",
    )
    sub.set_defaults(handler=_cmd_check)

    sub = subparsers.add_parser(
        "lint",
        help="project-aware static analysis (determinism, contracts)",
        description=(
            "AST-based lint enforcing this repo's contracts: seeded "
            "randomness in sim paths, ReproError discipline, the "
            "controller fast-path gate, the declared metric-name set, "
            "and library hygiene.  Exit 1 on findings, 0 when clean; "
            "see docs/static-analysis.md for the rule catalogue, "
            "`# repro-lint: disable=RPRxxx` suppressions, and the "
            "baseline workflow."
        ),
    )
    sub.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    sub.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help=(
            "finding output format (github emits ::error workflow "
            "annotations for CI)"
        ),
    )
    sub.add_argument(
        "--deep",
        action="store_true",
        help=(
            "also run the interprocedural RPR2xx tier (call graph + "
            "effect closures; per-file summaries cached by content "
            "digest)"
        ),
    )
    sub.add_argument(
        "--timing",
        action="store_true",
        help="print per-rule wall time to stderr",
    )
    sub.add_argument(
        "--timing-out",
        metavar="PATH",
        help="write per-rule timing + deep-pass stats as JSON",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the --deep summary cache for this run",
    )
    sub.add_argument(
        "--cache-path",
        default=None,
        metavar="PATH",
        help=(
            "summary-cache file for --deep "
            "(default: .repro-lint-cache/summaries.json)"
        ),
    )
    sub.add_argument(
        "--baseline",
        help="JSON baseline of accepted findings to subtract",
    )
    sub.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the current findings as a baseline and exit 0",
    )
    sub.add_argument(
        "--select",
        nargs="+",
        metavar="RPRxxx",
        help="run only these rule ids",
    )
    sub.add_argument(
        "--ignore",
        nargs="+",
        metavar="RPRxxx",
        help="skip these rule ids",
    )
    sub.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    sub.set_defaults(handler=_cmd_lint)

    cache = subparsers.add_parser(
        "cache",
        help="inspect and maintain a --result-cache store",
        description=(
            "Administer a content-addressed result store (the directory "
            "passed to --result-cache).  stats prints occupancy and "
            "counters; verify validates every entry and quarantines "
            "damage (exit 3 if any); gc drops entries from other code "
            "versions; invalidate removes entries by selector."
        ),
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    csub = cache_sub.add_parser("stats", help="store occupancy and counters")
    csub.add_argument("store", metavar="DIR", help="result-store root")
    csub.set_defaults(handler=_cmd_cache)

    csub = cache_sub.add_parser(
        "verify",
        help="validate every entry, quarantining damage (exit 3 if any)",
    )
    csub.add_argument("store", metavar="DIR", help="result-store root")
    csub.set_defaults(handler=_cmd_cache)

    csub = cache_sub.add_parser(
        "gc", help="drop entries written by a different code version"
    )
    csub.add_argument("store", metavar="DIR", help="result-store root")
    csub.add_argument(
        "--prune-quarantine",
        action="store_true",
        help="also empty the quarantine directory",
    )
    csub.set_defaults(handler=_cmd_cache)

    csub = cache_sub.add_parser(
        "invalidate", help="remove entries by benchmark/kind selector"
    )
    csub.add_argument("store", metavar="DIR", help="result-store root")
    csub.add_argument("--benchmark", help="remove entries for this benchmark")
    csub.add_argument(
        "--kind",
        choices=("campaign-row", "check-verdict"),
        help="remove entries of this kind",
    )
    csub.add_argument(
        "--all", action="store_true", help="remove every entry in the store"
    )
    csub.set_defaults(handler=_cmd_cache)

    sub = subparsers.add_parser(
        "power",
        help="verify the paper's overhead claims, per estimator backend",
        description=(
            "Reproduce the Section 5.4/5.5 overhead claims — Set-Buffer "
            "< 0.2% of the cache, Tag-Buffer < 150 bits, WG+RB saving "
            "dynamic energy vs RMW — from every capable estimator "
            "backend (or just the one --estimator forces), pricing each "
            "technique as energy per access.  Exit code 3 if any claim "
            "fails under any backend (the CI power-smoke gate)."
        ),
    )
    sub.add_argument("--accesses", type=int, default=4_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument(
        "--geometry", type=parse_geometry, default=BASELINE_GEOMETRY
    )
    sub.add_argument(
        "--node",
        type=int,
        default=45,
        help="process node in nm (default 45)",
    )
    sub.add_argument("--benchmarks", nargs="*", choices=benchmark_names())
    sub.add_argument(
        "--json", metavar="PATH", help="write the overhead report as JSON"
    )
    _add_obs_flags(sub)
    _add_estimator_flags(sub)
    sub.set_defaults(handler=_cmd_power)

    sub = subparsers.add_parser("benchmarks", help="list workload profiles")
    sub.set_defaults(handler=_cmd_benchmarks)

    return parser


#: Exit codes for :class:`ReproError` failures at the entry point.
EXIT_USAGE = 2
EXIT_RUNTIME = 3


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Library failures (:class:`ReproError`) become a one-line message on
    stderr with exit code 2 (configuration/usage) or 3 (runtime) —
    users get actionable errors, not tracebacks.  ``--debug`` restores
    the traceback for bug reports.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        if args.debug:
            raise
        print(f"repro-8t: error: {exc}", file=sys.stderr)
        return EXIT_USAGE if isinstance(exc, ConfigurationError) else EXIT_RUNTIME


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
