"""Command-line interface.

Installed as the ``repro-8t`` console script::

    repro-8t figures                      # list reproducible figures
    repro-8t figure fig9 --accesses 20000 # reproduce one figure
    repro-8t compare bwaves --geometry 64K:4:32
    repro-8t trace bwaves out.trc --accesses 50000 --format binary
    repro-8t stats out.trc --geometry 64K:4:32
    repro-8t kernels                      # list instrumented kernels
    repro-8t kernel matmul out.trc
    repro-8t benchmarks                   # list workload profiles

Every subcommand is a thin shell over the public library API, so the
CLI doubles as executable documentation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.export import figure_to_csv
from repro.analysis.figures import FIGURE_IDS, reproduce_figure
from repro.cache.address import AddressMapper
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.core.registry import ALL_CONTROLLER_NAMES
from repro.sim.comparison import compare_techniques
from repro.trace.binio import read_binary_trace, write_binary_trace
from repro.trace.stats import collect_statistics
from repro.trace.textio import read_text_trace, write_text_trace
from repro.utils.tables import format_table
from repro.workload.generator import generate_trace
from repro.workload.kernels import KERNEL_NAMES, run_kernel
from repro.workload.spec2006 import SPEC2006_PROFILES, benchmark_names, get_profile

__all__ = ["main", "parse_geometry"]


def parse_geometry(spec: str) -> CacheGeometry:
    """Parse ``SIZE:WAYS:BLOCK`` (e.g. ``64K:4:32``) into a geometry.

    SIZE accepts an optional K/M suffix; WAYS and BLOCK are plain
    integers (block in bytes).
    """
    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"geometry must be SIZE:WAYS:BLOCK, got {spec!r}"
        )
    size_text, ways_text, block_text = parts
    multiplier = 1
    if size_text[-1:].upper() == "K":
        multiplier, size_text = 1024, size_text[:-1]
    elif size_text[-1:].upper() == "M":
        multiplier, size_text = 1024 * 1024, size_text[:-1]
    try:
        return CacheGeometry(
            size_bytes=int(size_text) * multiplier,
            associativity=int(ways_text),
            block_bytes=int(block_text),
        )
    except (ValueError, Exception) as exc:  # ConfigurationError included
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _read_trace(path: str):
    if path.endswith(".bin") or path.endswith(".rpt"):
        return read_binary_trace(path)
    return read_text_trace(path)


# -- subcommand handlers ---------------------------------------------------------


def _cmd_figures(_args) -> int:
    print("reproducible figures/tables/claims:")
    for figure_id in FIGURE_IDS:
        print(f"  {figure_id}")
    return 0


def _cmd_figure(args) -> int:
    kwargs = {}
    if args.figure_id == "reliability":
        kwargs["seed"] = args.seed
    elif args.figure_id != "sec5.4":
        kwargs["accesses"] = args.accesses
        kwargs["seed"] = args.seed
        if args.benchmarks:
            kwargs["benchmarks"] = args.benchmarks
    result = reproduce_figure(args.figure_id, **kwargs)
    if args.bars:
        from repro.analysis.bars import render_bars

        print(render_bars(result))
    else:
        print(result.render())
    if args.csv:
        rows = figure_to_csv(result, args.csv)
        print(f"\nwrote {rows} rows to {args.csv}")
    return 0


def _cmd_compare(args) -> int:
    trace = generate_trace(
        get_profile(args.benchmark), args.accesses, seed=args.seed
    )
    comparison = compare_techniques(
        trace, args.geometry, techniques=tuple(args.techniques)
    )
    rows = []
    for technique in args.techniques:
        result = comparison.result(technique)
        reduction = (
            100.0 * comparison.access_reduction(technique)
            if "rmw" in args.techniques
            else float("nan")
        )
        rows.append(
            (
                technique,
                result.array_accesses,
                reduction,
                100.0 * result.cache_stats.hit_rate,
            )
        )
    print(
        format_table(
            ("technique", "array accesses", "reduction vs rmw %", "hit rate %"),
            rows,
            title=f"{args.benchmark} on {args.geometry.describe()}",
        )
    )
    return 0


def _cmd_trace(args) -> int:
    trace = generate_trace(
        get_profile(args.benchmark), args.accesses, seed=args.seed
    )
    if args.format == "binary":
        count = write_binary_trace(args.output, trace)
    else:
        count = write_text_trace(args.output, trace)
    print(f"wrote {count} accesses to {args.output} ({args.format})")
    return 0


def _cmd_kernel(args) -> int:
    trace = run_kernel(args.kernel, words=args.words, seed=args.seed)
    if args.output:
        if args.format == "binary":
            count = write_binary_trace(args.output, trace)
        else:
            count = write_text_trace(args.output, trace)
        print(f"wrote {count} accesses to {args.output}")
    else:
        for access in trace[: args.head]:
            print(access.describe())
        print(f"... {len(trace)} accesses total")
    return 0


def _cmd_stats(args) -> int:
    mapper = AddressMapper(args.geometry)
    stats = collect_statistics(_read_trace(args.trace), mapper.set_index)
    rows = [
        ("accesses", stats.accesses),
        ("instructions", stats.instructions),
        ("read frequency", f"{100 * stats.read_frequency:.2f}%"),
        ("write frequency", f"{100 * stats.write_frequency:.2f}%"),
        ("silent writes", f"{100 * stats.silent_write_fraction:.2f}%"),
        ("same-set pairs", f"{100 * stats.scenarios.same_set_share:.2f}%"),
        ("RR share", f"{100 * stats.scenarios.share('RR'):.2f}%"),
        ("RW share", f"{100 * stats.scenarios.share('RW'):.2f}%"),
        ("WW share", f"{100 * stats.scenarios.share('WW'):.2f}%"),
        ("WR share", f"{100 * stats.scenarios.share('WR'):.2f}%"),
    ]
    print(
        format_table(
            ("metric", "value"),
            rows,
            title=f"{args.trace} @ {args.geometry.describe()}",
        )
    )
    return 0


def _cmd_fit(args) -> int:
    from repro.trace.stream import materialize
    from repro.workload.fitting import fit_profile

    trace = materialize(_read_trace(args.trace))
    profile = fit_profile(trace, name=args.name)
    rows = [
        ("read frequency", f"{100 * profile.read_frequency:.2f}%"),
        ("write frequency", f"{100 * profile.write_frequency:.2f}%"),
        ("silent fraction", f"{100 * profile.silent_fraction:.2f}%"),
        ("burst mean", f"{profile.burst_mean:.2f}"),
        ("type persistence", f"{profile.type_persistence:.2f}"),
        ("footprint", f"{profile.footprint_kib} KiB"),
    ] + [
        (f"stream: {spec.kind}", f"weight {spec.weight:.2f}")
        for spec in profile.streams
    ]
    print(
        format_table(
            ("knob", "fitted value"),
            rows,
            title=f"profile fitted from {args.trace}",
        )
    )
    return 0


def _cmd_kernels(_args) -> int:
    print("instrumented kernels:")
    for name in KERNEL_NAMES:
        print(f"  {name}")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import write_report

    path = write_report(
        args.output,
        accesses=args.accesses,
        seed=args.seed,
        figure_ids=args.figures,
    )
    print(f"wrote reproduction report to {path}")
    return 0


def _cmd_benchmarks(_args) -> int:
    rows = [
        (
            name,
            f"{100 * profile.read_frequency:.0f}%",
            f"{100 * profile.write_frequency:.0f}%",
            f"{100 * profile.silent_fraction:.0f}%",
            profile.description,
        )
        for name, profile in sorted(SPEC2006_PROFILES.items())
    ]
    print(
        format_table(
            ("benchmark", "reads", "writes", "silent", "character"),
            rows,
            title="SPEC CPU2006 workload profiles (25 of 29, as in the paper)",
        )
    )
    return 0


# -- parser ------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-8t",
        description=(
            "Reproduction toolkit for 'Performance and Power Solutions "
            "for Caches Using 8T SRAM Cells' (MICRO 2012)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("figures", help="list reproducible figures")
    sub.set_defaults(handler=_cmd_figures)

    sub = subparsers.add_parser("figure", help="reproduce one figure")
    sub.add_argument("figure_id", choices=FIGURE_IDS)
    sub.add_argument("--accesses", type=int, default=15_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument("--benchmarks", nargs="*", choices=benchmark_names())
    sub.add_argument("--csv", help="also write the table to this CSV path")
    sub.add_argument(
        "--bars", action="store_true", help="render as ASCII bar chart"
    )
    sub.set_defaults(handler=_cmd_figure)

    sub = subparsers.add_parser(
        "compare", help="compare techniques on one benchmark"
    )
    sub.add_argument("benchmark", choices=benchmark_names())
    sub.add_argument("--accesses", type=int, default=20_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument(
        "--geometry", type=parse_geometry, default=BASELINE_GEOMETRY
    )
    sub.add_argument(
        "--techniques",
        nargs="+",
        default=["conventional", "rmw", "wg", "wg_rb"],
        choices=ALL_CONTROLLER_NAMES,
    )
    sub.set_defaults(handler=_cmd_compare)

    sub = subparsers.add_parser("trace", help="synthesise a trace file")
    sub.add_argument("benchmark", choices=benchmark_names())
    sub.add_argument("output")
    sub.add_argument("--accesses", type=int, default=50_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument("--format", choices=("text", "binary"), default="text")
    sub.set_defaults(handler=_cmd_trace)

    sub = subparsers.add_parser(
        "kernel", help="run an instrumented kernel, dump/preview its trace"
    )
    sub.add_argument("kernel", choices=KERNEL_NAMES)
    sub.add_argument("output", nargs="?")
    sub.add_argument("--words", type=int, default=2048)
    sub.add_argument("--seed", type=int, default=7)
    sub.add_argument("--format", choices=("text", "binary"), default="text")
    sub.add_argument("--head", type=int, default=10)
    sub.set_defaults(handler=_cmd_kernel)

    sub = subparsers.add_parser("stats", help="Figure 3/4/5 stats of a trace file")
    sub.add_argument("trace")
    sub.add_argument(
        "--geometry", type=parse_geometry, default=BASELINE_GEOMETRY
    )
    sub.set_defaults(handler=_cmd_stats)

    sub = subparsers.add_parser("kernels", help="list instrumented kernels")
    sub.set_defaults(handler=_cmd_kernels)

    sub = subparsers.add_parser(
        "fit", help="fit workload-profile knobs to a trace file"
    )
    sub.add_argument("trace")
    sub.add_argument("--name", default="fitted")
    sub.set_defaults(handler=_cmd_fit)

    sub = subparsers.add_parser(
        "report", help="reproduce every figure into one markdown report"
    )
    sub.add_argument("output", nargs="?", default="reproduction_report.md")
    sub.add_argument("--accesses", type=int, default=15_000)
    sub.add_argument("--seed", type=int, default=2012)
    sub.add_argument("--figures", nargs="*", choices=FIGURE_IDS)
    sub.set_defaults(handler=_cmd_report)

    sub = subparsers.add_parser("benchmarks", help="list workload profiles")
    sub.set_defaults(handler=_cmd_benchmarks)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
