"""JSON baseline for incremental lint adoption.

A baseline records the *accepted* pre-existing findings so that a new
rule can ship immediately and fail the build only on **new** debt.  An
entry is count-based and line-number-agnostic — ``(rule, path, snippet)``
with a multiplicity — so pure line shifts never invalidate it, while
every newly introduced occurrence of the same pattern still fails.

The repo's own goal state is an **empty** baseline (and the shipped
tree lints clean with one); the mechanism exists for future rules and
for downstream forks adopting the linter on a dirtier tree.
"""

from __future__ import annotations

import json
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import LintConfigError
from repro.lint.finding import Finding

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


class Baseline:
    """A multiset of accepted finding fingerprints."""

    def __init__(self, counts: Dict[Tuple[str, str, str], int]) -> None:
        self._counts = dict(counts)

    # -- construction -------------------------------------------------------

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = cls._key(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(
        cls, path: str, known_rules: Optional[FrozenSet[str]] = None
    ) -> "Baseline":
        """Load and validate a baseline file.

        ``known_rules`` enables forward-compatibility checking: an
        entry naming a rule id this build has never heard of (a
        baseline written by a *newer* linter) is a classified
        :class:`~repro.errors.LintConfigError`, not a crash and never a
        silent ignore — silently dropping it would un-accept debt the
        moment someone downgrades.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise LintConfigError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintConfigError(
                f"baseline {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "findings" not in payload:
            raise LintConfigError(
                f"baseline {path} lacks a top-level 'findings' list"
            )
        version = payload.get("version", BASELINE_VERSION)
        if version != BASELINE_VERSION:
            raise LintConfigError(
                f"baseline {path} has version {version}; "
                f"this linter reads version {BASELINE_VERSION}"
            )
        counts: Dict[Tuple[str, str, str], int] = {}
        for entry in payload["findings"]:
            try:
                key = (entry["rule"], entry["path"], entry["snippet"])
                count = int(entry.get("count", 1))
            except (TypeError, KeyError) as exc:
                raise LintConfigError(
                    f"baseline {path} has a malformed entry: {entry!r}"
                ) from exc
            if known_rules is not None and key[0] not in known_rules:
                raise LintConfigError(
                    f"baseline {path} names unknown rule id {key[0]!r} "
                    "(written by a newer linter?); refusing to guess — "
                    "regenerate with --write-baseline or upgrade"
                )
            counts[key] = counts.get(key, 0) + count
        return cls(counts)

    # -- persistence --------------------------------------------------------

    def save(self, path: str) -> int:
        """Write the baseline; returns the number of entries."""
        entries = [
            {"rule": rule, "path": rel_path, "snippet": snippet, "count": count}
            for (rule, rel_path, snippet), count in sorted(self._counts.items())
        ]
        payload = {"version": BASELINE_VERSION, "findings": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return len(entries)

    # -- filtering ----------------------------------------------------------

    @staticmethod
    def _key(finding: Finding) -> Tuple[str, str, str]:
        fp = finding.fingerprint()
        return (fp["rule"], fp["path"], fp["snippet"])

    def filter(self, findings: List[Finding]) -> Tuple[List[Finding], int]:
        """Drop baselined findings; returns (fresh findings, matched)."""
        remaining = dict(self._counts)
        fresh: List[Finding] = []
        matched = 0
        for finding in findings:
            key = self._key(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                matched += 1
            else:
                fresh.append(finding)
        return fresh, matched

    def __len__(self) -> int:
        return sum(self._counts.values())
