"""Small AST utilities shared by the rules."""

from __future__ import annotations

import ast
from typing import Optional

__all__ = [
    "dotted_name",
    "call_name",
    "resolve_string_pattern",
    "patterns_unify",
    "iter_scope_nodes",
    "build_parent_map",
]

#: Node types opening a new function scope.
SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)


def iter_scope_nodes(func: ast.AST):
    """Yield the nodes belonging to one function's own scope.

    Descends into lambdas and comprehensions (their bodies execute as
    part of the enclosing function) but not into nested ``def``/
    ``class`` bodies — those are separate scopes.  Decorators and
    default expressions of a nested def *do* evaluate in this scope
    and are yielded.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, SCOPE_TYPES + (ast.ClassDef,)):
            stack.extend(getattr(node, "decorator_list", ()))
            args = getattr(node, "args", None)
            if args is not None:
                stack.extend(d for d in args.defaults if d is not None)
                stack.extend(d for d in args.kw_defaults if d is not None)
            continue
        stack.extend(ast.iter_child_nodes(node))


def build_parent_map(root: ast.AST) -> dict:
    """child node -> parent node, for ancestor walks."""
    parents: dict = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of the callable in a Call node, else None."""
    return dotted_name(node.func)


def resolve_string_pattern(node: ast.AST) -> Optional[str]:
    """Resolve a string-valued expression to a glob-ish pattern.

    Literals resolve to themselves; f-string interpolations become
    ``*``; ``+`` concatenations of resolvable parts concatenate.
    Anything else (a plain variable, a function call) is statically
    unresolvable and returns None — callers skip those sites rather
    than guess.
    """
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                if not isinstance(piece.value, str):
                    return None
                parts.append(piece.value)
            elif isinstance(piece, ast.FormattedValue):
                parts.append("*")
            else:  # pragma: no cover - no other JoinedStr members exist
                return None
        return _collapse_stars("".join(parts))
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = resolve_string_pattern(node.left)
        right = resolve_string_pattern(node.right)
        if left is None or right is None:
            return None
        return _collapse_stars(left + right)
    return None


def _collapse_stars(pattern: str) -> str:
    while "**" in pattern:
        pattern = pattern.replace("**", "*")
    return pattern


def patterns_unify(a: str, b: str) -> bool:
    """True when some concrete string matches both glob patterns.

    ``*`` matches any run of characters (including empty) in either
    pattern; the check is existential, so ``ctrl.*.hits`` unifies with
    ``ctrl.wg.*`` (witness: ``ctrl.wg.hits``).  Iterative DP over the
    two patterns — no recursion, no backtracking blowup.
    """
    len_a, len_b = len(a), len(b)
    # reachable[j] == True: (i, j) reachable for current i
    reachable = [False] * (len_b + 1)
    reachable[0] = True
    for j in range(1, len_b + 1):
        reachable[j] = reachable[j - 1] and b[j - 1] == "*"
    for i in range(1, len_a + 1):
        previous = reachable
        reachable = [False] * (len_b + 1)
        reachable[0] = previous[0] and a[i - 1] == "*"
        for j in range(1, len_b + 1):
            char_a, char_b = a[i - 1], b[j - 1]
            if char_a == "*" or char_b == "*":
                # A star consumes the other side's character, matches
                # empty, or both sides advance together.
                reachable[j] = (
                    previous[j] or reachable[j - 1] or previous[j - 1]
                )
            else:
                reachable[j] = previous[j - 1] and char_a == char_b
    return reachable[len_b]
