"""Lint orchestration: file discovery, rule selection, report shaping.

This is the layer behind ``repro-8t lint``: it expands the requested
paths into Python files, derives dotted module names from the
``__init__.py`` chain (the determinism rules scope themselves by
package), instantiates the active rules once, runs the single-pass
engine over every file, and folds suppressions + the optional baseline
into a :class:`LintReport`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import LintConfigError
from repro.lint import rules as _rules  # noqa: F401  (registers the rules)
from repro.lint.baseline import Baseline
from repro.lint.engine import RULE_TYPES, Rule, RunContext
from repro.lint.finding import Finding

__all__ = ["LintReport", "run_lint", "discover_files", "module_name_for"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


@dataclass
class LintReport:
    """Outcome of one lint invocation."""

    findings: List[Finding]
    files_checked: int
    suppressed: int
    baselined: int
    rules_run: Tuple[str, ...]
    baseline_path: Optional[str] = None
    #: All findings before baseline filtering — what --write-baseline saves.
    raw_findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        if self.ok:
            extras = []
            if self.suppressed:
                extras.append(f"{self.suppressed} suppressed")
            if self.baselined:
                extras.append(f"{self.baselined} baselined")
            tail = f" ({', '.join(extras)})" if extras else ""
            return (
                f"ok: {self.files_checked} files clean under "
                f"{len(self.rules_run)} rules{tail}"
            )
        return (
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"files ({self.suppressed} suppressed, "
            f"{self.baselined} baselined)"
        )

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {
                "files_checked": self.files_checked,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "rules": list(self.rules_run),
                "ok": self.ok,
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    found: List[str] = []
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            candidates: Iterable[str] = [path]
        elif os.path.isdir(path):
            candidates = _walk_py(path)
        else:
            raise LintConfigError(f"no such file or directory: {path}")
        for candidate in candidates:
            normalized = os.path.normpath(candidate)
            if normalized not in seen:
                seen.add(normalized)
                found.append(normalized)
    return sorted(found)


def _walk_py(root: str) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            name
            for name in dirnames
            if name not in _SKIP_DIRS and not name.startswith(".")
        ]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def module_name_for(path: str) -> Optional[str]:
    """Dotted module name from the ``__init__.py`` package chain.

    ``src/repro/sim/campaign.py`` -> ``repro.sim.campaign``;
    returns None for files outside any package.
    """
    absolute = os.path.abspath(path)
    directory = os.path.dirname(absolute)
    stem = os.path.splitext(os.path.basename(absolute))[0]
    parts: List[str] = []
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    if not parts:
        return None
    parts.reverse()
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts)


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> Tuple[List[Rule], Tuple[str, ...]]:
    known = set(RULE_TYPES)
    provided: Dict[str, str] = {}
    for rule_id, rule_type in RULE_TYPES.items():
        for extra in rule_type.also_provides:
            provided[extra] = rule_id
    selected = set(_validate_ids(select, known) or known)
    ignored = set(_validate_ids(ignore, known) or ())
    active_ids = selected - ignored
    # Instantiate the owning rule for every active id (a cross-reference
    # rule may report under a provided satellite id).
    to_instantiate = {provided.get(rule_id, rule_id) for rule_id in active_ids}
    rules = [RULE_TYPES[rule_id]() for rule_id in sorted(to_instantiate)]
    return rules, tuple(sorted(active_ids))


def _validate_ids(
    ids: Optional[Sequence[str]], known: set
) -> Optional[List[str]]:
    if not ids:
        return None
    provided = {
        extra
        for rule_type in RULE_TYPES.values()
        for extra in rule_type.also_provides
    }
    validated = []
    for rule_id in ids:
        canonical = rule_id.strip().upper()
        if canonical not in known and canonical not in provided:
            raise LintConfigError(
                f"unknown rule id {rule_id!r}; known: "
                f"{', '.join(sorted(known | provided))}"
            )
        validated.append(canonical)
    return validated


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
) -> LintReport:
    """Lint ``paths`` and return the filtered report.

    ``select``/``ignore`` take rule ids (``RPR101``); ``select`` limits
    the run to those ids, ``ignore`` subtracts from whatever is
    selected.  ``baseline_path`` filters findings through a
    :class:`repro.lint.baseline.Baseline` file when it exists (a
    missing baseline file is treated as empty so bootstrap runs work).
    """
    if not paths:
        raise LintConfigError("lint needs at least one file or directory")
    files = discover_files(paths)
    rules, active_ids = _select_rules(select, ignore)
    run = RunContext(rules)
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintConfigError(f"cannot read {path}: {exc}") from exc
        run.check_file(path, source, module_name_for(path))
    run.finish()
    active = set(active_ids) | {"RPR001"}
    raw = [f for f in run.findings if f.rule_id in active]
    baselined = 0
    findings = raw
    if baseline_path is not None and os.path.exists(baseline_path):
        baseline = Baseline.load(baseline_path)
        findings, baselined = baseline.filter(raw)
    return LintReport(
        findings=findings,
        files_checked=run.files_checked,
        suppressed=run.suppressed,
        baselined=baselined,
        rules_run=active_ids,
        baseline_path=baseline_path,
        raw_findings=raw,
    )
