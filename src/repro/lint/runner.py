"""Lint orchestration: file discovery, rule selection, report shaping.

This is the layer behind ``repro-8t lint``: it expands the requested
paths into Python files, derives dotted module names from the
``__init__.py`` chain (the determinism rules scope themselves by
package), instantiates the active rules once, runs the single-pass
engine over every file, and folds suppressions + the optional baseline
into a :class:`LintReport`.

With ``deep=True`` the interprocedural tier
(:mod:`repro.lint.deep`) runs after the per-node pass over the same
file set: cached per-file summaries are linked into the project call
graph and the RPR2xx rules report through the same suppression and
baseline machinery, so a baseline written under the shallow tier
round-trips unchanged under ``--deep``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import LintConfigError
from repro.lint import rules as _rules  # noqa: F401  (registers the rules)
from repro.lint.baseline import Baseline
from repro.lint.deep import DEFAULT_CACHE_PATH, DeepStats, run_deep
from repro.lint.engine import RULE_TYPES, Rule, RunContext
from repro.lint.finding import Finding, Severity

__all__ = ["LintReport", "run_lint", "discover_files", "module_name_for"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


@dataclass
class LintReport:
    """Outcome of one lint invocation."""

    findings: List[Finding]
    files_checked: int
    suppressed: int
    baselined: int
    rules_run: Tuple[str, ...]
    baseline_path: Optional[str] = None
    #: All findings before baseline filtering — what --write-baseline saves.
    raw_findings: List[Finding] = field(default_factory=list)
    #: Call-graph/cache counters when the deep tier ran, else None.
    deep_stats: Optional[DeepStats] = None
    #: rule id / phase -> seconds, populated under --timing.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        if self.ok:
            extras = []
            if self.suppressed:
                extras.append(f"{self.suppressed} suppressed")
            if self.baselined:
                extras.append(f"{self.baselined} baselined")
            tail = f" ({', '.join(extras)})" if extras else ""
            text = (
                f"ok: {self.files_checked} files clean under "
                f"{len(self.rules_run)} rules{tail}"
            )
        else:
            text = (
                f"{len(self.findings)} finding(s) in {self.files_checked} "
                f"files ({self.suppressed} suppressed, "
                f"{self.baselined} baselined)"
            )
        if self.deep_stats is not None:
            text = f"{text}\n{self.deep_stats.summary_line()}"
        return text

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {
                "files_checked": self.files_checked,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "rules": list(self.rules_run),
                "ok": self.ok,
            },
        }
        if self.deep_stats is not None:
            payload["deep"] = self.deep_stats.to_dict()
        if self.timings:
            payload["timings"] = {
                key: round(value, 6)
                for key, value in sorted(self.timings.items())
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotations, one per finding.

        ``::error file=...,line=...,col=...,title=RPRxxx::message`` —
        the runner attaches these inline to the PR diff.  The summary
        goes out as a plain log line (not an annotation).
        """
        lines = []
        for finding in self.findings:
            command = (
                "error" if finding.severity is Severity.ERROR else "warning"
            )
            properties = ",".join(
                (
                    f"file={_escape_property(finding.path)}",
                    f"line={finding.line}",
                    f"col={finding.column}",
                    f"title={_escape_property(finding.rule_id)}",
                )
            )
            lines.append(
                f"::{command} {properties}::{_escape_data(finding.message)}"
            )
        lines.append(self.summary())
        return "\n".join(lines)


def _escape_data(value: str) -> str:
    """Workflow-command message escaping (order matters: % first)."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _escape_property(value: str) -> str:
    return (
        _escape_data(value).replace(":", "%3A").replace(",", "%2C")
    )


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    found: List[str] = []
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            candidates: Iterable[str] = [path]
        elif os.path.isdir(path):
            candidates = _walk_py(path)
        else:
            raise LintConfigError(f"no such file or directory: {path}")
        for candidate in candidates:
            normalized = os.path.normpath(candidate)
            if normalized not in seen:
                seen.add(normalized)
                found.append(normalized)
    return sorted(found)


def _walk_py(root: str) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            name
            for name in dirnames
            if name not in _SKIP_DIRS and not name.startswith(".")
        ]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def module_name_for(path: str) -> Optional[str]:
    """Dotted module name from the ``__init__.py`` package chain.

    ``src/repro/sim/campaign.py`` -> ``repro.sim.campaign``;
    returns None for files outside any package.
    """
    absolute = os.path.abspath(path)
    directory = os.path.dirname(absolute)
    stem = os.path.splitext(os.path.basename(absolute))[0]
    parts: List[str] = []
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    if not parts:
        return None
    parts.reverse()
    if stem != "__init__":
        parts.append(stem)
    return ".".join(parts)


def _select_rules(
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
    deep: bool,
) -> Tuple[List[Rule], List[Rule], Tuple[str, ...]]:
    """Returns (shallow rules, deep rules, active ids).

    Deep rules participate only under ``deep=True``; explicitly
    selecting one without it is a configuration error rather than a
    silent no-op.
    """
    known = set(RULE_TYPES)
    provided: Dict[str, str] = {}
    for rule_id, rule_type in RULE_TYPES.items():
        for extra in rule_type.also_provides:
            provided[extra] = rule_id
    deep_ids = {
        rule_id for rule_id, rule_type in RULE_TYPES.items() if rule_type.deep
    }
    selected_list = _validate_ids(select, known)
    if selected_list is not None and not deep:
        requested_deep = sorted(set(selected_list) & deep_ids)
        if requested_deep:
            raise LintConfigError(
                f"{', '.join(requested_deep)} are deep rules; "
                "run with --deep to enable the interprocedural tier"
            )
    selected = set(selected_list or known)
    if not deep:
        selected -= deep_ids
    ignored = set(_validate_ids(ignore, known) or ())
    active_ids = selected - ignored
    # Instantiate the owning rule for every active id (a cross-reference
    # rule may report under a provided satellite id).
    to_instantiate = {provided.get(rule_id, rule_id) for rule_id in active_ids}
    shallow = [
        RULE_TYPES[rule_id]()
        for rule_id in sorted(to_instantiate)
        if not RULE_TYPES[rule_id].deep
    ]
    deep_rules = [
        RULE_TYPES[rule_id]()
        for rule_id in sorted(to_instantiate)
        if RULE_TYPES[rule_id].deep
    ]
    return shallow, deep_rules, tuple(sorted(active_ids))


def _validate_ids(
    ids: Optional[Sequence[str]], known: set
) -> Optional[List[str]]:
    if not ids:
        return None
    provided = {
        extra
        for rule_type in RULE_TYPES.values()
        for extra in rule_type.also_provides
    }
    validated = []
    for rule_id in ids:
        canonical = rule_id.strip().upper()
        if canonical not in known and canonical not in provided:
            raise LintConfigError(
                f"unknown rule id {rule_id!r}; known: "
                f"{', '.join(sorted(known | provided))}"
            )
        validated.append(canonical)
    return validated


def known_rule_ids() -> frozenset:
    """Every id findings can carry: registered, provided, and RPR001."""
    provided = {
        extra
        for rule_type in RULE_TYPES.values()
        for extra in rule_type.also_provides
    }
    return frozenset(set(RULE_TYPES) | provided | {"RPR001"})


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    deep: bool = False,
    cache_path: Optional[str] = DEFAULT_CACHE_PATH,
    timing: bool = False,
) -> LintReport:
    """Lint ``paths`` and return the filtered report.

    ``select``/``ignore`` take rule ids (``RPR101``); ``select`` limits
    the run to those ids, ``ignore`` subtracts from whatever is
    selected.  ``baseline_path`` filters findings through a
    :class:`repro.lint.baseline.Baseline` file when it exists (a
    missing baseline file is treated as empty so bootstrap runs work).
    ``deep=True`` adds the RPR2xx interprocedural tier with its summary
    cache at ``cache_path`` (None disables caching); ``timing``
    records per-rule wall time in :attr:`LintReport.timings`.
    """
    if not paths:
        raise LintConfigError("lint needs at least one file or directory")
    files = discover_files(paths)
    shallow_rules, deep_rules, active_ids = _select_rules(
        select, ignore, deep
    )
    run = RunContext(shallow_rules, timing=timing)
    sources: List[Tuple[str, str]] = []
    module_names: Dict[str, Optional[str]] = {}
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintConfigError(f"cannot read {path}: {exc}") from exc
        module_names[path] = module_name_for(path)
        sources.append((path, source))
        run.check_file(path, source, module_names[path])
    run.finish()
    timings: Dict[str, float] = dict(run.rule_timings) if timing else {}

    deep_stats: Optional[DeepStats] = None
    suppressed = run.suppressed
    all_findings = list(run.findings)
    if deep:
        deep_findings, deep_suppressed, deep_stats = run_deep(
            sources,
            deep_rules,
            cache_path=cache_path,
            timing=timing,
            module_names=module_names,
        )
        all_findings.extend(deep_findings)
        suppressed += deep_suppressed
        if timing:
            timings.update(deep_stats.timings)
        all_findings.sort(
            key=lambda f: (f.path, f.line, f.column, f.rule_id)
        )

    active = set(active_ids) | {"RPR001"}
    raw = [f for f in all_findings if f.rule_id in active]
    baselined = 0
    findings = raw
    if baseline_path is not None and os.path.exists(baseline_path):
        baseline = Baseline.load(baseline_path, known_rules=known_rule_ids())
        findings, baselined = baseline.filter(raw)
    return LintReport(
        findings=findings,
        files_checked=run.files_checked,
        suppressed=suppressed,
        baselined=baselined,
        rules_run=active_ids,
        baseline_path=baseline_path,
        raw_findings=raw,
        deep_stats=deep_stats,
        timings=timings,
    )
