"""Light intra-function flow analyses for the deep rules.

Three statement-order/structure checks run while a module is being
summarised (so their results ride in the per-file cache):

* **Durability ordering** (RPR202) — inside one function, a
  write-effect event (``handle.write``, write-mode ``open``) followed
  by ``os.replace``/``os.rename`` with no ``os.fsync`` event between
  them on the linear statement order.  The commit may delegate the
  fsync to a helper, so each candidate carries the project/self calls
  seen in the window; the rule discharges the candidate at link time
  when any of those callees' effect closure contains ``fsync``.
* **Lock-set discipline** (RPR203) — per class owning a
  ``threading.Lock``/``RLock`` attribute: attributes mutated both
  under ``with self._lock`` and outside it.  Private helpers whose
  every intra-class call site is lock-held are themselves classified
  lock-held (fixpoint), which is exactly the ``ResultStore`` pattern —
  ``put()`` takes the lock and calls ``_enforce_bound()`` which
  mutates freely.  ``__init__``-family methods are exempt: the object
  is not yet shared.
* **Resource escape** (RPR204) — an ``open()`` whose handle neither
  enters a ``with``, nor is closed/stored on ``self``/returned in the
  function.  Storing on ``self`` and returning are deliberate escape
  hatches: ownership transfers, and the new owner is lintable.
* **Silent degradation** (RPR205) — an ``except`` handler catching
  ``Exception`` or any :mod:`repro.errors` class that neither raises
  nor emits telemetry in its body.  Handlers that delegate (call a
  helper that raises a classified error or emits) are discharged at
  link time through the helper's effect closure.

All four are deliberately *linear* approximations — no path
sensitivity, no aliasing.  They are tuned so that the shipped tree's
real idioms pass and the corresponding bug (dropping the fsync,
mutating outside the lock, swallowing the error) reliably fires; the
trade-offs are documented in docs/static-analysis.md.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro import errors as _errors
from repro.lint import effects as fx
from repro.lint.asthelpers import (
    SCOPE_TYPES,
    build_parent_map,
    dotted_name,
    iter_scope_nodes,
)

__all__ = ["collect_candidates"]

#: Exception class names from the project hierarchy; catching one of
#: these (or Exception itself) puts a handler on the degradation
#: ladder and in RPR205's scope.
REPRO_ERROR_NAMES = frozenset(
    name for name in _errors.__all__ if name.endswith("Error")
)

_LADDER_TYPES = REPRO_ERROR_NAMES | {"Exception", "BaseException"}

#: Telemetry emission leaves (mirrors the helper vocabulary RPR131
#: resolves through).
_EMIT_LEAVES = frozenset(
    {"warn", "emit", "emit_degradation", "on_event", "_emit_point"}
)

_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

#: Method leaves that mutate their receiver in place.
_MUTATOR_LEAVES = frozenset(
    {
        "append", "extend", "insert", "add", "update", "remove", "discard",
        "pop", "popitem", "clear", "setdefault", "appendleft", "popleft",
    }
)

_INIT_FAMILY = frozenset({"__init__", "__new__", "__post_init__", "__del__"})

Resolve = Callable[[ast.expr], Tuple[str, str]]


def collect_candidates(
    tree: ast.Module, resolve: Resolve, module: str
) -> List[Dict[str, Any]]:
    """All flow-rule candidates for one module (see module docstring)."""
    candidates: List[Dict[str, Any]] = []
    for node in tree.body:
        if isinstance(node, SCOPE_TYPES):
            _scan_function(
                node, f"{module}.{node.name}", None, resolve, candidates
            )
        elif isinstance(node, ast.ClassDef):
            class_qname = f"{module}.{node.name}"
            for child in node.body:
                if isinstance(child, SCOPE_TYPES):
                    _scan_function(
                        child, f"{class_qname}.{child.name}", class_qname,
                        resolve, candidates,
                    )
            _scan_class_locks(node, class_qname, resolve, candidates)
    return candidates


def _scan_function(
    func: ast.AST,
    qname: str,
    class_qname: Optional[str],
    resolve: Resolve,
    candidates: List[Dict[str, Any]],
) -> None:
    _scan_durability(func, qname, class_qname, resolve, candidates)
    _scan_open_escape(func, qname, class_qname, resolve, candidates)
    _scan_handlers(func, qname, class_qname, resolve, candidates)
    for node in iter_scope_nodes(func):
        if isinstance(node, SCOPE_TYPES):
            _scan_function(
                node, f"{qname}.{node.name}", class_qname, resolve, candidates
            )


def _candidate(
    rule: str,
    qname: str,
    class_qname: Optional[str],
    node: ast.AST,
    message: str,
    discharge: Optional[List[List[str]]] = None,
    discharge_effects: Optional[List[str]] = None,
) -> Dict[str, Any]:
    return {
        "rule": rule,
        "function": qname,
        "class": class_qname,
        "line": getattr(node, "lineno", 1),
        "col": getattr(node, "col_offset", 0),
        "message": message,
        "discharge": discharge or [],
        "discharge_effects": discharge_effects or [],
    }


# -- RPR202: write -> replace needs an fsync between ------------------------


def _scan_durability(
    func: ast.AST,
    qname: str,
    class_qname: Optional[str],
    resolve: Resolve,
    candidates: List[Dict[str, Any]],
) -> None:
    events: List[Tuple[int, int, str, Any]] = []
    for node in iter_scope_nodes(func):
        if not isinstance(node, ast.Call):
            continue
        kind, name = resolve(node.func)
        position = (node.lineno, node.col_offset)
        if kind == "external":
            if name == "os.fsync":
                events.append((*position, "fsync", name))
                continue
            if name in ("os.replace", "os.rename"):
                events.append((*position, "replace", node))
                continue
        if kind in ("project", "self"):
            events.append((*position, "call", [kind, name]))
        effects = fx.classify_external_call(name, node)
        if fx.FS_WRITE in effects:
            events.append((*position, "write", name))
    events.sort(key=lambda item: (item[0], item[1]))
    write_line: Optional[int] = None
    synced_after_write = True
    window_calls: List[List[str]] = []
    for line, _col, kind, payload in events:
        if kind == "write":
            if write_line is None or synced_after_write:
                window_calls = []
            write_line = line
            synced_after_write = False
        elif kind == "fsync":
            synced_after_write = True
        elif kind == "call":
            window_calls.append(payload)
        elif kind == "replace":
            if write_line is not None and not synced_after_write:
                candidates.append(
                    _candidate(
                        "RPR202",
                        qname,
                        class_qname,
                        payload,
                        (
                            f"write at line {write_line} reaches "
                            "os.replace with no os.fsync between them — "
                            "a crash can publish an empty or torn file"
                        ),
                        discharge=list(window_calls),
                        discharge_effects=[fx.FSYNC],
                    )
                )
            write_line = None
            synced_after_write = True
            window_calls = []


# -- RPR204: open() escaping unmanaged --------------------------------------


def _scan_open_escape(
    func: ast.AST,
    qname: str,
    class_qname: Optional[str],
    resolve: Resolve,
    candidates: List[Dict[str, Any]],
) -> None:
    parents = build_parent_map(func)
    closed_names: Set[str] = set()
    with_names: Set[str] = set()
    returned_names: Set[str] = set()
    stored_names: Set[str] = set()
    for node in iter_scope_nodes(func):
        if isinstance(node, ast.Attribute) and node.attr == "close":
            base = dotted_name(node.value)
            if base is not None:
                closed_names.add(base.split(".", 1)[0])
        elif isinstance(node, ast.withitem):
            base = dotted_name(node.context_expr)
            if base is not None:
                with_names.add(base)
        elif isinstance(node, ast.Return) and isinstance(
            node.value, ast.Name
        ):
            returned_names.add(node.value.id)
        elif isinstance(node, ast.Assign):
            if (
                isinstance(node.value, ast.Name)
                and any(
                    isinstance(t, ast.Attribute) for t in node.targets
                )
            ):
                stored_names.add(node.value.id)
    for node in iter_scope_nodes(func):
        if not isinstance(node, ast.Call):
            continue
        kind, name = resolve(node.func)
        if kind != "external" or name not in ("open", "os.fdopen", "io.open"):
            continue
        if _is_managed(node, parents, closed_names, with_names,
                       returned_names, stored_names):
            continue
        candidates.append(
            _candidate(
                "RPR204",
                qname,
                class_qname,
                node,
                (
                    f"{name}() handle neither enters a with-block nor is "
                    "closed/stored/returned — leaks the descriptor and "
                    "loses buffered writes on error paths"
                ),
            )
        )


def _is_managed(
    call: ast.Call,
    parents: Dict[ast.AST, ast.AST],
    closed_names: Set[str],
    with_names: Set[str],
    returned_names: Set[str],
    stored_names: Set[str],
) -> bool:
    node: ast.AST = call
    while node in parents:
        parent = parents[node]
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, ast.Return):
            return True  # ownership transfers to the caller
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute):
                    return True  # stored on self; lifecycle owned there
                if isinstance(target, ast.Name):
                    bound = target.id
                    if (
                        bound in closed_names
                        or bound in with_names
                        or bound in returned_names
                        or bound in stored_names
                    ):
                        return True
            return False
        if isinstance(parent, (ast.stmt, ast.ExceptHandler)):
            return False
        node = parent
    return False


# -- RPR205: degradation handlers must raise or emit ------------------------


def _scan_handlers(
    func: ast.AST,
    qname: str,
    class_qname: Optional[str],
    resolve: Resolve,
    candidates: List[Dict[str, Any]],
) -> None:
    for node in iter_scope_nodes(func):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught = _caught_names(node.type)
        if not caught or not (caught & _LADDER_TYPES):
            continue
        compliant = False
        discharge: List[List[str]] = []
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                compliant = True
                break
            if isinstance(inner, ast.Call):
                kind, name = resolve(inner.func)
                leaf = name.rsplit(".", 1)[-1]
                if leaf in _EMIT_LEAVES:
                    compliant = True
                    break
                if any(
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("warning.")
                    for arg in inner.args
                ):
                    compliant = True
                    break
                if kind in ("project", "self"):
                    discharge.append([kind, name])
        if compliant:
            continue
        label = ", ".join(sorted(caught & _LADDER_TYPES))
        candidates.append(
            _candidate(
                "RPR205",
                qname,
                class_qname,
                node,
                (
                    f"except {label}: handler neither re-raises a "
                    "classified error nor emits a warning.* metric — "
                    "the degradation is invisible to operators"
                ),
                discharge=discharge,
                discharge_effects=[fx.TELEMETRY_EMIT, "raises:*"],
            )
        )


def _caught_names(type_node: Optional[ast.expr]) -> Set[str]:
    if type_node is None:
        return set()  # bare except is RPR112's finding already
    exprs = (
        list(type_node.elts)
        if isinstance(type_node, ast.Tuple)
        else [type_node]
    )
    names: Set[str] = set()
    for expr in exprs:
        chain = dotted_name(expr)
        if chain is not None:
            names.add(chain.rsplit(".", 1)[-1])
    return names


# -- RPR203: lock-set discipline per class ----------------------------------


def _scan_class_locks(
    node: ast.ClassDef,
    class_qname: str,
    resolve: Resolve,
    candidates: List[Dict[str, Any]],
) -> None:
    methods = [
        child for child in node.body if isinstance(child, SCOPE_TYPES)
    ]
    lock_attrs = _find_lock_attrs(methods, resolve)
    if not lock_attrs:
        return
    # Per method: mutation sites and intra-class call sites, each
    # tagged with whether a ``with self.<lock>`` frame encloses it.
    mutations: Dict[str, List[Tuple[str, bool, ast.AST]]] = {}
    call_sites: List[Tuple[str, str, bool]] = []
    for method in methods:
        if method.name in _INIT_FAMILY:
            continue
        parents = build_parent_map(method)
        for inner in ast.walk(method):
            attr = _mutated_self_attr(inner)
            if attr is not None and attr not in lock_attrs:
                locked = _under_lock(inner, parents, lock_attrs)
                mutations.setdefault(attr, []).append(
                    (method.name, locked, inner)
                )
            if isinstance(inner, ast.Call):
                chain = dotted_name(inner.func)
                if (
                    chain is not None
                    and chain.startswith("self.")
                    and chain.count(".") == 1
                ):
                    locked = _under_lock(inner, parents, lock_attrs)
                    call_sites.append(
                        (method.name, chain.split(".", 1)[1], locked)
                    )
    # Fixpoint: a private helper is lock-held when every intra-class
    # call site is under the lock or inside a lock-held method.
    lock_held: Set[str] = set()
    method_names = {m.name for m in methods}
    changed = True
    while changed:
        changed = False
        for name in method_names:
            if name in lock_held or not name.startswith("_"):
                continue
            sites = [s for s in call_sites if s[1] == name]
            if not sites:
                continue
            if all(locked or caller in lock_held for caller, _, locked in sites):
                lock_held.add(name)
                changed = True
    for attr, sites in sorted(mutations.items()):
        effective = [
            (method, locked or method in lock_held, site)
            for method, locked, site in sites
        ]
        locked_sites = [s for s in effective if s[1]]
        naked_sites = [s for s in effective if not s[1]]
        if not locked_sites or not naked_sites:
            continue
        witness = locked_sites[0]
        for method, _locked, site in naked_sites:
            candidates.append(
                _candidate(
                    "RPR203",
                    f"{class_qname}.{method}",
                    class_qname,
                    site,
                    (
                        f"self.{attr} is mutated here without the lock but "
                        f"under it in {witness[0]}() line "
                        f"{getattr(witness[2], 'lineno', '?')} — racing "
                        "writers can tear the shared state"
                    ),
                )
            )


def _find_lock_attrs(methods: List[ast.AST], resolve: Resolve) -> Set[str]:
    lock_attrs: Set[str] = set()
    for method in methods:
        for inner in ast.walk(method):
            if not isinstance(inner, ast.Assign):
                continue
            if not isinstance(inner.value, ast.Call):
                continue
            _kind, name = resolve(inner.value.func)
            if name not in _LOCK_FACTORIES:
                continue
            for target in inner.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    lock_attrs.add(target.attr)
    return lock_attrs


def _mutated_self_attr(node: ast.AST) -> Optional[str]:
    """The ``self.<attr>`` an AST node mutates, if any."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Call):
        chain = dotted_name(node.func)
        if (
            chain is not None
            and chain.startswith("self.")
            and chain.rsplit(".", 1)[-1] in _MUTATOR_LEAVES
            and chain.count(".") >= 2
        ):
            return chain.split(".")[1]
        return None
    else:
        return None
    for target in targets:
        base = target
        # self.attr = / self.attr[k] = both mutate attr's referent.
        if isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            return base.attr
    return None


def _under_lock(
    node: ast.AST,
    parents: Dict[ast.AST, ast.AST],
    lock_attrs: Set[str],
) -> bool:
    current: ast.AST = node
    while current in parents:
        current = parents[current]
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                chain = dotted_name(item.context_expr)
                if chain is not None and chain.startswith("self."):
                    if chain.split(".", 1)[1] in lock_attrs:
                        return True
        if isinstance(current, SCOPE_TYPES):
            break
    return False
