"""Per-function effect/purity inference for the deep lint tier.

An *effect* is a named, externally visible behaviour a function may
perform: reading the wall clock, drawing from the unseeded global RNG,
writing the filesystem, fsync'ing, ``os.replace``-renaming, acquiring a
lock, emitting telemetry, or raising a class of exception.  The deep
rules (RPR201-205, :mod:`repro.lint.rules.deep`) do not care what a
function computes — only which effects its *call closure* can reach.

Two layers live here:

* **Direct inference** — :func:`classify_external_call` and the
  syntactic helpers map one resolved call (or ``with``/``raise``
  statement) to its effect, using the same wall-clock/RNG vocabulary
  the per-node determinism rules enforce (:mod:`repro.lint.rules.
  determinism`), so the two tiers can never disagree about what counts
  as nondeterminism.
* **Transitive closure** — :func:`propagate` folds direct effects over
  the project call graph to a fixpoint, recording for every
  ``(function, effect)`` pair an *origin* (the direct call, or the
  callee the effect was inherited from) so a finding can print the
  exact helper chain down to the offending primitive.

Determinism effects stop at the measurement plane: the telemetry
modules (:data:`MEASUREMENT_PLANE_MODULES`) exist to record facts
*about* a run, so their wall-clock use never taints a caller — the
same carve-out RPR101 makes for ``perf_counter``/``monotonic``.  The
perf ledger and environment fingerprint (``repro.obs.perf``) are
deliberately *not* on that list: a fenced function that reaches
``utc_timestamp()`` is leaking wall clock into result-bearing values.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Tuple

from repro.lint.rules.determinism import DETERMINISM_PACKAGES

__all__ = [
    "WALL_CLOCK",
    "UNSEEDED_RNG",
    "FS_WRITE",
    "FSYNC",
    "REPLACE",
    "LOCK_ACQUIRE",
    "TELEMETRY_EMIT",
    "DETERMINISM_EFFECTS",
    "MEASUREMENT_PLANE_MODULES",
    "raise_effect",
    "is_raise_effect",
    "classify_external_call",
    "propagate",
    "origin_chain",
]

WALL_CLOCK = "wall-clock"
UNSEEDED_RNG = "unseeded-rng"
FS_WRITE = "fs-write"
FSYNC = "fsync"
REPLACE = "replace"
LOCK_ACQUIRE = "lock-acquire"
TELEMETRY_EMIT = "telemetry-emit"

#: The effects RPR201 refuses to let into the determinism fence.
DETERMINISM_EFFECTS = (WALL_CLOCK, UNSEEDED_RNG)

#: Modules whose wall-clock/RNG use is measurement *about* a run and
#: never propagates to callers.  ``repro.obs.perf`` is excluded on
#: purpose — the ledger's timestamps must arrive as parameters.
MEASUREMENT_PLANE_MODULES = frozenset(
    {
        "repro.obs.telemetry",
        "repro.obs.registry",
        "repro.obs.sinks",
        "repro.obs.spans",
        "repro.obs.sampler",
        "repro.obs.profiler",
    }
)

#: Wall-clock reads, shared verbatim with RPR101 so the direct and
#: transitive tiers fence the identical primitive set.
from repro.lint.rules.determinism import (  # noqa: E402  (vocabulary reuse)
    _GLOBAL_RANDOM_CALLS,
    _WALL_CLOCK_CALLS,
)

#: Filesystem mutators by dotted name.
_FS_WRITE_CALLS = frozenset(
    {
        "os.write",
        "os.truncate",
        "os.ftruncate",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.move",
    }
)

_REPLACE_CALLS = frozenset({"os.replace", "os.rename"})

#: Attribute-call leaves that write through a handle or a Path.
_WRITE_METHOD_LEAVES = frozenset(
    {"write", "writelines", "write_text", "write_bytes"}
)


def raise_effect(class_name: str) -> str:
    """The effect name for ``raise <class_name>``."""
    return f"raises:{class_name}"


def is_raise_effect(effect: str) -> bool:
    return effect.startswith("raises:")


def classify_external_call(name: str, node: ast.Call) -> List[str]:
    """Effects of one resolved external (non-project) call.

    ``name`` is the import-resolved dotted name (``time.time``,
    ``os.replace``, ``random.randint``); ``node`` disambiguates the
    argument-dependent cases (write-mode ``open``, seedless
    ``random.Random``).
    """
    effects: List[str] = []
    if name in _WALL_CLOCK_CALLS:
        effects.append(WALL_CLOCK)
    if (
        name.startswith("random.")
        and name[len("random."):] in _GLOBAL_RANDOM_CALLS
    ):
        effects.append(UNSEEDED_RNG)
    if name == "random.Random" and not node.args and not node.keywords:
        effects.append(UNSEEDED_RNG)
    if name == "os.fsync":
        effects.append(FSYNC)
    if name in _REPLACE_CALLS:
        effects.append(REPLACE)
    if name in _FS_WRITE_CALLS:
        effects.append(FS_WRITE)
    if name == "open" and _open_mode_writes(node):
        effects.append(FS_WRITE)
    leaf = name.rsplit(".", 1)[-1]
    if "." in name and leaf in _WRITE_METHOD_LEAVES:
        effects.append(FS_WRITE)
    return effects


def _open_mode_writes(node: ast.Call) -> bool:
    """True when an ``open()`` call's mode argument can write."""
    mode: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in mode.value for ch in "wax+")
    return True  # dynamic mode: assume the write capability exists


# -- transitive closure -------------------------------------------------------------

#: Origin of an effect on a function: ``("direct", <primitive>, line)``
#: for a call made in the body, ``("call", <callee qname>, line)`` for
#: an effect inherited through an edge.
Origin = Tuple[str, str, int]


def propagate(
    direct: Dict[str, Dict[str, Origin]],
    edges: Dict[str, List[Tuple[str, int, int]]],
    barrier: Optional[Callable[[str, str], bool]] = None,
) -> Dict[str, Dict[str, Origin]]:
    """Fold direct effects over the call graph to a fixpoint.

    ``direct`` maps function qname -> {effect: origin}; ``edges`` maps
    caller qname -> [(callee qname, line, col), ...].  ``barrier(callee,
    effect)`` returning True stops that effect from crossing the edge
    (the measurement-plane carve-out).  Cycles (recursion) converge
    because the closure only ever grows and the effect set is finite.
    """
    closure: Dict[str, Dict[str, Origin]] = {
        qname: dict(effects) for qname, effects in direct.items()
    }
    callers: Dict[str, List[Tuple[str, int]]] = {}
    for caller, callees in edges.items():
        for callee, line, _col in callees:
            callers.setdefault(callee, []).append((caller, line))
    pending = list(closure)
    in_pending = set(pending)
    while pending:
        qname = pending.pop()
        in_pending.discard(qname)
        effects = closure.get(qname)
        if not effects:
            continue
        for caller, line in callers.get(qname, ()):
            target = closure.setdefault(caller, {})
            changed = False
            for effect in effects:
                if barrier is not None and barrier(qname, effect):
                    continue
                if effect not in target:
                    target[effect] = ("call", qname, line)
                    changed = True
            if changed and caller not in in_pending:
                pending.append(caller)
                in_pending.add(caller)
    return closure


def determinism_barrier(callee: str, effect: str) -> bool:
    """The default propagation barrier (see module docstring)."""
    if effect not in DETERMINISM_EFFECTS:
        return False
    module = callee.rsplit(".", 2)
    # A qname is module.func or module.Class.method; test both prefixes.
    candidates = {callee.rsplit(".", 1)[0]}
    if len(module) == 3:
        candidates.add(module[0])
    return any(c in MEASUREMENT_PLANE_MODULES for c in candidates)


def origin_chain(
    closure: Dict[str, Dict[str, Origin]],
    qname: str,
    effect: str,
    limit: int = 10,
) -> List[str]:
    """Human-readable witness chain from ``qname`` down to the primitive.

    ``["helper_a()", "helper_b()", "time.time()"]`` — each hop is the
    callee the effect was inherited through, ending at the direct call.
    """
    chain: List[str] = []
    seen = set()
    current = qname
    for _ in range(limit):
        if current in seen:
            break
        seen.add(current)
        origin = closure.get(current, {}).get(effect)
        if origin is None:
            break
        kind, target, _line = origin
        chain.append(f"{_short(target)}()")
        if kind == "direct":
            return chain
        current = target
    chain.append("...")
    return chain


def _short(qname: str) -> str:
    """Trim a project qname for messages; external names stay whole."""
    for package in DETERMINISM_PACKAGES + ("repro.",):
        if qname.startswith(package):
            parts = qname.split(".")
            return ".".join(parts[-2:]) if len(parts) > 2 else qname
    return qname
