"""The ``lint --deep`` driver: cached summaries -> link -> RPR2xx rules.

Orchestrates the interprocedural tier around the cache boundary
described in :mod:`repro.lint.callgraph`:

1. **Summarise with a digest cache.**  Each file's
   :class:`~repro.lint.callgraph.ModuleSummary` is keyed by the sha256
   digest of its own bytes; the whole cache is keyed by the lint
   package's own code version (the :func:`repro.store.version.
   code_version` pattern with ``paths=("lint",)``) and the summary
   schema version.  A warm run therefore re-analyses exactly the files
   whose bytes changed — edit one module and the other N-1 summaries
   load from disk — while any edit to the analyser itself invalidates
   everything (an analyser bug must not be cached into stale verdicts).
2. **Link** the summaries into the project graph + effect closure.
3. **Run the deep rules** (``deep = True`` in the registry) against the
   linked graph, folding findings through the same suppression and
   snippet machinery as the shallow tier — the statement-anchor maps
   ride in the summaries so suppression scoping works on cache hits
   without re-parsing.

The cache write is itself durability-disciplined (tempfile -> fsync ->
``os.replace``): the linter practises what RPR202 preaches, and a
crash mid-write leaves the previous cache intact.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.callgraph import (
    SUMMARY_VERSION,
    ModuleSummary,
    link,
    summarize_module,
)
from repro.lint.engine import Rule
from repro.lint.finding import Finding
from repro.lint.suppressions import SuppressionIndex
from repro.store.version import code_version

__all__ = ["DeepStats", "run_deep", "DEFAULT_CACHE_PATH", "LINT_CODE_PATHS"]

#: Default on-disk location of the summary cache, relative to the
#: working directory (gitignored; delete it to force a cold run).
DEFAULT_CACHE_PATH = os.path.join(".repro-lint-cache", "summaries.json")

#: The analyser's own code surface: any change here invalidates every
#: cached summary.
LINT_CODE_PATHS = ("lint",)


class DeepStats:
    """Counters + timings for one deep pass (rendered in reports)."""

    def __init__(self) -> None:
        self.files = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.functions = 0
        self.edges = 0
        self.unresolved_total = 0
        self.unresolved_by_reason: Dict[str, int] = {}
        self.unresolved_sites: List[Dict[str, Any]] = []
        self.timings: Dict[str, float] = {}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "files": self.files,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "functions": self.functions,
            "edges": self.edges,
            "unresolved_total": self.unresolved_total,
            "unresolved_by_reason": dict(
                sorted(self.unresolved_by_reason.items())
            ),
            "unresolved_sites": self.unresolved_sites,
            "timings": {k: round(v, 6) for k, v in sorted(self.timings.items())},
        }

    def summary_line(self) -> str:
        reasons = ", ".join(
            f"{count} {reason}"
            for reason, count in sorted(self.unresolved_by_reason.items())
        )
        tail = f" ({reasons})" if reasons else ""
        return (
            f"deep: {self.functions} functions, {self.edges} edges, "
            f"{self.cache_hits} cached / {self.cache_misses} analysed, "
            f"{self.unresolved_total} unresolved call sites{tail}"
        )


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


def _load_cache(path: str, lint_version: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(payload, dict):
        return {}
    if payload.get("version") != SUMMARY_VERSION:
        return {}
    if payload.get("code_version") != lint_version:
        return {}
    files = payload.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(
    path: str, lint_version: str, files: Dict[str, Any]
) -> None:
    payload = {
        "version": SUMMARY_VERSION,
        "code_version": lint_version,
        "files": files,
    }
    directory = os.path.dirname(path) or "."
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".summaries-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
    except OSError:
        # The cache is an accelerator, never a correctness input — a
        # read-only checkout just runs cold every time.
        pass


def run_deep(
    files: Sequence[Tuple[str, str]],
    rules: Sequence[Rule],
    cache_path: Optional[str] = DEFAULT_CACHE_PATH,
    timing: bool = False,
    project_packages: Sequence[str] = ("repro",),
    module_names: Optional[Dict[str, Optional[str]]] = None,
) -> Tuple[List[Finding], int, DeepStats]:
    """Run the deep tier over ``files`` ([(path, source), ...]).

    Returns ``(findings, suppressed_count, stats)``.  ``cache_path=None``
    disables the summary cache entirely.  ``module_names`` maps path ->
    dotted module (computed by the caller, which already knows it).
    """
    stats = DeepStats()
    lint_version = code_version(paths=LINT_CODE_PATHS)
    cached_files = (
        _load_cache(cache_path, lint_version) if cache_path else {}
    )
    next_cache: Dict[str, Any] = {}
    summaries: List[ModuleSummary] = []
    sources: Dict[str, List[str]] = {}

    clock = time.perf_counter
    start = clock()
    for path, source in files:
        stats.files += 1
        sources[path] = source.splitlines()
        digest = _digest(source.encode("utf-8"))
        entry = cached_files.get(path)
        if entry is not None and entry.get("digest") == digest:
            try:
                summary = ModuleSummary.from_dict(entry["summary"])
            except (KeyError, TypeError, ValueError):
                summary = None
            if summary is not None:
                stats.cache_hits += 1
                summaries.append(summary)
                next_cache[path] = entry
                continue
        module = (module_names or {}).get(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            # The shallow engine already filed RPR001 for this file.
            continue
        summary = summarize_module(
            path, source, module, tree, project_packages
        )
        stats.cache_misses += 1
        summaries.append(summary)
        next_cache[path] = {"digest": digest, "summary": summary.to_dict()}
    stats.timings["deep:summarize"] = clock() - start

    start = clock()
    linked = link(summaries)
    stats.timings["deep:link"] = clock() - start
    stats.functions = len(linked.functions)
    stats.edges = linked.edge_count
    stats.unresolved_total = len(linked.unresolved)
    for site in linked.unresolved:
        reason = site.get("reason", "unknown")
        stats.unresolved_by_reason[reason] = (
            stats.unresolved_by_reason.get(reason, 0) + 1
        )
    stats.unresolved_sites = list(linked.unresolved)

    findings: List[Finding] = []
    suppressed = 0
    suppression_cache: Dict[str, SuppressionIndex] = {}

    def reporter(
        rule: Rule, path: str, line: int, col: int, message: str
    ) -> None:
        nonlocal suppressed
        index = suppression_cache.get(path)
        if index is None:
            summary = linked.summaries.get(path)
            anchors = summary.anchors if summary is not None else None
            index = SuppressionIndex.from_lines(
                sources.get(path, ()), anchors
            )
            suppression_cache[path] = index
        if index.is_suppressed(rule.id, line):
            suppressed += 1
            return
        lines = sources.get(path, [])
        snippet = (
            lines[line - 1].strip() if 1 <= line <= len(lines) else ""
        )
        findings.append(
            Finding(
                rule_id=rule.id,
                severity=rule.severity,
                path=path,
                line=line,
                column=col,
                message=message,
                snippet=snippet,
            )
        )

    for rule in sorted(rules, key=lambda r: r.id):
        start = clock()
        rule.check_deep(linked, reporter)  # type: ignore[attr-defined]
        if timing:
            stats.timings[rule.id] = clock() - start
    if not timing:
        # Phase totals are cheap and always useful; per-rule numbers
        # only appear when asked for.
        stats.timings = {
            k: v for k, v in stats.timings.items() if k.startswith("deep:")
        }

    if cache_path:
        _save_cache(cache_path, lint_version, next_cache)
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    return findings, suppressed, stats
