"""Telemetry-hygiene rules (RPR131, RPR132).

The metrics plane is only trustworthy if dashboards and tests can rely
on a *closed* name set: a counter incremented under a name nobody
declared is invisible debt (nothing reads it, or worse, a dashboard
reads the old name), and a declared name nobody increments is drift in
the other direction — a chart silently flatlining at zero.

Declarations live in ``repro/obs/names.py`` as the module-level
``METRIC_NAMES`` mapping of glob-ish name patterns (``*`` spans one or
more dynamic characters, e.g. ``ctrl.*.hits``).  The rules statically
resolve every emission site — ``registry.inc/counter/gauge/set_gauge/
histogram/observe``, the controller ``_emit_point`` helper (which
prefixes ``ctrl.<name>.``), ``Telemetry.warn`` (which prefixes
``warning.``), and the ``emit_degradation``/``on_event`` resilience
helpers — and cross-references the two sets after the whole run.
F-string interpolations resolve to ``*``; a fully dynamic name (a bare
variable) is statically unresolvable and is skipped, which keeps
pass-through helpers like ``emit_degradation``'s own body out of scope.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lint.asthelpers import patterns_unify, resolve_string_pattern
from repro.lint.engine import FileContext, Rule, RunContext, register_rule
from repro.lint.finding import Severity

__all__ = ["MetricDeclarationRule", "DECLARATION_NAME"]

#: The module-level mapping that declares the metric name set.
DECLARATION_NAME = "METRIC_NAMES"

#: MetricsRegistry methods that take a metric name as first argument.
_REGISTRY_METHODS = frozenset(
    {"inc", "counter", "gauge", "set_gauge", "histogram", "observe"}
)

#: Helper callables: callable name -> (argument index, name prefix).
_HELPER_CALLS: Dict[str, Tuple[int, str]] = {
    "_emit_point": (0, "ctrl.*."),
    "emit_degradation": (1, ""),
    "on_event": (0, ""),
}


@dataclass
class _Site:
    """One statically resolved emission or declaration site."""

    ctx: FileContext
    node: ast.AST
    pattern: str


def _registry_receiver(func: ast.Attribute) -> bool:
    """True when the call receiver is registry-shaped.

    Accepts ``registry.inc``, ``telem.registry.inc``,
    ``self.telemetry.registry.counter`` — anything whose final receiver
    component is named ``registry``.  This keeps unrelated ``observe``
    methods (e.g. ``TraceStatistics.observe``) out of scope.
    """
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id == "registry"
    if isinstance(receiver, ast.Attribute):
        return receiver.attr == "registry"
    return False


def _warn_receiver(func: ast.Attribute) -> bool:
    """``telem.warn`` / ``telemetry.warn`` / ``self.telemetry.warn``."""
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id in ("telem", "telemetry")
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in ("telem", "telemetry")
    return False


@register_rule
class MetricDeclarationRule(Rule):
    """RPR131 (undeclared emission) + RPR132 (unemitted declaration).

    One rule instance handles both directions because they share the
    collected sites; RPR132 findings are emitted under the sibling
    class's id via :class:`_UnusedDeclarationRule`, which exists so the
    id has its own catalogue entry, severity, and select/ignore knob.
    """

    id = "RPR131"
    name = "undeclared-metric-name"
    also_provides = ("RPR132",)
    severity = Severity.ERROR
    description = (
        "metric names emitted through the MetricsRegistry must match a "
        "declared pattern in repro/obs/names.py (METRIC_NAMES); "
        "undeclared names are invisible to dashboards and tests"
    )

    def __init__(self) -> None:
        self.emissions: List[_Site] = []
        self.declarations: List[_Site] = []
        self._external_declarations: Optional[List[str]] = None

    # -- collection ---------------------------------------------------------

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _REGISTRY_METHODS and _registry_receiver(func):
                self._collect(node, ctx, arg_index=0, prefix="")
                return
            if func.attr == "warn" and _warn_receiver(func):
                self._collect(node, ctx, arg_index=0, prefix="warning.")
                return
            if func.attr in _HELPER_CALLS:
                arg_index, prefix = _HELPER_CALLS[func.attr]
                self._collect(node, ctx, arg_index=arg_index, prefix=prefix)
                return
        elif isinstance(func, ast.Name) and func.id in _HELPER_CALLS:
            arg_index, prefix = _HELPER_CALLS[func.id]
            self._collect(node, ctx, arg_index=arg_index, prefix=prefix)

    def _collect(
        self, node: ast.Call, ctx: FileContext, arg_index: int, prefix: str
    ) -> None:
        if len(node.args) <= arg_index:
            return
        pattern = resolve_string_pattern(node.args[arg_index])
        if pattern is None:
            return  # fully dynamic: a pass-through variable, not a name
        self.emissions.append(_Site(ctx, node, prefix + pattern))

    def visit_Assign(self, node: ast.Assign, ctx: FileContext) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == DECLARATION_NAME:
                self._collect_declarations(node.value, ctx)

    def _collect_declarations(self, value: ast.AST, ctx: FileContext) -> None:
        if isinstance(value, ast.Call):
            # frozenset({...}) / dict(...) wrappers
            for arg in value.args:
                self._collect_declarations(arg, ctx)
            return
        if isinstance(value, ast.Dict):
            keys: List[ast.AST] = [k for k in value.keys if k is not None]
        elif isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            keys = list(value.elts)
        else:
            return
        for key in keys:
            pattern = resolve_string_pattern(key)
            if pattern is not None:
                self.declarations.append(_Site(ctx, key, pattern))

    # -- cross-reference ----------------------------------------------------

    def finish_run(self, run: RunContext) -> None:
        declared = [site.pattern for site in self.declarations]
        external = self._load_external_declarations()
        all_declared = declared + external
        if not all_declared:
            # No catalogue in sight (e.g. linting one rule fixture):
            # nothing to cross-reference against, so stay silent rather
            # than flagging every emission in the file.
            return
        for site in self.emissions:
            if not any(
                patterns_unify(site.pattern, pattern)
                for pattern in all_declared
            ):
                site.ctx.report(
                    self,
                    site.node,
                    f"metric name {site.pattern!r} is not declared in "
                    f"{DECLARATION_NAME} (repro/obs/names.py); declare "
                    f"it or fix the name",
                )
        # Drift in the other direction: only for declarations that were
        # actually part of the linted file set (the external catalogue
        # is context, not subject).
        unused_rule = _UnusedDeclarationRule()
        emitted = [site.pattern for site in self.emissions]
        for site in self.declarations:
            if not any(
                patterns_unify(pattern, site.pattern) for pattern in emitted
            ):
                site.ctx.report(
                    unused_rule,
                    site.node,
                    f"declared metric name {site.pattern!r} is never "
                    f"emitted anywhere in the linted tree; delete the "
                    f"declaration or wire up the emission",
                )

    def _load_external_declarations(self) -> List[str]:
        """Find the in-repo catalogue when it is not in the lint set.

        Linting a single module should not flag every emission just
        because ``repro/obs/names.py`` was not named on the command
        line, so walk up from each linted file looking for the
        catalogue inside the owning ``repro`` package.
        """
        if self._external_declarations is not None:
            return self._external_declarations
        linted = {os.path.abspath(site.ctx.path) for site in self.emissions}
        declared_files = {
            os.path.abspath(site.ctx.path) for site in self.declarations
        }
        found: List[str] = []
        seen_dirs = set()
        for path in linted:
            directory = os.path.dirname(path)
            for _ in range(8):
                if directory in seen_dirs:
                    break
                seen_dirs.add(directory)
                candidate = os.path.join(directory, "obs", "names.py")
                if (
                    os.path.basename(directory) == "repro"
                    and os.path.isfile(candidate)
                    and os.path.abspath(candidate) not in declared_files
                ):
                    found.extend(_parse_catalogue(candidate))
                parent = os.path.dirname(directory)
                if parent == directory:
                    break
                directory = parent
        self._external_declarations = found
        return found


def _parse_catalogue(path: str) -> List[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read(), filename=path)
    except (OSError, SyntaxError):
        return []
    patterns: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == DECLARATION_NAME
                    and isinstance(node.value, ast.Dict)
                ):
                    for key in node.value.keys:
                        if key is not None:
                            pattern = resolve_string_pattern(key)
                            if pattern is not None:
                                patterns.append(pattern)
    return patterns


@register_rule
class _UnusedDeclarationRule(Rule):
    """RPR132 — reported from :class:`MetricDeclarationRule.finish_run`.

    Registered so the id appears in the catalogue and responds to
    ``--select``/``--ignore``; it has no visitors of its own.
    """

    id = "RPR132"
    name = "unemitted-metric-declaration"
    severity = Severity.WARNING
    description = (
        "every METRIC_NAMES declaration must have at least one "
        "statically visible emission; a never-incremented name is a "
        "flatlined chart waiting to mislead"
    )
