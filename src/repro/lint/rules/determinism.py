"""Determinism rules (RPR101, RPR102).

The whole reproduction rests on bit-for-bit repeatability: every figure
is a pure function of its seed (see ``repro.utils.rng``).  A wall-clock
read or an unseeded global-RNG draw inside a simulation-semantics
module silently turns "reproduction" into "anecdote" — results change
run to run with no crash to notice.  These rules fence the modules
whose outputs are the paper's numbers:

* ``repro.core``   — controllers (the techniques under test)
* ``repro.engine`` — the batched execution engine
* ``repro.sim``    — simulator, campaigns, checkpoint/resume
* ``repro.check``  — oracle, differential runner, fuzzer

``time.perf_counter``/``time.monotonic``/``time.sleep`` stay legal:
they feed *measurements about* a run (span timings, retry pacing,
timeouts), never values *inside* one.  ``random.Random(seed)`` stays
legal because construction demands an explicit seed at the call site.
"""

from __future__ import annotations

import ast

from repro.lint.asthelpers import call_name
from repro.lint.engine import FileContext, Rule, register_rule
from repro.lint.finding import Severity

__all__ = ["WallClockRule", "UnseededRandomRule", "DETERMINISM_PACKAGES"]

#: Dotted package prefixes where the determinism rules are enforced.
DETERMINISM_PACKAGES = ("repro.core", "repro.engine", "repro.sim", "repro.check")

#: Wall-clock reads whose values could leak into simulation output.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: Module-level draws on the process-global (unseeded) RNG.
_GLOBAL_RANDOM_CALLS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "getrandbits",
        "randbytes",
        "seed",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "lognormvariate",
    }
)


def _in_scope(ctx: FileContext) -> bool:
    return ctx.in_package(*DETERMINISM_PACKAGES)


@register_rule
class WallClockRule(Rule):
    id = "RPR101"
    name = "wall-clock-in-sim-path"
    severity = Severity.ERROR
    description = (
        "simulation-semantics modules must not read the wall clock "
        "(time.time/datetime.now); results must be a function of the "
        "seed alone"
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not _in_scope(ctx):
            return
        name = call_name(node)
        if name is not None and name in _WALL_CLOCK_CALLS:
            ctx.report(
                self,
                node,
                f"wall-clock read {name}() in deterministic module "
                f"{ctx.module}; derive values from the experiment seed "
                f"(repro.utils.rng) or take a timestamp parameter",
            )


@register_rule
class UnseededRandomRule(Rule):
    id = "RPR102"
    name = "unseeded-global-random"
    severity = Severity.ERROR
    description = (
        "simulation-semantics modules must not draw from the "
        "process-global random module; route randomness through "
        "repro.utils.rng.DeterministicRNG or an injected seed"
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not _in_scope(ctx):
            return
        name = call_name(node)
        if name is None:
            return
        if name.startswith("random.") and name[len("random."):] in (
            _GLOBAL_RANDOM_CALLS
        ):
            ctx.report(
                self,
                node,
                f"{name}() draws from the unseeded process-global RNG "
                f"in deterministic module {ctx.module}; use "
                f"repro.utils.rng.DeterministicRNG or random.Random(seed)",
            )
            return
        if name == "random.Random" and not node.args and not node.keywords:
            ctx.report(
                self,
                node,
                "random.Random() without a seed is wall-clock seeded; "
                "pass an explicit seed (see repro.utils.rng.derive_seed)",
            )
