"""Controller-contract rules (RPR121, RPR122).

The batched engine (PR 3) made every controller a two-implementation
class: the scalar ``process()`` path is the semantics of record, and
``process_batch``/``_process_batch_fast`` is an optimisation that must
be *observably identical*.  Two structural properties keep that true,
and both are properties of the class text — exactly what a static pass
can hold forever:

* every concrete controller implements the scalar API
  (``_handle_read``/``_handle_write``) — the oracle, the invariant
  checker, and the differential fuzzer all exercise controllers through
  it;
* any ``process_batch`` override re-states the full fallback gate
  (stamp-LRU via ``engine_fast_ok``, telemetry via ``_obs``, debug mode
  via ``_invariant_checker``) or delegates to ``super().process_batch``
  — a fast path taken with telemetry or invariant checks active changes
  observable output and skips audits silently.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.asthelpers import dotted_name
from repro.lint.engine import FileContext, Rule, register_rule
from repro.lint.finding import Severity

__all__ = ["ScalarApiRule", "FastPathGateRule"]

_BASE_CLASS = "CacheController"
_SCALAR_API = ("_handle_read", "_handle_write")
_GATE_ATTRS = ("engine_fast_ok", "_obs", "_invariant_checker")


def _direct_methods(class_node: ast.ClassDef) -> Set[str]:
    return {
        stmt.name
        for stmt in class_node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _bases(class_node: ast.ClassDef) -> Iterator[str]:
    for base in class_node.bases:
        name = dotted_name(base)
        if name is not None:
            yield name.rsplit(".", 1)[-1]


def _is_abstract(class_node: ast.ClassDef) -> bool:
    """Heuristic: ABCMeta metaclass or any abstractmethod decorator."""
    for keyword in class_node.keywords:
        if keyword.arg == "metaclass":
            return True
    for stmt in class_node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in stmt.decorator_list:
                name = dotted_name(decorator)
                if name is not None and name.rsplit(".", 1)[-1] == (
                    "abstractmethod"
                ):
                    return True
    return False


@register_rule
class ScalarApiRule(Rule):
    id = "RPR121"
    name = "controller-missing-scalar-api"
    severity = Severity.ERROR
    description = (
        "a concrete CacheController subclass must implement the scalar "
        "API (_handle_read and _handle_write); the oracle, invariant "
        "checker, and scalar fallback all run through it"
    )

    def visit_ClassDef(self, node: ast.ClassDef, ctx: FileContext) -> None:
        if _BASE_CLASS not in set(_bases(node)):
            return
        if _is_abstract(node):
            return
        methods = _direct_methods(node)
        missing = [name for name in _SCALAR_API if name not in methods]
        if missing:
            ctx.report(
                self,
                node,
                f"controller {node.name} subclasses {_BASE_CLASS} but "
                f"does not implement {', '.join(missing)}; every "
                f"concrete technique must define the scalar semantics "
                f"of record",
            )


@register_rule
class FastPathGateRule(Rule):
    id = "RPR122"
    name = "fast-path-missing-gate"
    severity = Severity.ERROR
    description = (
        "a process_batch override must gate on engine_fast_ok, _obs, "
        "and _invariant_checker (or delegate to super().process_batch) "
        "before taking a batched fast path; an ungated fast path skips "
        "telemetry and debug-mode audits silently"
    )

    def visit_ClassDef(self, node: ast.ClassDef, ctx: FileContext) -> None:
        for stmt in node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "process_batch"
            ):
                self._check_override(stmt, node, ctx)

    def _check_override(
        self,
        method: ast.FunctionDef,
        class_node: ast.ClassDef,
        ctx: FileContext,
    ) -> None:
        seen_attrs: Set[str] = set()
        delegates = False
        for inner in ast.walk(method):
            if isinstance(inner, ast.Attribute):
                if inner.attr in _GATE_ATTRS:
                    seen_attrs.add(inner.attr)
                elif inner.attr == "process_batch" and isinstance(
                    inner.value, ast.Call
                ):
                    # super().process_batch(...) — the base gate runs.
                    func = dotted_name(inner.value.func)
                    if func == "super":
                        delegates = True
        if delegates:
            return
        missing = [name for name in _GATE_ATTRS if name not in seen_attrs]
        if missing:
            ctx.report(
                self,
                method,
                f"{class_node.name}.process_batch overrides the batched "
                f"entry point without consulting {', '.join(missing)}; "
                f"re-state the scalar-fallback gate or call "
                f"super().process_batch()",
            )
