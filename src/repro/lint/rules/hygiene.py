"""Library-hygiene rules (RPR141, RPR142, RPR143).

These are the classic "plausible in a script, wrong in a library"
patterns.  ``print`` bypasses the telemetry plane and corrupts the
machine-readable stdout of CLI subcommands that pipe output;
mutable default arguments alias state across calls (deadly for
controllers that are constructed per technique per benchmark); and
``assert`` disappears under ``python -O``, so a structural check
written as an assert is a check the production configuration never
runs — :class:`repro.errors.InvariantViolation` is the always-on
spelling.
"""

from __future__ import annotations

import ast
import os

from repro.lint.engine import FileContext, Rule, register_rule
from repro.lint.finding import Severity

__all__ = ["LibraryPrintRule", "MutableDefaultRule", "LibraryAssertRule"]

#: File basenames where print() IS the job.
_PRINT_OK_BASENAMES = frozenset({"cli.py"})

#: Any path component that marks a non-library context.
_NON_LIBRARY_PARTS = frozenset(
    {"scripts", "examples", "benchmarks", "tests", "docs"}
)


def _path_parts(ctx: FileContext) -> frozenset:
    return frozenset(os.path.normpath(ctx.path).split(os.sep))


def _is_library_file(ctx: FileContext) -> bool:
    if os.path.basename(ctx.path) in _PRINT_OK_BASENAMES:
        return False
    if _NON_LIBRARY_PARTS & _path_parts(ctx):
        return False
    return not os.path.basename(ctx.path).startswith("test_")


@register_rule
class LibraryPrintRule(Rule):
    id = "RPR141"
    name = "print-in-library"
    severity = Severity.WARNING
    description = (
        "library modules must not print(); route user-facing output "
        "through the CLI layer and diagnostics through the telemetry "
        "plane (Telemetry.warn or the obs logger)"
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not _is_library_file(ctx):
            return
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(
                self,
                node,
                "print() in library code; emit through "
                "repro.obs (Telemetry.warn / logging) or return the "
                "text to the CLI layer",
            )


@register_rule
class MutableDefaultRule(Rule):
    id = "RPR142"
    name = "mutable-default-argument"
    severity = Severity.ERROR
    description = (
        "a mutable default argument is one shared object across every "
        "call; default to None (or a tuple) and build the mutable "
        "value inside the function"
    )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        self._check(node, ctx)

    def _check(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                ctx.report(
                    self,
                    default,
                    f"mutable default argument in {node.name}(); use "
                    f"None and create the container in the body, or use "
                    f"an immutable default",
                )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray")
        return False


@register_rule
class LibraryAssertRule(Rule):
    id = "RPR143"
    name = "assert-in-library"
    severity = Severity.ERROR
    description = (
        "assert statements vanish under `python -O`; structural checks "
        "in library code must raise repro.errors.InvariantViolation "
        "(asserts stay fine in tests)"
    )

    def visit_Assert(self, node: ast.Assert, ctx: FileContext) -> None:
        if not _is_library_file(ctx):
            return
        ctx.report(
            self,
            node,
            "assert in library code is compiled away under -O; raise "
            "InvariantViolation (repro.errors) so the check always runs",
        )
