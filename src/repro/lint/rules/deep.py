"""RPR2xx — the interprocedural rule family behind ``lint --deep``.

These rules do not visit AST nodes.  They consume the linked project
graph (:class:`repro.lint.callgraph.LinkResult`) built by the deep
driver and report through the same finding/suppression/baseline
pipeline as the per-node RPR1xx rules.  A deep rule sets ``deep =
True`` and implements :meth:`check_deep`; the shallow engine never
instantiates it.

| id     | check                                                        |
|--------|--------------------------------------------------------------|
| RPR201 | determinism taint reaching a fenced package transitively      |
| RPR202 | write -> os.replace with no fsync on the window between them  |
| RPR203 | attribute mutated both under and outside ``with self._lock``  |
| RPR204 | open() handle escaping unmanaged in durability paths          |
| RPR205 | degradation handler that neither re-raises nor emits          |

RPR202/204 are scoped to the durability-critical paths named in the
issue (the store, the checkpoint journal, the perf ledger, the
estimation-record cache); RPR203 to the lock-owning modules; RPR205 to
the retry -> breaker -> quarantine ladder.  RPR201 covers every
function reachable from the fenced packages and reports at the *fence
crossing* — the edge from a fenced caller into a non-fenced callee
whose effect closure is tainted — so one leak reports once, at the
boundary, with the witness chain down to the primitive.  Direct calls
inside fenced packages stay RPR101/RPR102 findings; RPR201 only adds
what per-node analysis cannot see.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Tuple

from repro.lint import effects as fx
from repro.lint.engine import Rule, register_rule

if TYPE_CHECKING:  # deferred: callgraph imports this module's package
    from repro.lint.callgraph import LinkResult
from repro.lint.finding import Severity
from repro.lint.flow import REPRO_ERROR_NAMES
from repro.lint.rules.determinism import DETERMINISM_PACKAGES

__all__ = [
    "TransitiveDeterminismRule",
    "DurabilityDisciplineRule",
    "LockSetRule",
    "UnclosedResourceRule",
    "SilentDegradationRule",
    "DURABILITY_PATHS",
    "LADDER_PATHS",
]

#: Path fragments (``/``-normalised) naming the durability-critical
#: files: a missed fsync or leaked handle here can publish torn state.
DURABILITY_PATHS = (
    "store/",
    "sim/checkpoint.py",
    "obs/perf/ledger.py",
    "power/estimator/records.py",
)

#: The retry -> breaker -> quarantine ladder, where a swallowed error
#: silently degrades campaign results.
LADDER_PATHS = (
    "sim/resilience.py",
    "sim/campaign.py",
    "sim/parallel.py",
    "store/",
)

#: Lock-owning modules in scope for RPR203.
LOCK_PATHS = (
    "sim/resilience.py",
    "store/store.py",
)

#: report(rule, path, line, col, message) — bound by the deep driver.
Reporter = Callable[[Rule, str, int, int, str], None]


def _in_scope(path: str, fragments: Tuple[str, ...]) -> bool:
    normalized = path.replace(os.sep, "/")
    return any(fragment in normalized for fragment in fragments)


@register_rule
class TransitiveDeterminismRule(Rule):
    id = "RPR201"
    name = "transitive-determinism-taint"
    severity = Severity.ERROR
    description = (
        "a function in repro.core/engine/sim/check calls outside the "
        "fence into a helper whose effect closure reaches wall-clock "
        "time or the unseeded global RNG"
    )
    deep = True

    def check_deep(self, linked: LinkResult, report: Reporter) -> None:
        for qname, info in sorted(linked.functions.items()):
            if not _is_fenced(qname):
                continue
            path = info.get("path", "<unknown>")
            seen: set = set()
            for callee, line, col in linked.edges.get(qname, ()):
                if _is_fenced(callee):
                    continue  # the crossing reports inside the callee
                closure = linked.closure.get(callee, {})
                for effect in fx.DETERMINISM_EFFECTS:
                    if effect not in closure:
                        continue
                    if fx.determinism_barrier(callee, effect):
                        continue
                    key = (callee, line, effect)
                    if key in seen:
                        continue
                    seen.add(key)
                    chain = " -> ".join(
                        fx.origin_chain(linked.closure, callee, effect)
                    )
                    report(
                        self, path, line, col,
                        (
                            f"fenced {_short(qname)} calls "
                            f"{_short(callee)} whose effect closure "
                            f"contains {effect} (via {chain})"
                        ),
                    )


def _is_fenced(qname: str) -> bool:
    return any(
        qname == pkg or qname.startswith(pkg + ".")
        for pkg in DETERMINISM_PACKAGES
    )


def _short(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qname


class _CandidateRule(Rule):
    """Base for rules whose findings are pre-computed flow candidates."""

    deep = True
    scope: Tuple[str, ...] = ()

    def check_deep(self, linked: LinkResult, report: Reporter) -> None:
        for path, summary in sorted(linked.summaries.items()):
            if self.scope and not _in_scope(path, self.scope):
                continue
            for candidate in summary.candidates:
                if candidate["rule"] != self.id:
                    continue
                if self._discharged(candidate, linked):
                    continue
                report(
                    self, path, candidate["line"], candidate["col"] + 1,
                    candidate["message"],
                )

    def _discharged(
        self, candidate: Dict[str, Any], linked: LinkResult
    ) -> bool:
        """A candidate is discharged when a callee in its window
        provides one of the wanted effects (e.g. the helper that does
        the fsync, or the delegate that re-raises)."""
        wanted: List[str] = candidate.get("discharge_effects") or []
        if not wanted:
            return False
        for kind, name in candidate.get("discharge", ()):
            target = None
            if kind == "project":
                target = linked.resolve_guess(name)
            elif kind == "self" and candidate.get("class"):
                target = linked.resolve_method(candidate["class"], name)
            if target is None:
                continue
            closure = linked.closure.get(target, {})
            for want in wanted:
                if want == "raises:*":
                    if any(
                        fx.is_raise_effect(effect)
                        and _classified_raise(effect)
                        for effect in closure
                    ):
                        return True
                elif want in closure:
                    return True
        return False


def _classified_raise(effect: str) -> bool:
    name = effect[len("raises:"):]
    return name in REPRO_ERROR_NAMES or name == "<reraise>"


@register_rule
class DurabilityDisciplineRule(_CandidateRule):
    id = "RPR202"
    name = "durability-fsync-before-replace"
    severity = Severity.ERROR
    description = (
        "a written file reaches os.replace with no os.fsync between "
        "write and rename in a durability-critical path"
    )
    scope = DURABILITY_PATHS


@register_rule
class LockSetRule(_CandidateRule):
    id = "RPR203"
    name = "lock-set-violation"
    severity = Severity.ERROR
    description = (
        "an attribute is mutated both under `with self._lock` and "
        "outside it (helpers whose every call site holds the lock are "
        "exempt)"
    )
    scope = LOCK_PATHS


@register_rule
class UnclosedResourceRule(_CandidateRule):
    id = "RPR204"
    name = "unclosed-resource"
    severity = Severity.ERROR
    description = (
        "an open() handle in a durability path escapes without "
        "with/close/ownership transfer"
    )
    scope = DURABILITY_PATHS


@register_rule
class SilentDegradationRule(_CandidateRule):
    id = "RPR205"
    name = "silent-degradation"
    severity = Severity.ERROR
    description = (
        "an except handler on the retry/breaker/quarantine ladder "
        "neither re-raises a classified error nor emits a warning.* "
        "metric"
    )
    scope = LADDER_PATHS
