"""Project-specific rule catalogue.

Importing this package registers every rule with
:data:`repro.lint.engine.RULE_TYPES`.  Rule ids are stable API:

=======  ==============================  ==========================
id       name                            module
=======  ==============================  ==========================
RPR001   syntax-error                    (engine built-in)
RPR101   wall-clock-in-sim-path          determinism
RPR102   unseeded-global-random          determinism
RPR111   raise-non-repro-error           errors_discipline
RPR112   bare-except                     errors_discipline
RPR121   controller-missing-scalar-api   controllers
RPR122   fast-path-missing-gate          controllers
RPR131   undeclared-metric-name          telemetry
RPR132   unemitted-metric-declaration    telemetry
RPR141   print-in-library                hygiene
RPR142   mutable-default-argument        hygiene
RPR143   assert-in-library               hygiene
=======  ==============================  ==========================
"""

from repro.lint.rules import controllers as controllers
from repro.lint.rules import determinism as determinism
from repro.lint.rules import errors_discipline as errors_discipline
from repro.lint.rules import hygiene as hygiene
from repro.lint.rules import telemetry as telemetry

__all__ = [
    "controllers",
    "determinism",
    "errors_discipline",
    "hygiene",
    "telemetry",
]
