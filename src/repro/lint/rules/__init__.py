"""Project-specific rule catalogue.

Importing this package registers every rule with
:data:`repro.lint.engine.RULE_TYPES`.  Rule ids are stable API:

=======  ==============================  ==========================
id       name                            module
=======  ==============================  ==========================
RPR001   syntax-error                    (engine built-in)
RPR101   wall-clock-in-sim-path          determinism
RPR102   unseeded-global-random          determinism
RPR111   raise-non-repro-error           errors_discipline
RPR112   bare-except                     errors_discipline
RPR121   controller-missing-scalar-api   controllers
RPR122   fast-path-missing-gate          controllers
RPR131   undeclared-metric-name          telemetry
RPR132   unemitted-metric-declaration    telemetry
RPR141   print-in-library                hygiene
RPR142   mutable-default-argument        hygiene
RPR143   assert-in-library               hygiene
RPR201   transitive-determinism-taint    deep (``lint --deep`` only)
RPR202   durability-fsync-before-replace deep (``lint --deep`` only)
RPR203   lock-set-violation              deep (``lint --deep`` only)
RPR204   unclosed-resource               deep (``lint --deep`` only)
RPR205   silent-degradation              deep (``lint --deep`` only)
=======  ==============================  ==========================
"""

from repro.lint.rules import controllers as controllers
from repro.lint.rules import determinism as determinism
from repro.lint.rules import errors_discipline as errors_discipline
from repro.lint.rules import hygiene as hygiene
from repro.lint.rules import telemetry as telemetry

# The deep family resolves its effect vocabulary through the modules
# above, so it registers last.
from repro.lint.rules import deep as deep  # noqa: E402

__all__ = [
    "controllers",
    "deep",
    "determinism",
    "errors_discipline",
    "hygiene",
    "telemetry",
]
