"""Error-discipline rules (RPR111, RPR112).

The CLI contract (``repro-8t ... ; echo $?``) and the campaign
quarantine logic both hinge on one hierarchy: every library failure is
a :class:`repro.errors.ReproError`, so ``except ReproError`` separates
"the experiment is wrong" from "the code is wrong" (``TypeError`` et
al. keep propagating).  A stray ``raise ValueError`` re-opens that gap
— the retry layer would *not* retry it and the CLI would traceback
instead of printing a one-line error.  ``repro.errors`` therefore
provides builtin-compatible bridges (``ValidationError`` is also a
``ValueError``; ``StateError`` is also a ``RuntimeError``;
``TypeContractError`` is also a ``TypeError``) so call sites keep their
builtin catchability while joining the hierarchy.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.asthelpers import dotted_name
from repro.lint.engine import FileContext, Rule, register_rule
from repro.lint.finding import Severity

__all__ = ["RaiseDisciplineRule", "BareExceptRule"]

#: Builtin exceptions that must not be raised directly in library code.
_FORBIDDEN_BUILTINS = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "AttributeError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OSError",
        "IOError",
        "EOFError",
        "BufferError",
        "AssertionError",
        "UnicodeError",
        "OverflowError",
        "NameError",
    }
)

#: Builtins with a legitimate structural meaning that stay allowed:
#: ``NotImplementedError`` marks interface stubs, ``StopIteration`` and
#: ``StopAsyncIteration`` end generators, ``SystemExit``/``KeyboardInterrupt``
#: are process control.  ``argparse.ArgumentTypeError`` is the argparse
#: callback contract, so its dotted form never matches a bare builtin.
_EXEMPT = frozenset(
    {
        "NotImplementedError",
        "StopIteration",
        "StopAsyncIteration",
        "SystemExit",
        "KeyboardInterrupt",
        "GeneratorExit",
    }
)


def _raised_class(node: ast.Raise) -> Optional[str]:
    """Name of the exception class being raised, when it is static.

    ``raise X(...)`` and ``raise X`` resolve to ``X``; ``raise exc``
    (a re-raise of a caught variable) and other dynamic forms return
    None, because lowercase locals are not class references we can
    judge statically.
    """
    exc = node.exc
    if exc is None:
        return None  # bare re-raise inside an except block
    if isinstance(exc, ast.Call):
        exc = exc.func
    name = dotted_name(exc)
    if name is None:
        return None
    leaf = name.rsplit(".", 1)[-1]
    # A dotted raise (argparse.ArgumentTypeError) is judged by its full
    # path only when the leaf alone is forbidden — raising
    # ``somepkg.ValueError`` would still be builtin ValueError only if
    # the receiver is the builtins module, which nobody writes; treat
    # dotted names as project exceptions unless the root is `builtins`.
    if "." in name and not name.startswith("builtins."):
        return None
    return leaf


@register_rule
class RaiseDisciplineRule(Rule):
    id = "RPR111"
    name = "raise-non-repro-error"
    severity = Severity.ERROR
    description = (
        "library raise sites must use ReproError subclasses from "
        "repro.errors (ValidationError/StateError/TypeContractError "
        "bridge the builtin hierarchies), so the CLI exit-code and "
        "campaign-quarantine contracts hold"
    )

    def visit_Raise(self, node: ast.Raise, ctx: FileContext) -> None:
        leaf = _raised_class(node)
        if leaf is None or leaf in _EXEMPT:
            return
        if leaf in _FORBIDDEN_BUILTINS:
            ctx.report(
                self,
                node,
                f"raise {leaf} in library code; use a ReproError "
                f"subclass from repro.errors (ValidationError for bad "
                f"values, StateError for wrong-state use, "
                f"TypeContractError for wrong types)",
            )


@register_rule
class BareExceptRule(Rule):
    id = "RPR112"
    name = "bare-except"
    severity = Severity.ERROR
    description = (
        "bare `except:` swallows KeyboardInterrupt/SystemExit and hides "
        "programming errors from the differential tooling; name the "
        "exceptions (usually ReproError)"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if node.type is None:
            ctx.report(
                self,
                node,
                "bare except: catches everything including "
                "KeyboardInterrupt; catch ReproError (or the narrowest "
                "builtin) instead",
            )
