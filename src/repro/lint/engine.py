"""Rule protocol, rule registry, and the single-pass AST dispatcher.

The framework parses each file once and walks its AST once.  Rules
declare interest in node types by defining ``visit_<NodeType>`` methods
(``visit_Call``, ``visit_Raise``, ...); the dispatcher builds a
node-type -> handlers table up front so the walk costs one dict lookup
per node regardless of how many rules are active.

Rules are instantiated once per run and live across all files, which is
what lets whole-project rules (the telemetry cross-reference) accumulate
state in ``visit_*`` and report from :meth:`Rule.finish_run`.
"""

from __future__ import annotations

import ast
import re
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

from repro.errors import LintConfigError
from repro.lint.finding import Finding, Severity
from repro.lint.suppressions import SuppressionIndex

__all__ = [
    "Rule",
    "RULE_TYPES",
    "register_rule",
    "FileContext",
    "RunContext",
    "lint_source",
]

_RULE_ID_PATTERN = re.compile(r"^RPR\d{3}$")

#: Every registered rule type, keyed by stable rule id.
RULE_TYPES: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set the class attributes below and implement any number
    of ``visit_<NodeType>(node, ctx)`` methods.  ``finish_run(run)`` is
    called once after every file has been visited — whole-project rules
    report deferred findings there.
    """

    #: Stable identifier (``RPRxxx``); never renumber a shipped rule.
    id: str = ""
    #: Short kebab-case name used in docs and ``--format json``.
    name: str = ""
    severity: Severity = Severity.ERROR
    #: One-line rationale shown in the rule catalogue.
    description: str = ""
    #: Other rule ids this rule reports under (a cross-reference rule
    #: owning both directions of a check); keeps --select/--ignore
    #: working for the satellite ids.
    also_provides: Tuple[str, ...] = ()
    #: Deep rules consume the linked call graph instead of visiting AST
    #: nodes; they only run under ``lint --deep`` (the deep driver calls
    #: ``check_deep``) and the shallow engine never instantiates them.
    deep: bool = False

    def start_file(self, ctx: "FileContext") -> None:
        """Hook before a file's AST walk (per-file state reset)."""

    def finish_file(self, ctx: "FileContext") -> None:
        """Hook after a file's AST walk."""

    def finish_run(self, run: "RunContext") -> None:
        """Hook after all files; deferred/cross-file reporting."""


def register_rule(rule_type: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _RULE_ID_PATTERN.match(rule_type.id):
        raise LintConfigError(
            f"rule id must match RPRxxx, got {rule_type.id!r}"
        )
    if rule_type.id in RULE_TYPES:
        raise LintConfigError(f"duplicate rule id {rule_type.id}")
    if not rule_type.name or not rule_type.description:
        raise LintConfigError(
            f"rule {rule_type.id} needs a name and a description"
        )
    RULE_TYPES[rule_type.id] = rule_type
    return rule_type


class FileContext:
    """Everything a rule may need about the file being visited."""

    def __init__(
        self,
        run: "RunContext",
        path: str,
        source: str,
        tree: ast.AST,
        module: Optional[str],
    ) -> None:
        self.run = run
        self.path = path
        self.lines = source.splitlines()
        self.tree = tree
        #: Dotted module name (``repro.sim.campaign``) when the file
        #: sits inside an ``__init__.py`` package chain, else None.
        self.module = module
        self.suppressions = SuppressionIndex.from_source(self.lines, tree)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_package(self, *prefixes: str) -> bool:
        """True when the file's module sits under any dotted prefix."""
        if self.module is None:
            return False
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        """File a finding for ``node`` unless a comment suppresses it."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        if self.suppressions.is_suppressed(rule.id, line):
            self.run.suppressed += 1
            return
        self.run.findings.append(
            Finding(
                rule_id=rule.id,
                severity=rule.severity,
                path=self.path,
                line=line,
                column=column,
                message=message,
                snippet=self.source_line(line),
            )
        )


class RunContext:
    """Mutable state for one lint invocation (all files, all rules)."""

    def __init__(self, rules: Iterable[Rule], timing: bool = False) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self.findings: List[Finding] = []
        self.suppressed = 0
        self.files_checked = 0
        self.timing = timing
        #: rule id -> cumulative seconds, populated when timing is on.
        self.rule_timings: Dict[str, float] = {}
        self._dispatch = self._build_dispatch(self.rules)

    @staticmethod
    def _build_dispatch(
        rules: Tuple[Rule, ...],
    ) -> Dict[str, List[Tuple[Rule, Callable[[ast.AST, FileContext], None]]]]:
        table: Dict[str, List[Tuple[Rule, Callable]]] = {}
        for rule in rules:
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    node_name = attr[len("visit_"):]
                    table.setdefault(node_name, []).append(
                        (rule, getattr(rule, attr))
                    )
        return table

    def check_file(
        self, path: str, source: str, module: Optional[str]
    ) -> Optional[Finding]:
        """Parse and walk one file; returns a syntax-error finding when
        the file does not parse (rules never see unparsable files)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.files_checked += 1
            finding = Finding(
                rule_id="RPR001",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 1,
                column=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
            self.findings.append(finding)
            return finding
        ctx = FileContext(self, path, source, tree, module)
        for rule in self.rules:
            rule.start_file(ctx)
        dispatch = self._dispatch
        if self.timing:
            clock = time.perf_counter
            timings = self.rule_timings
            for node in ast.walk(tree):
                handlers = dispatch.get(type(node).__name__)
                if handlers:
                    for rule, handler in handlers:
                        start = clock()
                        handler(node, ctx)
                        timings[rule.id] = (
                            timings.get(rule.id, 0.0) + clock() - start
                        )
        else:
            for node in ast.walk(tree):
                handlers = dispatch.get(type(node).__name__)
                if handlers:
                    for rule, handler in handlers:
                        handler(node, ctx)
        for rule in self.rules:
            rule.finish_file(ctx)
        self.files_checked += 1
        return None

    def finish(self) -> None:
        """Run every rule's whole-project pass and order the findings."""
        for rule in self.rules:
            if self.timing:
                start = time.perf_counter()
                rule.finish_run(self)
                self.rule_timings[rule.id] = (
                    self.rule_timings.get(rule.id, 0.0)
                    + time.perf_counter()
                    - start
                )
            else:
                rule.finish_run(self)
        self.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory source string (the unit-test entry point)."""
    if rules is None:
        rules = [rule_type() for rule_type in RULE_TYPES.values()]
    run = RunContext(rules)
    run.check_file(path, source, module)
    run.finish()
    return run.findings
