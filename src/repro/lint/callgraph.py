"""Project call-graph construction for ``repro-8t lint --deep``.

The deep tier needs to answer "which functions can this function
reach?" for a plain-Python tree without importing it.  This module
builds that graph statically, in two phases that mirror the cache
boundary:

**Summarise** (per file, cacheable) — :func:`summarize_module` walks
one AST and produces a JSON-serialisable :class:`ModuleSummary`: every
function/method with its direct effects (via :mod:`repro.lint.effects`),
its *call-target guesses* into project space (resolved through the
file's import tables, innermost scope first, including function-local
imports), its ``self.method()`` sites, the class table (bases +
methods) needed for method resolution, the module's import table (so
re-exported names can be chased), flow-rule candidates
(:mod:`repro.lint.flow`), and the statement-anchor map used for
suppression scoping.  Because a summary depends only on the file's own
bytes, it is keyed by content digest and reused verbatim on warm runs.

**Link** (whole project, cheap) — :func:`link` joins the summaries:
guesses are matched against the global function/class tables,
``self.m()`` resolves through the recorded base-class chain,
``from pkg import name`` re-exports are chased through package
``__init__`` import tables, and everything that still cannot be
resolved lands in an explicit **unresolved bucket** with a reason —
reported in the run statistics, never silently dropped.  A static
resolver cannot see through dynamic dispatch (callbacks passed as
parameters, registry lookups computed at runtime); the bucket is the
honest boundary of the analysis, and the deep rules treat it as
"effects unknown", not "no effects".

Name resolution is deliberately *syntactic*: it trusts the import
graph, not runtime monkey-patching.  That is the right trade for a
lint tier — identical input bytes give identical graphs, which is what
makes the digest cache sound.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint import effects as fx
from repro.lint import flow
from repro.lint.asthelpers import dotted_name, iter_scope_nodes
from repro.lint.suppressions import statement_anchor_map

__all__ = [
    "ModuleSummary",
    "summarize_module",
    "link",
    "LinkResult",
    "SUMMARY_VERSION",
]

#: Bump when the summary shape or inference rules change; part of the
#: cache key alongside the lint-package code version.
SUMMARY_VERSION = 1

#: Emission leaves that count as telemetry for effect purposes — the
#: helper vocabulary RPR131/RPR132 already understand plus the plain
#: receiver methods they resolve through.
_EMIT_LEAVES = frozenset(
    {"warn", "emit", "emit_degradation", "on_event", "_emit_point",
     "increment", "observe", "record"}
)

_MUTATING_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef)


class ModuleSummary:
    """Cacheable static summary of one module (see module docstring)."""

    def __init__(
        self,
        path: str,
        module: Optional[str],
        functions: Dict[str, Dict[str, Any]],
        classes: Dict[str, Dict[str, Any]],
        exports: Dict[str, str],
        unresolved: List[Dict[str, Any]],
        candidates: List[Dict[str, Any]],
        anchors: Dict[int, Tuple[int, ...]],
    ) -> None:
        self.path = path
        self.module = module
        self.functions = functions
        self.classes = classes
        self.exports = exports
        self.unresolved = unresolved
        self.candidates = candidates
        self.anchors = anchors

    # -- cache (de)serialisation -------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "path": self.path,
            "module": self.module,
            "functions": self.functions,
            "classes": self.classes,
            "exports": self.exports,
            "unresolved": self.unresolved,
            "candidates": self.candidates,
            # JSON object keys are strings; anchors are rebuilt as ints.
            "anchors": {
                str(line): list(anchor)
                for line, anchor in self.anchors.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=payload["path"],
            module=payload["module"],
            functions=payload["functions"],
            classes=payload["classes"],
            exports=payload["exports"],
            unresolved=payload["unresolved"],
            candidates=payload["candidates"],
            anchors={
                int(line): tuple(anchor)
                for line, anchor in payload["anchors"].items()
            },
        )


class _Scope:
    """One lexical scope: import aliases + names that are dynamic."""

    def __init__(self) -> None:
        self.imports: Dict[str, str] = {}
        self.dynamic: Set[str] = set()
        self.local_funcs: Dict[str, str] = {}
        self.star_import = False


class _Resolver:
    """Resolves a call expression against the live scope stack."""

    def __init__(
        self,
        module: str,
        project_packages: Sequence[str],
        module_scope: _Scope,
        module_classes: Dict[str, Dict[str, Any]],
    ) -> None:
        self.module = module
        self.project_packages = tuple(project_packages)
        self.stack: List[_Scope] = [module_scope]
        self.module_classes = module_classes

    def push(self, scope: _Scope) -> None:
        self.stack.append(scope)

    def pop(self) -> None:
        self.stack.pop()

    def _lookup(self, name: str) -> Optional[str]:
        for scope in reversed(self.stack):
            if name in scope.local_funcs:
                return scope.local_funcs[name]
            if name in scope.imports:
                return scope.imports[name]
            if name in scope.dynamic:
                return None
        return None

    def _is_dynamic(self, name: str) -> bool:
        for scope in reversed(self.stack):
            if name in scope.local_funcs or name in scope.imports:
                return False
            if name in scope.dynamic:
                return True
        return False

    def is_project(self, dotted: str) -> bool:
        top = dotted.split(".", 1)[0]
        return top in self.project_packages

    def resolve(self, func: ast.expr) -> Tuple[str, str]:
        """Classify a call's callee expression.

        Returns ``(kind, name)`` with kind one of ``project`` (dotted
        guess into the linted tree), ``self``/``cls`` (method name),
        ``external`` (resolved dotted name outside the project), or
        ``dynamic`` (display string; effects judged by leaf only).
        """
        if isinstance(func, ast.Name):
            name = func.id
            target = self._lookup(name)
            if target is not None:
                kind = "project" if self.is_project(target) else "external"
                return (kind, target)
            if name in self.module_classes:
                return ("project", f"{self.module}.{name}")
            if self._is_dynamic(name):
                return ("dynamic", name)
            if any(scope.star_import for scope in self.stack):
                return ("dynamic", name)
            # Unshadowed bare name: a builtin (open, sorted, ...).
            return ("external", name)
        chain = dotted_name(func)
        if chain is None:
            return ("dynamic", _display(func))
        root, _, rest = chain.partition(".")
        if root == "self" or root == "cls":
            if rest and "." not in rest:
                return (root, rest)
            return ("dynamic", chain)
        target = self._lookup(root)
        if target is not None:
            resolved = f"{target}.{rest}" if rest else target
            kind = "project" if self.is_project(resolved) else "external"
            return (kind, resolved)
        if root in self.module_classes and rest:
            # Call on a module-local class object (classmethod/static).
            return ("project", f"{self.module}.{chain}")
        if self._is_dynamic(root):
            return ("dynamic", chain)
        return ("external", chain)


def _display(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        return f"<expr>.{func.attr}"
    return type(func).__name__


# -- import handling --------------------------------------------------------


def _absolute_base(
    module: str, level: int, is_package: bool
) -> Optional[str]:
    """Resolve the base package for a relative import."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    if drop:
        parts = parts[:-drop]
    return ".".join(parts)


def _record_import(
    node: ast.stmt, scope: _Scope, module: str, is_package: bool
) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            scope.imports[bound] = target
    elif isinstance(node, ast.ImportFrom):
        if node.level:
            base = _absolute_base(module, node.level, is_package)
            if base is None:
                return
            source = f"{base}.{node.module}" if node.module else base
        else:
            source = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                scope.star_import = True
                continue
            bound = alias.asname or alias.name
            scope.imports[bound] = (
                f"{source}.{alias.name}" if source else alias.name
            )


# -- per-function analysis --------------------------------------------------


def _collect_locals(
    func: ast.AST, scope: _Scope, module: str, is_package: bool
) -> List[ast.AST]:
    """First pass over a function body: bind imports, nested defs, and
    every stored name as scope entries; returns the nested defs."""
    nested: List[ast.AST] = []
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            scope.dynamic.add(arg.arg)
    for node in iter_scope_nodes(func):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            _record_import(node, scope, module, is_package)
        elif isinstance(node, _MUTATING_SCOPES):
            nested.append(node)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            scope.dynamic.add(node.id)
    return nested


def _analyze_function(
    func: ast.AST,
    qname: str,
    resolver: _Resolver,
    summary_functions: Dict[str, Dict[str, Any]],
    unresolved: List[Dict[str, Any]],
    class_qname: Optional[str],
    module: str,
    is_package: bool,
) -> None:
    scope = _Scope()
    nested = _collect_locals(func, scope, module, is_package)
    for child in nested:
        scope.local_funcs[child.name] = f"{qname}.{child.name}"
    resolver.push(scope)

    info: Dict[str, Any] = {
        "line": getattr(func, "lineno", 1),
        "class": class_qname,
        "project_calls": [],
        "self_calls": [],
        "effects": {},
    }

    def add_effect(effect: str, display: str, line: int) -> None:
        info["effects"].setdefault(effect, ["direct", display, line])

    for node in iter_scope_nodes(func):
        if isinstance(node, ast.Call):
            kind, name = resolver.resolve(node.func)
            line = node.lineno
            col = node.col_offset
            if kind == "project":
                info["project_calls"].append([name, line, col])
            elif kind in ("self", "cls"):
                info["self_calls"].append([name, line, col])
                if name in _EMIT_LEAVES:
                    add_effect(fx.TELEMETRY_EMIT, f"self.{name}", line)
            elif kind == "external":
                for effect in fx.classify_external_call(name, node):
                    add_effect(effect, name, line)
                leaf = name.rsplit(".", 1)[-1]
                if "." in name and leaf in _EMIT_LEAVES:
                    add_effect(fx.TELEMETRY_EMIT, name, line)
                if leaf == "acquire":
                    add_effect(fx.LOCK_ACQUIRE, name, line)
            else:  # dynamic
                unresolved.append(
                    {
                        "function": qname,
                        "line": line,
                        "display": name,
                        "reason": "dynamic-callee",
                    }
                )
                leaf = name.rsplit(".", 1)[-1]
                for effect in fx.classify_external_call(name, node):
                    add_effect(effect, name, line)
                if leaf in _EMIT_LEAVES and "." in name:
                    add_effect(fx.TELEMETRY_EMIT, name, line)
                if leaf == "acquire":
                    add_effect(fx.LOCK_ACQUIRE, name, line)
        elif isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
            for item in node.items:
                chain = dotted_name(item.context_expr)
                if chain is None and isinstance(item.context_expr, ast.Call):
                    chain = dotted_name(item.context_expr.func)
                if chain and chain.rsplit(".", 1)[-1].endswith("lock"):
                    add_effect(fx.LOCK_ACQUIRE, chain, node.lineno)
        elif isinstance(node, ast.Raise):
            cls_name = _raised_class(node)
            if cls_name is not None:
                add_effect(
                    fx.raise_effect(cls_name), f"raise {cls_name}", node.lineno
                )
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            # A nested function's name escaping as a value (callback):
            # record a call edge so its effects still propagate.
            target = scope.local_funcs.get(node.id)
            if target is not None:
                info["project_calls"].append([target, node.lineno, node.col_offset])

    summary_functions[qname] = info
    # Nested defs analyse with the enclosing scopes still pushed.
    for child in nested:
        _analyze_function(
            child,
            f"{qname}.{child.name}",
            resolver,
            summary_functions,
            unresolved,
            class_qname,
            module,
            is_package,
        )
    resolver.pop()


def _raised_class(node: ast.Raise) -> Optional[str]:
    if node.exc is None:
        return "<reraise>"
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    chain = dotted_name(exc)
    if chain is None:
        return None
    return chain.rsplit(".", 1)[-1]


# -- module summarisation ---------------------------------------------------


def summarize_module(
    path: str,
    source: str,
    module: Optional[str],
    tree: ast.Module,
    project_packages: Sequence[str] = ("repro",),
) -> ModuleSummary:
    """Build the cacheable static summary for one parsed module."""
    mod_name = module or path
    is_package = path.endswith("__init__.py")
    module_scope = _Scope()
    classes: Dict[str, Dict[str, Any]] = {}
    unresolved: List[Dict[str, Any]] = []
    functions: Dict[str, Dict[str, Any]] = {}

    # Pass 1 — module-level names (defs may be referenced before their
    # definition line, so bind everything first).
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            _record_import(node, module_scope, mod_name, is_package)
        elif isinstance(node, _MUTATING_SCOPES):
            module_scope.local_funcs[node.name] = f"{mod_name}.{node.name}"
        elif isinstance(node, ast.ClassDef):
            classes[f"{mod_name}.{node.name}"] = {"name": node.name}
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            for target in ast.walk(node):
                if isinstance(target, ast.Name) and isinstance(
                    target.ctx, ast.Store
                ):
                    module_scope.dynamic.add(target.id)

    resolver = _Resolver(
        mod_name, project_packages, module_scope,
        {name.rsplit(".", 1)[-1]: info for name, info in classes.items()},
    )

    # Pass 2 — class tables (bases resolved through the import table).
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        class_qname = f"{mod_name}.{node.name}"
        bases: List[str] = []
        for base in node.bases:
            kind, name = resolver.resolve(base)
            if kind == "project":
                bases.append(name)
            elif kind == "external":
                bases.append(f"<external>{name}")
            else:
                bases.append(f"<dynamic>{name}")
        methods = {
            child.name: f"{class_qname}.{child.name}"
            for child in node.body
            if isinstance(child, _MUTATING_SCOPES)
        }
        classes[class_qname].update(
            {"bases": bases, "methods": methods, "line": node.lineno}
        )

    # Pass 3 — function bodies.
    for node in tree.body:
        if isinstance(node, _MUTATING_SCOPES):
            _analyze_function(
                node, f"{mod_name}.{node.name}", resolver,
                functions, unresolved, None, mod_name, is_package,
            )
        elif isinstance(node, ast.ClassDef):
            class_qname = f"{mod_name}.{node.name}"
            for child in node.body:
                if isinstance(child, _MUTATING_SCOPES):
                    _analyze_function(
                        child, f"{class_qname}.{child.name}", resolver,
                        functions, unresolved, class_qname, mod_name,
                        is_package,
                    )

    # Pass 4 — the module body itself is import-time code; give it a
    # pseudo-function so import-time effects propagate to importers of
    # record (the fence packages must not pay wall clock at import).
    body_stmts = [
        stmt
        for stmt in tree.body
        if not isinstance(stmt, _MUTATING_SCOPES + (ast.ClassDef,))
    ]
    if body_stmts:
        pseudo = ast.Module(body=body_stmts, type_ignores=[])
        _analyze_function(
            pseudo, f"{mod_name}.<module>", resolver,
            functions, unresolved, None, mod_name, is_package,
        )
        functions[f"{mod_name}.<module>"]["line"] = body_stmts[0].lineno

    candidates = flow.collect_candidates(tree, resolver.resolve, mod_name)
    anchors = statement_anchor_map(tree)
    return ModuleSummary(
        path=path,
        module=module,
        functions=functions,
        classes=classes,
        exports=dict(module_scope.imports),
        unresolved=unresolved,
        candidates=candidates,
        anchors=anchors,
    )


# -- linking ----------------------------------------------------------------


class LinkResult:
    """The joined project graph the deep rules consume."""

    def __init__(
        self,
        functions: Dict[str, Dict[str, Any]],
        summaries: Dict[str, ModuleSummary],
        edges: Dict[str, List[Tuple[str, int, int]]],
        closure: Dict[str, Dict[str, Any]],
        unresolved: List[Dict[str, Any]],
        classes: Dict[str, Dict[str, Any]],
        modules: Dict[str, ModuleSummary],
    ) -> None:
        self.functions = functions
        self.summaries = summaries
        self.edges = edges
        self.closure = closure
        self.unresolved = unresolved
        self._classes = classes
        self._modules = modules

    @property
    def edge_count(self) -> int:
        return sum(len(v) for v in self.edges.values())

    def resolve_guess(self, guess: str) -> Optional[str]:
        """Late resolution of a dotted project guess (rule discharges)."""
        _matched, target = _link_guess(
            guess, self.functions, self._classes, self._modules
        )
        return target

    def resolve_method(self, class_qname: str, method: str) -> Optional[str]:
        return _resolve_method(class_qname, method, self._classes, self._modules)


def _chase_reexport(
    guess: str,
    functions: Dict[str, Dict[str, Any]],
    classes: Dict[str, Dict[str, Any]],
    modules: Dict[str, ModuleSummary],
) -> Optional[str]:
    """Follow ``from x import name`` chains through package __init__
    import tables: ``repro.obs.Telemetry`` -> ``repro.obs.telemetry.
    Telemetry``.  Bounded to keep import cycles finite."""
    current = guess
    for _ in range(8):
        if current in functions or current in classes:
            return current
        holder, _, leaf = current.rpartition(".")
        summary = modules.get(holder)
        if summary is None or leaf not in summary.exports:
            return None
        current = summary.exports[leaf]
    return None


def _resolve_method(
    class_qname: str,
    method: str,
    classes: Dict[str, Dict[str, Any]],
    modules: Dict[str, ModuleSummary],
    depth: int = 0,
) -> Optional[str]:
    """Walk the recorded base chain looking for ``method``."""
    if depth > 8:
        return None
    info = classes.get(class_qname)
    if info is None:
        return None
    methods = info.get("methods", {})
    if method in methods:
        return methods[method]
    for base in info.get("bases", ()):
        if base.startswith("<"):
            continue
        resolved_base = base
        if resolved_base not in classes:
            chased = _chase_reexport(base, {}, classes, modules)
            if chased is None:
                continue
            resolved_base = chased
        found = _resolve_method(
            resolved_base, method, classes, modules, depth + 1
        )
        if found is not None:
            return found
    return None


def link(summaries: Sequence[ModuleSummary]) -> LinkResult:
    """Join per-module summaries into the project graph + effect closure."""
    modules: Dict[str, ModuleSummary] = {}
    functions: Dict[str, Dict[str, Any]] = {}
    classes: Dict[str, Dict[str, Any]] = {}
    unresolved: List[Dict[str, Any]] = []
    for summary in summaries:
        if summary.module is not None:
            modules[summary.module] = summary
        for qname, info in summary.functions.items():
            functions[qname] = dict(info, path=summary.path)
        for cname, cinfo in summary.classes.items():
            classes[cname] = cinfo
        unresolved.extend(summary.unresolved)

    edges: Dict[str, List[Tuple[str, int, int]]] = {}
    direct: Dict[str, Dict[str, Any]] = {}

    for qname, info in functions.items():
        out: List[Tuple[str, int, int]] = []
        for guess, line, col in info.get("project_calls", ()):
            matched, target = _link_guess(guess, functions, classes, modules)
            if target is not None:
                out.append((target, line, col))
            elif not matched:
                unresolved.append(
                    {
                        "function": qname,
                        "line": line,
                        "display": guess,
                        "reason": "unmatched-project-name",
                    }
                )
        class_qname = info.get("class")
        for method, line, col in info.get("self_calls", ()):
            target = None
            if class_qname is not None:
                target = _resolve_method(class_qname, method, classes, modules)
            if target is not None:
                out.append((target, line, col))
            else:
                unresolved.append(
                    {
                        "function": qname,
                        "line": line,
                        "display": f"self.{method}",
                        "reason": "unresolved-method",
                    }
                )
        if out:
            edges[qname] = out
        effects = info.get("effects", {})
        if effects:
            direct[qname] = {
                effect: tuple(origin) for effect, origin in effects.items()
            }

    closure = fx.propagate(direct, edges, barrier=fx.determinism_barrier)
    return LinkResult(
        functions=functions,
        summaries={s.path: s for s in summaries},
        edges=edges,
        closure=closure,
        unresolved=unresolved,
        classes=classes,
        modules=modules,
    )


def _link_guess(
    guess: str,
    functions: Dict[str, Dict[str, Any]],
    classes: Dict[str, Dict[str, Any]],
    modules: Dict[str, ModuleSummary],
) -> Tuple[bool, Optional[str]]:
    """Returns ``(matched, edge_target)``; matched-without-target means
    the name resolved to something with no body to analyse (a class
    whose init is synthesised), which is not an unresolved site."""
    resolved = guess if guess in functions or guess in classes else None
    if resolved is None:
        resolved = _chase_reexport(guess, functions, classes, modules)
    if resolved is None:
        return (False, None)
    if resolved in classes:
        # Constructing the class runs __init__ when it has one; a
        # default/dataclass init carries no effects worth tracking.
        return (True, _resolve_method(resolved, "__init__", classes, modules))
    return (True, resolved)
