"""Finding and severity types for the ``repro-8t lint`` framework.

A :class:`Finding` is one rule violation anchored to a source location.
Findings are value objects: the runner produces them, the baseline and
suppression layers filter them, and the CLI renders them.  The
``fingerprint`` (rule id + relative path + stripped source line) is
deliberately line-number-agnostic so a baseline survives unrelated
edits above the flagged line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are correctness or contract violations (wrong
    numbers, silently skipped fast-path gates); ``WARNING`` findings
    are hygiene problems (prints, asserts, mutable defaults).  Both
    fail the build — the split only affects presentation and lets a
    future ``--severity`` filter exist without renumbering rules.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    snippet: str

    def fingerprint(self) -> Dict[str, str]:
        """Baseline identity: stable across pure line-number shifts."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        """The canonical one-line text format."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible payload for ``--format json`` output."""
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
        }
