"""``# repro-lint: disable=RPRxxx`` suppression comments.

A suppression comment silences the named rules **on its own physical
line** — the idiom is an end-of-line annotation on the flagged
statement::

    value = eval(payload)  # repro-lint: disable=RPR141

``disable=all`` silences every rule on the line.  Multiple ids are
comma-separated.  Suppressions are deliberately line-scoped (no block
or file scope): a violation either gets fixed, gets a visible per-line
waiver, or goes in the baseline file — nothing disappears wholesale.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Sequence

__all__ = ["SuppressionIndex", "SUPPRESSION_PATTERN"]

SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)"
)


class SuppressionIndex:
    """Per-file map of line number -> suppressed rule ids."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]]) -> None:
        self._by_line = by_line

    @classmethod
    def from_lines(cls, lines: Sequence[str]) -> "SuppressionIndex":
        by_line: Dict[int, FrozenSet[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            if "repro-lint" not in text:
                continue
            match = SUPPRESSION_PATTERN.search(text)
            if match is None:
                continue
            ids = frozenset(
                token.strip().upper()
                for token in match.group(1).split(",")
                if token.strip()
            )
            if ids:
                by_line[lineno] = ids
        return cls(by_line)

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        ids = self._by_line.get(lineno)
        if ids is None:
            return False
        return "ALL" in ids or rule_id.upper() in ids

    def __len__(self) -> int:
        return len(self._by_line)
