"""``# repro-lint: disable=RPRxxx`` suppression comments.

A suppression comment silences the named rules **on its own physical
line** — the idiom is an end-of-line annotation on the flagged
statement::

    value = eval(payload)  # repro-lint: disable=RPR141

For a statement spanning several physical lines, a comment on its
**first physical line** (or, for a decorated ``def``, the header line)
covers findings anywhere inside the statement::

    handle.write(payload)  # repro-lint: disable=RPR204
    os.replace(  # repro-lint: disable=RPR202
        tmp_path,
        final_path,
    )

The mapping is *statement*-scoped, innermost statement wins: a comment
on an ``if``/``with``/``def`` line covers only the header expression
lines, never the block body.  ``disable=all`` silences every rule on
the line.  Multiple ids are comma-separated.  Suppressions are
deliberately line/statement-scoped (no block or file scope): a
violation either gets fixed, gets a visible per-line waiver, or goes
in the baseline file — nothing disappears wholesale.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

__all__ = ["SuppressionIndex", "SUPPRESSION_PATTERN", "statement_anchor_map"]

SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)"
)


def statement_anchor_map(tree: ast.AST) -> Dict[int, Tuple[int, ...]]:
    """Map each line of a multi-line statement to its anchor lines.

    The anchors are the lines where a suppression comment also covers
    the mapped line: the statement's first physical line (the first
    decorator for decorated defs) and, when different, the header line
    (the ``def``/``class`` keyword line).  Compound statements map only
    their *header* lines — body lines belong to the inner statements,
    which :func:`ast.walk` visits afterwards so the innermost mapping
    wins.  Single-line statements are omitted (their anchor is
    themselves).
    """
    anchors: Dict[int, Tuple[int, ...]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, (ast.stmt, ast.ExceptHandler)):
            continue
        header = node.lineno
        first = header
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            first = min(first, decorators[0].lineno)
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and hasattr(body[0], "lineno"):
            # Compound statement: the header runs up to the first body
            # statement (same-line bodies leave no extra header lines).
            end = max(first, body[0].lineno - 1)
        else:
            end = getattr(node, "end_lineno", None) or first
        if end <= first and header == first:
            continue
        anchor = (first,) if header == first else (first, header)
        for line in range(first, end + 1):
            anchors[line] = anchor
    return anchors


class SuppressionIndex:
    """Per-file map of line number -> suppressed rule ids."""

    def __init__(
        self,
        by_line: Dict[int, FrozenSet[str]],
        anchors: Optional[Mapping[int, Tuple[int, ...]]] = None,
    ) -> None:
        self._by_line = by_line
        self._anchors: Mapping[int, Tuple[int, ...]] = anchors or {}

    @classmethod
    def from_lines(
        cls,
        lines: Sequence[str],
        anchors: Optional[Mapping[int, Tuple[int, ...]]] = None,
    ) -> "SuppressionIndex":
        by_line: Dict[int, FrozenSet[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            if "repro-lint" not in text:
                continue
            match = SUPPRESSION_PATTERN.search(text)
            if match is None:
                continue
            ids = frozenset(
                token.strip().upper()
                for token in match.group(1).split(",")
                if token.strip()
            )
            if ids:
                by_line[lineno] = ids
        return cls(by_line, anchors)

    @classmethod
    def from_source(
        cls, lines: Sequence[str], tree: ast.AST
    ) -> "SuppressionIndex":
        """Build with multi-line statement anchors derived from the AST."""
        return cls.from_lines(lines, statement_anchor_map(tree))

    def _match(self, rule_id: str, lineno: int) -> bool:
        ids = self._by_line.get(lineno)
        if ids is None:
            return False
        return "ALL" in ids or rule_id.upper() in ids

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        if self._match(rule_id, lineno):
            return True
        for anchor in self._anchors.get(lineno, ()):
            if self._match(rule_id, anchor):
                return True
        return False

    def __len__(self) -> int:
        return len(self._by_line)
