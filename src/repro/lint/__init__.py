"""``repro.lint`` — project-aware static analysis (``repro-8t lint``).

An AST-based, single-pass rule engine with stable ``RPRxxx`` rule ids,
``# repro-lint: disable=RPRxxx`` line suppressions, and a JSON baseline
for incremental adoption.  The rules encode this repo's contracts —
determinism of the sim path, the ReproError hierarchy, the batched
fast-path gate, the declared metric-name set, and library hygiene — so
whole classes of plausible-but-wrong reproduction bugs fail the build
before any trace runs.

A second, *interprocedural* tier runs under ``repro-8t lint --deep``:
:mod:`repro.lint.callgraph` builds the project call graph,
:mod:`repro.lint.effects` infers per-function effect closures, and the
RPR2xx rules (:mod:`repro.lint.rules.deep`) check transitive
determinism taint, fsync-before-replace durability, lock-set
discipline, resource escapes, and silent degradation — with per-file
summaries cached by content digest so warm runs re-analyse only what
changed.  See ``docs/static-analysis.md`` for the rule catalogue and
workflow.

Public API::

    from repro.lint import run_lint, lint_source

    report = run_lint(["src/repro"])           # whole tree
    report = run_lint(["src/repro"], deep=True)  # + RPR2xx tier
    findings = lint_source(snippet, module="repro.sim.x")   # one blob
"""

from repro.lint.baseline import Baseline
from repro.lint.callgraph import LinkResult, ModuleSummary, link, summarize_module
from repro.lint.deep import DeepStats, run_deep
from repro.lint.engine import RULE_TYPES, Rule, lint_source, register_rule
from repro.lint.finding import Finding, Severity
from repro.lint.runner import LintReport, discover_files, module_name_for, run_lint

__all__ = [
    "Baseline",
    "DeepStats",
    "Finding",
    "LinkResult",
    "LintReport",
    "ModuleSummary",
    "RULE_TYPES",
    "Rule",
    "Severity",
    "discover_files",
    "link",
    "lint_source",
    "module_name_for",
    "register_rule",
    "run_deep",
    "run_lint",
    "summarize_module",
]
