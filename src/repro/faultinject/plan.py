"""Fault plans and the environment hook that delivers them.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec` rules.  Each rule
names an injection *site* (today: ``"worker"``, consulted once per
benchmark attempt inside the campaign worker), an optional benchmark
filter, and the attempt range it fires on — so a *transient* fault can
fail attempt 1 and let the retry succeed, while a *permanent* crash
uses a large ``until_attempt`` to defeat every retry.

Plans travel through the ``REPRO_FAULTS`` environment variable as JSON
(campaign workers are separate processes; the environment is the one
channel that reaches them regardless of start method), e.g.::

    REPRO_FAULTS='[{"kind": "transient", "benchmark": "mcf"}]'

Fault kinds:

``transient``
    Raise :class:`InjectedFaultError` (a retryable
    :class:`SimulationError`).
``crash``
    ``os._exit(exit_code)`` — the hard-death shape of SIGKILL/OOM; no
    exception crosses the process boundary.
``hang``
    Sleep ``seconds`` (default: effectively forever) so the worker
    timeout has something to kill.
``freeze``
    ``SIGSTOP`` the current process — a *frozen* worker (stopped, not
    computing), the failure shape worker heartbeats detect long before
    the wall-clock budget expires.  Note SIGTERM stays pending on a
    stopped process; the supervisor's SIGKILL escalation is what
    actually reaps it.
``delay``
    Sleep ``seconds`` then continue normally — for scheduling-
    determinism tests that need one benchmark to finish last.

Everything is deterministic: a rule either fires on a given
(site, benchmark, attempt) or it does not; there is no probabilistic
mode, because flaky tests are exactly what this package exists to
prevent.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError

__all__ = [
    "ENV_VAR",
    "KINDS",
    "InjectedFaultError",
    "FaultSpec",
    "FaultPlan",
    "active_plan",
    "maybe_inject",
    "inject",
]

ENV_VAR = "REPRO_FAULTS"
KINDS = ("transient", "crash", "hang", "freeze", "delay")

#: Default hang long enough that any sane worker timeout fires first.
_HANG_FOREVER_S = 3600.0


class InjectedFaultError(SimulationError):
    """A transient fault raised on purpose by the injection harness."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    Attributes:
        kind: one of :data:`KINDS`.
        benchmark: only fire for this benchmark (None = all).
        site: injection point; campaign workers consult ``"worker"``.
        until_attempt: fire while ``attempt <= until_attempt``.  The
            default 1 makes transient faults heal on the first retry;
            a large value makes the fault permanent.
        seconds: sleep duration for ``hang``/``delay``.
        exit_code: process exit code for ``crash``.
    """

    kind: str
    benchmark: Optional[str] = None
    site: str = "worker"
    until_attempt: int = 1
    seconds: float = _HANG_FOREVER_S
    exit_code: int = 23

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {list(KINDS)}"
            )
        if self.until_attempt < 1:
            raise ConfigurationError(
                f"until_attempt must be >= 1, got {self.until_attempt}"
            )
        if self.seconds < 0:
            raise ConfigurationError(
                f"seconds must be non-negative, got {self.seconds}"
            )

    def matches(self, site: str, benchmark: Optional[str], attempt: int) -> bool:
        if self.site != site:
            return False
        if self.benchmark is not None and self.benchmark != benchmark:
            return False
        return attempt <= self.until_attempt

    def fire(self, benchmark: Optional[str], attempt: int) -> None:
        """Perform the fault.  May not return (crash/hang)."""
        if self.kind == "crash":
            os._exit(self.exit_code)
        if self.kind == "freeze":
            import signal

            os.kill(os.getpid(), signal.SIGSTOP)
            return
        if self.kind == "hang":
            time.sleep(self.seconds)
            return
        if self.kind == "delay":
            time.sleep(self.seconds)
            return
        raise InjectedFaultError(
            f"injected transient fault (benchmark={benchmark}, "
            f"attempt={attempt})"
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of injection rules."""

    specs: Tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def to_json(self) -> str:
        return json.dumps([asdict(spec) for spec in self.specs])

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{ENV_VAR} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(raw, list):
            raise ConfigurationError(
                f"{ENV_VAR} must be a JSON list of fault specs"
            )
        specs = []
        for entry in raw:
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"{ENV_VAR}: each fault spec must be an object, "
                    f"got {entry!r}"
                )
            try:
                specs.append(FaultSpec(**entry))
            except TypeError as exc:
                raise ConfigurationError(
                    f"{ENV_VAR}: bad fault spec {entry!r}: {exc}"
                ) from exc
        return cls(specs=tuple(specs))

    def fire_matching(
        self, site: str, benchmark: Optional[str], attempt: int
    ) -> None:
        for spec in self.specs:
            if spec.matches(site, benchmark, attempt):
                spec.fire(benchmark, attempt)


# The parse result is cached against the raw env string: the worker
# hot path then costs one os.environ lookup + one string compare.
_cache_text: Optional[str] = None
_cache_plan: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan installed via ``REPRO_FAULTS`` (None when absent)."""
    global _cache_text, _cache_plan
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    if text != _cache_text:
        _cache_plan = FaultPlan.parse(text)
        _cache_text = text
    return _cache_plan


def maybe_inject(
    site: str, benchmark: Optional[str] = None, attempt: int = 1
) -> None:
    """Injection call site: fires any matching rule, else no-op."""
    plan = active_plan()
    if plan is not None:
        plan.fire_matching(site, benchmark, attempt)


@contextmanager
def inject(*specs: FaultSpec) -> Iterator[FaultPlan]:
    """Install a plan for a ``with`` block (restores ``REPRO_FAULTS``).

    The environment variable — not process memory — carries the plan,
    so campaign workers forked/spawned inside the block inherit it.
    """
    plan = FaultPlan(specs=tuple(specs))
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = plan.to_json()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
