"""Deterministic fault injection for the simulation stack.

The point of a fault-tolerance layer is unprovable without faults to
tolerate, so this package provides seedable, deterministic injectors
that the integration tests (and brave operators) aim at the campaign
runners:

``plan``
    :class:`FaultSpec`/:class:`FaultPlan` — *what* to inject and
    *where* — plus the ``REPRO_FAULTS`` environment hook that carries
    a plan across process boundaries into campaign workers, and the
    :func:`maybe_inject` call sites consult.

``corrupt``
    Byte-level file corruption helpers (truncation, bit flips) for
    exercising the trace-format and checkpoint integrity checks, plus
    result-store entry corruptors (torn entry, bad CRC, version skew)
    for the store's self-healing reads.

Injection is a no-op unless a plan is explicitly installed; the hook
in the worker hot path is one environment-variable lookup against a
cached value.
"""

from repro.faultinject.corrupt import (
    corrupt_entry_crc,
    flip_bit,
    skew_entry_code,
    tear_entry,
    truncate_file,
)
from repro.faultinject.plan import (
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    active_plan,
    inject,
    maybe_inject,
)

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "active_plan",
    "inject",
    "maybe_inject",
    "flip_bit",
    "truncate_file",
    "tear_entry",
    "corrupt_entry_crc",
    "skew_entry_code",
]
