"""Deterministic byte-level file corruption.

Used by the integrity tests to prove that a truncated or bit-flipped
trace/checkpoint file is *detected* (``TraceFormatError`` naming the
byte offset, checkpoint records skipped) rather than silently parsed
into garbage.  Corruption is in-place and exact — no randomness, so a
failing test reproduces byte-for-byte.

The ``*_entry`` helpers target result-store entries specifically, one
per damage class the store's validated reads must classify and
quarantine: :func:`tear_entry` (truncation mid-document → ``torn``),
:func:`corrupt_entry_crc` (payload edited under an intact header →
``crc``), and :func:`skew_entry_code` (recorded code version rewritten
→ ``skew``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import ValidationError

__all__ = [
    "truncate_file",
    "flip_bit",
    "tear_entry",
    "corrupt_entry_crc",
    "skew_entry_code",
]

PathLike = Union[str, Path]


def truncate_file(path: PathLike, keep_bytes: int) -> int:
    """Cut ``path`` down to its first ``keep_bytes`` bytes.

    Returns the number of bytes removed.  ``keep_bytes`` past the end
    of the file is a no-op (returns 0).
    """
    if keep_bytes < 0:
        raise ValidationError(f"keep_bytes must be non-negative, got {keep_bytes}")
    path = Path(path)
    size = path.stat().st_size
    if keep_bytes >= size:
        return 0
    with open(path, "rb+") as handle:
        handle.truncate(keep_bytes)
    return size - keep_bytes


def flip_bit(path: PathLike, byte_offset: int, bit: int = 0) -> int:
    """Flip one bit in place; returns the new byte value.

    ``byte_offset`` may be negative to index from the end of the file
    (``-1`` = last byte).
    """
    if not 0 <= bit <= 7:
        raise ValidationError(f"bit must be in [0, 7], got {bit}")
    path = Path(path)
    size = path.stat().st_size
    if byte_offset < 0:
        byte_offset += size
    if not 0 <= byte_offset < size:
        raise ValidationError(
            f"byte_offset {byte_offset} outside file of {size} bytes"
        )
    with open(path, "rb+") as handle:
        handle.seek(byte_offset)
        original = handle.read(1)[0]
        flipped = original ^ (1 << bit)
        handle.seek(byte_offset)
        handle.write(bytes([flipped]))
    return flipped


# -- result-store entry corruptors ------------------------------------------


def tear_entry(path: PathLike, fraction: float = 0.5) -> int:
    """Tear a store entry: keep only the leading ``fraction`` of it.

    Models a write interrupted mid-flight (power loss after a partial
    flush).  The remainder is no longer valid JSON, so a validated
    read classifies it ``torn``.  Returns bytes removed.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValidationError(f"fraction must be in [0, 1), got {fraction}")
    size = Path(path).stat().st_size
    return truncate_file(path, int(size * fraction))


def _load_entry(path: Path) -> dict:
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(
            f"{path} is not a readable JSON store entry: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ValidationError(f"{path} is not a JSON-object store entry")
    return document


def corrupt_entry_crc(path: PathLike, field: str = "") -> str:
    """Silently edit a store entry's payload under its intact CRC.

    Models media bit rot that escaped the filesystem: the document
    still parses and the header still matches, but the payload no
    longer checksums — the ``crc`` damage class.  Edits ``field``
    (default: the first payload key) and returns its name.
    """
    path = Path(path)
    document = _load_entry(path)
    payload = document.get("payload")
    if not isinstance(payload, dict) or not payload:
        raise ValidationError(f"{path} has no payload to corrupt")
    target = field or sorted(payload)[0]
    if target not in payload:
        raise ValidationError(f"{path}: payload has no field {target!r}")
    value = payload[target]
    payload[target] = (
        value + 1 if isinstance(value, int) and not isinstance(value, bool)
        else f"corrupted:{value}"
    )
    path.write_text(json.dumps(document, sort_keys=True) + "\n")
    return target


def skew_entry_code(path: PathLike, code: str = "0000dead0000beef") -> str:
    """Rewrite the code version a store entry claims it was built by.

    Models version skew — an entry smuggled across a code upgrade (or
    a hand-edited header).  The key no longer matches the meta digest,
    so a validated read classifies it ``skew``.  Returns the previous
    recorded version.
    """
    path = Path(path)
    document = _load_entry(path)
    meta = document.get("meta")
    if not isinstance(meta, dict):
        raise ValidationError(f"{path} has no meta header to skew")
    previous = str(meta.get("code", ""))
    meta["code"] = code
    path.write_text(json.dumps(document, sort_keys=True) + "\n")
    return previous
