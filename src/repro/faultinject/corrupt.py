"""Deterministic byte-level file corruption.

Used by the integrity tests to prove that a truncated or bit-flipped
trace/checkpoint file is *detected* (``TraceFormatError`` naming the
byte offset, checkpoint records skipped) rather than silently parsed
into garbage.  Corruption is in-place and exact — no randomness, so a
failing test reproduces byte-for-byte.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union
from repro.errors import ValidationError

__all__ = ["truncate_file", "flip_bit"]

PathLike = Union[str, Path]


def truncate_file(path: PathLike, keep_bytes: int) -> int:
    """Cut ``path`` down to its first ``keep_bytes`` bytes.

    Returns the number of bytes removed.  ``keep_bytes`` past the end
    of the file is a no-op (returns 0).
    """
    if keep_bytes < 0:
        raise ValidationError(f"keep_bytes must be non-negative, got {keep_bytes}")
    path = Path(path)
    size = path.stat().st_size
    if keep_bytes >= size:
        return 0
    with open(path, "rb+") as handle:
        handle.truncate(keep_bytes)
    return size - keep_bytes


def flip_bit(path: PathLike, byte_offset: int, bit: int = 0) -> int:
    """Flip one bit in place; returns the new byte value.

    ``byte_offset`` may be negative to index from the end of the file
    (``-1`` = last byte).
    """
    if not 0 <= bit <= 7:
        raise ValidationError(f"bit must be in [0, 7], got {bit}")
    path = Path(path)
    size = path.stat().st_size
    if byte_offset < 0:
        byte_offset += size
    if not 0 <= byte_offset < size:
        raise ValidationError(
            f"byte_offset {byte_offset} outside file of {size} bytes"
        )
    with open(path, "rb+") as handle:
        handle.seek(byte_offset)
        original = handle.read(1)[0]
        flipped = original ^ (1 << bit)
        handle.seek(byte_offset)
        handle.write(bytes([flipped]))
    return flipped
