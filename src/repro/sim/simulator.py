"""Single-technique simulation runner.

Execution engines
-----------------
``Simulator`` feeds its controller through one of two engines:

* ``"batched"`` (default) — the trace is chunked into struct-of-arrays
  :class:`repro.engine.batch.AccessBatch` objects and handed to
  :meth:`CacheController.process_batch`, which runs the technique's
  specialised batched fast path when available.  Results are
  bit-identical to scalar execution (``tests/engine/`` proves it);
  throughput is several times higher.
* ``"scalar"`` — one :meth:`CacheController.process` call per record;
  the reference path the differential suite compares against.
* ``"columnar"`` — the second-generation engine: chunks become NumPy
  arrays (:class:`repro.engine.columnar.ColumnarChunk`, zero-copy when
  read from an ``RPCOL1`` mmap via :mod:`repro.trace.colio`) and the
  hot path runs vectorized kernels, falling back to the batched engine
  per chunk whenever exact semantics require it.  Requires the
  ``columnar`` extra (NumPy); construction raises
  :class:`ValidationError` without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.cache.memory import FunctionalMemory
from repro.cache.stats import CacheStats
from repro.core.controller import CacheController
from repro.core.outcomes import OperationCounts
from repro.core.registry import make_controller
from repro.engine.batch import AccessBatch, iter_batches
from repro.engine.columnar import (
    ColumnarChunk,
    iter_chunks,
    process_chunk,
    require_numpy,
)
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sram.events import SRAMEventLog
from repro.trace.record import MemoryAccess
from repro.errors import ValidationError

__all__ = ["Simulator", "SimulationResult", "run_simulation"]

_ENGINES = ("batched", "scalar", "columnar")


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured from one (trace, technique) run."""

    technique: str
    geometry: CacheGeometry
    requests: int
    events: SRAMEventLog
    counts: OperationCounts
    cache_stats: CacheStats

    @property
    def array_accesses(self) -> int:
        """The paper's cache-access count for this run."""
        return self.events.array_accesses

    @property
    def accesses_per_request(self) -> float:
        return self.array_accesses / self.requests if self.requests else 0.0


class Simulator:
    """Owns one controller + cache + memory and feeds it a trace."""

    def __init__(
        self,
        technique: str,
        geometry: CacheGeometry,
        memory: Optional[FunctionalMemory] = None,
        telemetry: Optional[Telemetry] = None,
        engine: str = "batched",
        batch_size: Optional[int] = None,
        **controller_kwargs,
    ) -> None:
        if engine not in _ENGINES:
            raise ValidationError(
                f"unknown engine {engine!r}; known: {_ENGINES}"
            )
        if engine == "columnar":
            require_numpy()
        self.memory = memory if memory is not None else FunctionalMemory()
        self.cache = SetAssociativeCache(geometry, self.memory)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.controller: CacheController = make_controller(
            technique, self.cache, telemetry=telemetry, **controller_kwargs
        )
        self.geometry = geometry
        self.engine = engine
        self.batch_size = batch_size
        self._requests = 0

    def feed(self, trace: Iterable[MemoryAccess]) -> None:
        """Process a stream of accesses (may be called repeatedly).

        Streaming either way: the batched engine holds at most one
        batch of decoded records at a time.
        """
        if self.engine == "scalar":
            process = self.controller.process
            for access in trace:
                process(access)
                self._requests += 1
            return
        if self.engine == "columnar":
            for chunk in iter_chunks(trace, self.geometry, self.batch_size):
                self._requests += process_chunk(self.controller, chunk)
            return
        process_batch = self.controller.process_batch
        for batch in iter_batches(trace, self.geometry, self.batch_size):
            self._requests += process_batch(batch)

    def feed_batches(self, batches: Iterable[AccessBatch]) -> None:
        """Process pre-decoded batches (e.g. from
        :func:`repro.trace.read_binary_trace_batches`)."""
        if self.engine == "columnar":
            for batch in batches:
                self._requests += process_chunk(
                    self.controller, ColumnarChunk.from_access_batch(batch)
                )
            return
        process_batch = self.controller.process_batch
        for batch in batches:
            self._requests += process_batch(batch)

    def feed_chunks(self, chunks: Iterable[ColumnarChunk]) -> None:
        """Process pre-built columnar chunks (e.g. zero-copy views from
        :meth:`repro.trace.colio.ColumnarTrace.chunks`)."""
        for chunk in chunks:
            self._requests += process_chunk(self.controller, chunk)

    def reset_measurements(self) -> None:
        """Zero all counters while keeping cache/controller *state*.

        Used to implement warm-up: feed the warm-up slice, reset, then
        feed the measured slice — the paper's fast-forward, in miniature.
        Resets the telemetry plane too: the controller's pre-bound
        registry counters are shared live objects, so they are zeroed
        in place rather than replaced.
        """
        self.controller.events = SRAMEventLog()
        self.controller.counts = OperationCounts()
        self.controller.reset_telemetry_counters()
        self.cache.stats = CacheStats()
        self._requests = 0

    def finish(self) -> SimulationResult:
        """Finalize the controller and snapshot the results."""
        self.controller.finalize()
        return SimulationResult(
            technique=self.controller.name,
            geometry=self.geometry,
            requests=self._requests,
            events=self.controller.events.copy(),
            counts=self.controller.counts,
            cache_stats=self.cache.stats,
        )


def run_simulation(
    trace: Iterable[MemoryAccess],
    technique: str,
    geometry: CacheGeometry,
    telemetry: Optional[Telemetry] = None,
    **controller_kwargs,
) -> SimulationResult:
    """Convenience: build a simulator, run the trace, return the result.

    ``engine=`` / ``batch_size=`` pass through to :class:`Simulator`;
    everything else reaches the controller factory.
    """
    simulator = Simulator(technique, geometry, telemetry=telemetry, **controller_kwargs)
    simulator.feed(trace)
    return simulator.finish()
