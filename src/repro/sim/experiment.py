"""Experiment configuration.

One frozen object carries everything a run depends on, so results are a
pure function of the config — the repeatability the paper could not get
from Pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.errors import ConfigurationError
from repro.workload.spec2006 import benchmark_names

__all__ = ["ExperimentConfig"]

#: Trace length used by the figure reproductions.  The paper runs 10 B
#: instructions; the frequency/ratio metrics it reports stabilise after
#: a few tens of thousands of accesses, so this default keeps the full
#: campaign fast while staying well inside the stable regime.
DEFAULT_ACCESSES = 60_000


@dataclass(frozen=True)
class ExperimentConfig:
    """Inputs of one campaign run.

    Attributes:
        geometry: cache geometry under test.
        benchmarks: benchmark names (defaults to the paper's 25).
        techniques: controllers to compare.
        accesses_per_benchmark: trace length per benchmark.
        warmup_fraction: leading fraction of each trace processed for
            cache warm-up but excluded from event accounting (the
            paper's 1 B-instruction fast-forward, proportionally).
        seed: root seed for trace synthesis.
    """

    geometry: CacheGeometry = BASELINE_GEOMETRY
    benchmarks: Tuple[str, ...] = ()
    techniques: Tuple[str, ...] = ("conventional", "rmw", "wg", "wg_rb")
    accesses_per_benchmark: int = DEFAULT_ACCESSES
    warmup_fraction: float = 0.1
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.accesses_per_benchmark <= 0:
            raise ConfigurationError(
                "accesses_per_benchmark must be positive, got "
                f"{self.accesses_per_benchmark}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if not self.techniques:
            raise ConfigurationError("at least one technique is required")
        if not self.benchmarks:
            object.__setattr__(self, "benchmarks", tuple(benchmark_names()))

    def with_geometry(self, geometry: CacheGeometry) -> "ExperimentConfig":
        """Copy of this config with a different cache geometry."""
        return ExperimentConfig(
            geometry=geometry,
            benchmarks=self.benchmarks,
            techniques=self.techniques,
            accesses_per_benchmark=self.accesses_per_benchmark,
            warmup_fraction=self.warmup_fraction,
            seed=self.seed,
        )

    @property
    def warmup_accesses(self) -> int:
        return int(self.accesses_per_benchmark * self.warmup_fraction)
