"""Multi-technique comparison on a single trace.

The paper evaluates every technique in one Pin run (Pin is not
repeatable).  We get the same apples-to-apples guarantee a cleaner way:
the trace is materialised once and replayed through each technique on a
fresh cache + memory, so all techniques see the identical request
stream.

The headline metric (Figures 9-11) is::

    reduction(t) = 1 - array_accesses(t) / array_accesses(rmw)

and the RMW-overhead claim of Section 1 is::

    overhead = array_accesses(rmw) / array_accesses(conventional) - 1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cache.config import CacheGeometry
from repro.obs.spans import span
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.resilience import RetryPolicy, active_policy, retry_call
from repro.sim.simulator import SimulationResult, run_simulation
from repro.trace.record import MemoryAccess
from repro.errors import TypeContractError, ValidationError

__all__ = ["ComparisonResult", "compare_techniques"]

DEFAULT_TECHNIQUES = ("conventional", "rmw", "wg", "wg_rb")


@dataclass(frozen=True)
class ComparisonResult:
    """Per-technique results for one trace on one geometry."""

    geometry: CacheGeometry
    results: Dict[str, SimulationResult]

    def result(self, technique: str) -> SimulationResult:
        try:
            return self.results[technique]
        except KeyError:
            raise ValidationError(
                f"technique {technique!r} was not simulated; "
                f"have {sorted(self.results)}"
            ) from None

    def access_reduction(self, technique: str, baseline: str = "rmw") -> float:
        """Fractional access reduction of ``technique`` vs ``baseline``."""
        baseline_accesses = self.result(baseline).array_accesses
        if baseline_accesses == 0:
            return 0.0
        return 1.0 - self.result(technique).array_accesses / baseline_accesses

    @property
    def rmw_overhead(self) -> float:
        """Access-frequency increase of RMW over a conventional cache."""
        conventional = self.result("conventional").array_accesses
        if conventional == 0:
            return 0.0
        return self.result("rmw").array_accesses / conventional - 1.0


def compare_techniques(
    trace: Sequence[MemoryAccess],
    geometry: CacheGeometry,
    techniques: Sequence[str] = DEFAULT_TECHNIQUES,
    telemetry: Optional[Telemetry] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint=None,
    **controller_kwargs,
) -> ComparisonResult:
    """Replay ``trace`` through each technique on a fresh cache.

    ``trace`` must be a materialised sequence (not a one-shot iterator),
    because it is replayed once per technique.  With ``telemetry`` the
    controllers are instrumented and each technique's replay runs under
    a ``simulate.<technique>`` span.

    Each technique replays under the active :class:`RetryPolicy`
    (transient failures retry with backoff; a comparison missing its
    baseline is useless, so exhaustion raises rather than quarantines).
    With ``checkpoint=...``, finished techniques journal to a file
    fingerprinted on (trace, geometry, techniques) and are not re-run
    on resume.  Both default from the ambient execution policy.
    """
    if iter(trace) is trace:
        raise TypeContractError(
            "trace must be a reusable sequence; call "
            "repro.trace.materialize() on generators first"
        )
    policy = active_policy()
    retry = retry if retry is not None else policy.retry
    checkpoint = checkpoint if checkpoint is not None else policy.checkpoint
    telem = telemetry if telemetry is not None else NULL_TELEMETRY

    journal = None
    results: Dict[str, SimulationResult] = {}
    if checkpoint is not None:
        from repro.sim import checkpoint as ckpt

        journal = ckpt.as_store(checkpoint).open_comparison(
            trace, geometry, techniques, controller_kwargs
        )
        for technique in techniques:
            payload = journal.rows.get(technique)
            if payload is not None:
                results[technique] = ckpt.deserialize_result(payload)
        if results and telem.enabled:
            telem.registry.inc("checkpoint.resumed_rows", len(results))

    def on_event(name: str, **details) -> None:
        if telem.enabled:
            telem.registry.inc(name)
            telem.instant(name, category="resilience", **details)

    try:
        for technique in techniques:
            if technique in results:
                continue
            with span(telem, f"simulate.{technique}", requests=len(trace)):
                results[technique] = retry_call(
                    lambda _attempt, _t=technique: run_simulation(
                        trace, _t, geometry, telemetry=telemetry,
                        **controller_kwargs,
                    ),
                    policy=retry,
                    name=technique,
                    on_event=on_event,
                )
            if journal is not None:
                from repro.sim import checkpoint as ckpt

                journal.append(
                    technique, ckpt.serialize_result(results[technique])
                )
    finally:
        if journal is not None:
            journal.close()
    return ComparisonResult(geometry=geometry, results=results)
