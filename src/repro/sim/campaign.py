"""Benchmark-suite campaigns — the engine behind Figures 9, 10 and 11.

A campaign synthesises one trace per benchmark, replays it through
every technique (with a warm-up slice excluded from accounting) and
collects the per-benchmark access-reduction numbers plus suite
averages.

Fault tolerance
---------------
Campaigns are the long-running shape of this codebase, so they are
*recoverable*, not merely observable:

* Each benchmark runs under the active :class:`RetryPolicy` —
  transient failures are retried with backoff, and a benchmark that
  exhausts its budget is **quarantined** into
  ``CampaignResult.failed_rows`` instead of aborting the suite
  (``strict=True`` restores fail-fast via
  :class:`CampaignFailedError`).
* With ``checkpoint=...`` every completed row is durably journaled as
  it finishes; re-running the same config resumes from the journal and
  only executes missing benchmarks (see :mod:`repro.sim.checkpoint`).
* With ``result_cache=...`` (or ``--result-cache``) completed rows are
  committed to a durable content-addressed store
  (:class:`repro.store.ResultStore`) keyed on config + workload + code
  version; a later campaign with any overlapping rows serves them from
  the store without invoking the simulator, and corrupt or
  version-skewed entries are quarantined and transparently recomputed.
* With ``RetryPolicy.breaker_threshold`` set, a benchmark that keeps
  failing trips its circuit breaker and is *skipped* (quarantined as
  ``FailedRow.breaker_skipped``) instead of soaking up retries.
* All degradation events flow through ``repro.obs`` counters
  (``retry.attempt``, ``campaign.quarantined``, ``store.hit``,
  ``breaker.open``, ``checkpoint.resumed_rows``, ...).
* Every row is accounted for in ``CampaignResult.health``:
  ``cached + recomputed + quarantined + breaker_skipped == total``.

Per-benchmark *timeouts* need process isolation and therefore live in
:func:`repro.sim.parallel.run_campaign_parallel`; the in-process runner
here honours retries, quarantine and checkpointing with identical
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cache.config import CacheGeometry
from repro.errors import (
    BreakerOpenError,
    CampaignFailedError,
    ReproError,
    StoreError,
    ValidationError,
)
from repro.faultinject.plan import maybe_inject
from repro.obs.spans import span
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.experiment import ExperimentConfig
from repro.sim.resilience import (
    CircuitBreaker,
    ExecutionPolicy,
    FailedRow,
    RetryPolicy,
    active_policy,
    retry_call,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.sram.events import SRAMEventLog
from repro.trace.record import MemoryAccess
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

__all__ = [
    "BenchmarkRow",
    "CampaignHealth",
    "CampaignResult",
    "run_campaign",
    "run_geometry_sweep",
]

CheckpointArg = Union[str, Path, None]
#: ``result_cache`` accepts a store root path or an opened
#: :class:`repro.store.ResultStore` (tests share one across runs).
ResultCacheArg = Union[str, Path, object, None]


@dataclass(frozen=True)
class BenchmarkRow:
    """All techniques' results for one benchmark."""

    benchmark: str
    results: Dict[str, SimulationResult]

    def array_accesses(self, technique: str) -> int:
        return self.results[technique].array_accesses

    def access_reduction(self, technique: str, baseline: str = "rmw") -> float:
        baseline_accesses = self.array_accesses(baseline)
        if baseline_accesses == 0:
            return 0.0
        return 1.0 - self.array_accesses(technique) / baseline_accesses

    @property
    def rmw_overhead(self) -> float:
        conventional = self.array_accesses("conventional")
        if conventional == 0:
            return 0.0
        return self.array_accesses("rmw") / conventional - 1.0


@dataclass(frozen=True)
class CampaignHealth:
    """Where every row of a campaign came from (the degradation ledger).

    The four sourcing buckets partition the suite exactly::

        cached + recomputed + quarantined + breaker_skipped == total

    ``cached`` counts rows served without re-simulation — from the
    result store *or* a resumed checkpoint journal
    (``checkpoint_resumed`` breaks out the journal share for
    operators; it is a subset of ``cached``, not a fifth bucket).
    ``healed`` counts store entries that failed validation and were
    quarantined + recomputed this run (those rows sit in
    ``recomputed``).
    """

    total: int
    cached: int
    recomputed: int
    quarantined: int
    breaker_skipped: int
    checkpoint_resumed: int = 0
    healed: int = 0

    @property
    def consistent(self) -> bool:
        """True when the four buckets account for every row exactly."""
        return (
            self.cached
            + self.recomputed
            + self.quarantined
            + self.breaker_skipped
            == self.total
        )

    def describe(self) -> str:
        parts = [
            f"{self.total} row(s): {self.cached} cached",
            f"{self.recomputed} recomputed",
            f"{self.quarantined} quarantined",
            f"{self.breaker_skipped} breaker-skipped",
        ]
        extras = []
        if self.checkpoint_resumed:
            extras.append(f"{self.checkpoint_resumed} from checkpoint")
        if self.healed:
            extras.append(f"{self.healed} healed")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return ", ".join(parts) + suffix


@dataclass(frozen=True)
class CampaignResult:
    """Suite-wide results for one geometry.

    ``rows`` holds the benchmarks that completed; ``failed_rows`` the
    ones quarantined after exhausting their retry budget or skipped by
    an open circuit breaker (empty unless a non-strict campaign hit
    persistent failures).  Aggregates are computed over the completed
    rows only.  ``health`` records how each row was sourced (cache /
    recompute / quarantine / breaker skip).
    """

    config: ExperimentConfig
    rows: List[BenchmarkRow]
    failed_rows: List[FailedRow] = field(default_factory=list)
    health: Optional[CampaignHealth] = None

    @cached_property
    def _rows_by_benchmark(self) -> Dict[str, BenchmarkRow]:
        # Safe to cache on the frozen instance: rows are assembled once
        # at construction and never mutated afterwards.
        return {row.benchmark: row for row in self.rows}

    @property
    def complete(self) -> bool:
        """True when no benchmark was quarantined."""
        return not self.failed_rows

    def row(self, benchmark: str) -> BenchmarkRow:
        try:
            return self._rows_by_benchmark[benchmark]
        except KeyError:
            raise ValidationError(f"benchmark {benchmark!r} not in campaign") from None

    def mean_reduction(self, technique: str, baseline: str = "rmw") -> float:
        """Arithmetic mean of per-benchmark reductions (the paper's avg)."""
        if not self.rows:
            return 0.0
        return sum(
            row.access_reduction(technique, baseline) for row in self.rows
        ) / len(self.rows)

    def max_reduction(self, technique: str, baseline: str = "rmw") -> float:
        return max(
            (row.access_reduction(technique, baseline) for row in self.rows),
            default=0.0,
        )

    def best_benchmark(self, technique: str, baseline: str = "rmw") -> str:
        """Benchmark with the largest reduction for ``technique``."""
        if not self.rows:
            raise ValidationError("empty campaign")
        return max(
            self.rows, key=lambda row: row.access_reduction(technique, baseline)
        ).benchmark

    @property
    def mean_rmw_overhead(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.rmw_overhead for row in self.rows) / len(self.rows)

    @property
    def max_rmw_overhead(self) -> float:
        return max((row.rmw_overhead for row in self.rows), default=0.0)

    def total_events(self, technique: str) -> SRAMEventLog:
        """Suite-wide event log for one technique (``__add__``-folded)."""
        return sum(
            (row.results[technique].events for row in self.rows),
            SRAMEventLog(),
        )


def _run_one(
    trace: Sequence[MemoryAccess],
    technique: str,
    config: ExperimentConfig,
    telemetry: Optional[Telemetry] = None,
) -> SimulationResult:
    """One (trace, technique) run with warm-up.

    Runs on the Simulator's default batched engine; with telemetry
    enabled the controller transparently falls back to per-access
    execution so samplers and trace sinks see every request.
    """
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    simulator = Simulator(technique, config.geometry, telemetry=telemetry)
    warmup = config.warmup_accesses
    if warmup:
        with span(telem, "warmup", technique=technique):
            simulator.feed(trace[:warmup])
        simulator.reset_measurements()
    with span(telem, "measure", technique=technique):
        simulator.feed(trace[warmup:])
    return simulator.finish()


def execute_row(
    benchmark: str,
    config: ExperimentConfig,
    telemetry: Optional[Telemetry] = None,
    attempt: int = 1,
) -> BenchmarkRow:
    """One benchmark through every technique (the unit of retry).

    Consults the fault-injection hook first, so the harness can crash,
    hang or transiently fail exactly this (benchmark, attempt).
    """
    maybe_inject("worker", benchmark=benchmark, attempt=attempt)
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    profile = get_profile(benchmark)
    with span(telem, "trace_gen", benchmark=benchmark):
        trace = generate_trace(
            profile, config.accesses_per_benchmark, seed=config.seed
        )
    results = {
        technique: _run_one(trace, technique, config, telemetry)
        for technique in config.techniques
    }
    return BenchmarkRow(benchmark=benchmark, results=results)


# -- checkpoint plumbing shared with the parallel runner ----------------------------


def _open_campaign_journal(checkpoint: CheckpointArg, config: ExperimentConfig):
    """(journal, resumed rows) for ``checkpoint`` (None -> (None, {}))."""
    if checkpoint is None:
        return None, {}
    from repro.sim import checkpoint as ckpt

    store = ckpt.as_store(checkpoint)
    journal = store.open_campaign(config)
    resumed: Dict[str, BenchmarkRow] = {}
    for key, payload in journal.rows.items():
        if key in config.benchmarks:
            resumed[key] = ckpt.deserialize_row(payload)
    return journal, resumed


def _journal_row(journal, row: BenchmarkRow) -> None:
    if journal is not None:
        from repro.sim import checkpoint as ckpt

        journal.append(row.benchmark, ckpt.serialize_row(row))


def _report_resume(telem: Telemetry, journal, resumed_count: int) -> None:
    if journal is None or not telem.enabled:
        return
    if resumed_count:
        telem.registry.inc("checkpoint.resumed_rows", resumed_count)
        telem.instant(
            "checkpoint.resumed",
            category="resilience",
            rows=resumed_count,
            path=str(journal.path),
        )
    if journal.skipped_records:
        telem.registry.inc("checkpoint.skipped_records", journal.skipped_records)


def emit_degradation(telem: Telemetry, name: str, **details) -> None:
    """Route one degradation event through counters + trace instants."""
    if not telem.enabled:
        return
    telem.registry.inc(name)
    telem.instant(name, category="resilience", **details)


# -- result-store plumbing shared with the parallel runner --------------------------


def _open_result_store(
    result_cache: ResultCacheArg, policy: ExecutionPolicy, telem: Telemetry
):
    """Open (or pass through) the campaign's result store.

    An unusable store root *degrades* — the campaign runs uncached
    behind a ``warning.store.open_failed`` — rather than failing work
    that does not need the cache to be correct.
    """
    if result_cache is None:
        return None
    from repro.store import ResultStore

    if isinstance(result_cache, ResultStore):
        return result_cache

    def on_event(name: str, **details) -> None:
        emit_degradation(telem, name, **details)

    try:
        return ResultStore(
            result_cache,
            max_bytes=policy.result_cache_max_bytes,
            on_event=on_event,
        )
    except (StoreError, OSError) as exc:
        telem.warn(
            "store.open_failed",
            f"result cache disabled for this campaign: {exc}",
            root=str(result_cache),
        )
        return None


def _store_load_row(
    store, config: ExperimentConfig, benchmark: str, telem: Telemetry
) -> Optional[BenchmarkRow]:
    """Validated store lookup -> row, or None on any miss/degradation."""
    from repro.sim import checkpoint as ckpt

    try:
        payload = store.get_row(config, benchmark)
    except (ReproError, OSError) as exc:
        telem.warn(
            "store.get_failed",
            f"result-store lookup failed for {benchmark}: {exc}",
            benchmark=benchmark,
        )
        return None
    if payload is None:
        return None
    try:
        return ckpt.deserialize_row(payload)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        # The entry checksummed but does not decode as a row — a
        # serializer drift the CRC cannot see.  Treat as a miss.
        telem.warn(
            "store.decode_failed",
            f"cached row for {benchmark} does not decode: {exc}",
            benchmark=benchmark,
        )
        return None


def _store_save_row(
    store, config: ExperimentConfig, row: BenchmarkRow, telem: Telemetry
) -> None:
    """Commit a completed row; a failed cache write never fails the row."""
    from repro.sim import checkpoint as ckpt

    try:
        store.put_row(config, row.benchmark, ckpt.serialize_row(row))
    except (ReproError, OSError) as exc:
        telem.warn(
            "store.put_failed",
            f"could not cache row {row.benchmark}: {exc}",
            benchmark=row.benchmark,
        )


def _resolve(
    retry: Optional[RetryPolicy],
    strict: Optional[bool],
    checkpoint: CheckpointArg,
    result_cache: ResultCacheArg = None,
) -> Tuple[RetryPolicy, bool, CheckpointArg, ResultCacheArg, ExecutionPolicy]:
    policy = active_policy()
    return (
        retry if retry is not None else policy.retry,
        strict if strict is not None else policy.strict,
        checkpoint if checkpoint is not None else policy.checkpoint,
        result_cache if result_cache is not None else policy.result_cache,
        policy,
    )


def run_campaign(
    config: ExperimentConfig,
    telemetry: Optional[Telemetry] = None,
    *,
    retry: Optional[RetryPolicy] = None,
    strict: Optional[bool] = None,
    checkpoint: CheckpointArg = None,
    result_cache: ResultCacheArg = None,
) -> CampaignResult:
    """Run every benchmark through every technique, in process.

    Parameters left as None fall back to the ambient
    :class:`ExecutionPolicy` (see :func:`execution_policy`); if that
    policy requests multiple processes, execution is delegated to
    :func:`repro.sim.parallel.run_campaign_parallel`.

    With ``result_cache``, rows whose exact (config, workload, code
    version) are already in the store are served from it — zero
    simulator invocations — and newly computed rows are committed
    back.  ``CampaignResult.health`` accounts for every row's
    provenance either way.

    With ``telemetry``, each campaign phase (trace-gen, warm-up,
    measure) runs under a span and the controllers are instrumented.
    """
    retry, strict, checkpoint, result_cache, policy = _resolve(
        retry, strict, checkpoint, result_cache
    )
    if policy.processes is not None and policy.processes > 1:
        from repro.sim.parallel import run_campaign_parallel

        return run_campaign_parallel(
            config,
            processes=policy.processes,
            telemetry=telemetry,
            retry=retry,
            strict=strict,
            checkpoint=checkpoint,
            result_cache=result_cache,
        )
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    store = _open_result_store(result_cache, policy, telem)
    journal, resumed = _open_campaign_journal(checkpoint, config)
    cached: Dict[str, BenchmarkRow] = {}
    healed = 0
    try:
        _report_resume(telem, journal, len(resumed))
        pending = [b for b in config.benchmarks if b not in resumed]
        if store is not None:
            still_pending = []
            for benchmark in pending:
                corrupt_before = store.counters["corrupt"]
                row = _store_load_row(store, config, benchmark, telem)
                healed += store.counters["corrupt"] - corrupt_before
                if row is not None:
                    cached[benchmark] = row
                    _journal_row(journal, row)
                else:
                    still_pending.append(benchmark)
            pending = still_pending
        breaker = (
            CircuitBreaker(retry.breaker_threshold)
            if retry.breaker_threshold is not None
            else None
        )
        executed, failed = _run_rows_resilient(
            pending,
            config,
            telemetry,
            retry,
            strict,
            journal,
            telem,
            breaker=breaker,
            store=store,
        )
    finally:
        if journal is not None:
            journal.close()
    completed: Dict[str, BenchmarkRow] = {}
    completed.update(resumed)
    completed.update(cached)
    completed.update(executed)
    rows = [
        completed[benchmark]
        for benchmark in config.benchmarks
        if benchmark in completed
    ]
    health = CampaignHealth(
        total=len(config.benchmarks),
        cached=len(resumed) + len(cached),
        recomputed=len(executed),
        quarantined=sum(1 for f in failed if not f.breaker_skipped),
        breaker_skipped=sum(1 for f in failed if f.breaker_skipped),
        checkpoint_resumed=len(resumed),
        healed=healed,
    )
    return CampaignResult(
        config=config, rows=rows, failed_rows=failed, health=health
    )


def _run_rows_resilient(
    benchmarks: Sequence[str],
    config: ExperimentConfig,
    telemetry: Optional[Telemetry],
    retry: RetryPolicy,
    strict: bool,
    journal,
    telem: Telemetry,
    breaker: Optional[CircuitBreaker] = None,
    store=None,
) -> Tuple[Dict[str, BenchmarkRow], List[FailedRow]]:
    """Sequential resilient execution of ``benchmarks`` (shared with
    the parallel runner's ``processes=1`` path)."""
    completed: Dict[str, BenchmarkRow] = {}
    failed: List[FailedRow] = []

    def on_event(name: str, **details) -> None:
        emit_degradation(telem, name, **details)

    for benchmark in benchmarks:
        try:
            row = retry_call(
                lambda attempt, _b=benchmark: execute_row(
                    _b, config, telemetry, attempt
                ),
                policy=retry,
                seed=config.seed,
                name=benchmark,
                on_event=on_event,
                breaker=breaker,
            )
        except ReproError as exc:
            skipped = isinstance(exc, BreakerOpenError)
            failure = FailedRow(
                benchmark=benchmark,
                attempts=(
                    breaker.failures(benchmark)
                    if skipped and breaker is not None
                    else retry.max_attempts
                ),
                error_type=type(exc).__name__,
                error=str(exc),
                breaker_skipped=skipped,
            )
            if strict:
                raise CampaignFailedError(
                    f"campaign failed (strict): {failure.describe()}",
                    failed_rows=[failure],
                ) from exc
            failed.append(failure)
            if skipped:
                emit_degradation(
                    telem, "breaker.skip", benchmark=benchmark
                )
            else:
                emit_degradation(
                    telem,
                    "campaign.quarantined",
                    benchmark=benchmark,
                    error=failure.error_type,
                )
            continue
        completed[benchmark] = row
        _journal_row(journal, row)
        if store is not None:
            _store_save_row(store, config, row, telem)
    return completed, failed


def run_geometry_sweep(
    config: ExperimentConfig, geometries: Sequence[CacheGeometry]
) -> Dict[str, CampaignResult]:
    """Run the campaign once per geometry (Figures 10/11).

    Returns results keyed by ``geometry.describe()``.  Each geometry's
    campaign is an independent config, so under a directory-mode
    checkpoint every geometry journals (and resumes) separately.
    """
    return {
        geometry.describe(): run_campaign(config.with_geometry(geometry))
        for geometry in geometries
    }
