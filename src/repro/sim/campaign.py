"""Benchmark-suite campaigns — the engine behind Figures 9, 10 and 11.

A campaign synthesises one trace per benchmark, replays it through
every technique (with a warm-up slice excluded from accounting) and
collects the per-benchmark access-reduction numbers plus suite
averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cache.config import CacheGeometry
from repro.obs.spans import span
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.experiment import ExperimentConfig
from repro.sim.simulator import SimulationResult, Simulator
from repro.sram.events import SRAMEventLog
from repro.trace.record import MemoryAccess
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

__all__ = ["BenchmarkRow", "CampaignResult", "run_campaign", "run_geometry_sweep"]


@dataclass(frozen=True)
class BenchmarkRow:
    """All techniques' results for one benchmark."""

    benchmark: str
    results: Dict[str, SimulationResult]

    def array_accesses(self, technique: str) -> int:
        return self.results[technique].array_accesses

    def access_reduction(self, technique: str, baseline: str = "rmw") -> float:
        baseline_accesses = self.array_accesses(baseline)
        if baseline_accesses == 0:
            return 0.0
        return 1.0 - self.array_accesses(technique) / baseline_accesses

    @property
    def rmw_overhead(self) -> float:
        conventional = self.array_accesses("conventional")
        if conventional == 0:
            return 0.0
        return self.array_accesses("rmw") / conventional - 1.0


@dataclass(frozen=True)
class CampaignResult:
    """Suite-wide results for one geometry."""

    config: ExperimentConfig
    rows: List[BenchmarkRow]

    def row(self, benchmark: str) -> BenchmarkRow:
        for row in self.rows:
            if row.benchmark == benchmark:
                return row
        raise ValueError(f"benchmark {benchmark!r} not in campaign")

    def mean_reduction(self, technique: str, baseline: str = "rmw") -> float:
        """Arithmetic mean of per-benchmark reductions (the paper's avg)."""
        if not self.rows:
            return 0.0
        return sum(
            row.access_reduction(technique, baseline) for row in self.rows
        ) / len(self.rows)

    def max_reduction(self, technique: str, baseline: str = "rmw") -> float:
        return max(
            (row.access_reduction(technique, baseline) for row in self.rows),
            default=0.0,
        )

    def best_benchmark(self, technique: str, baseline: str = "rmw") -> str:
        """Benchmark with the largest reduction for ``technique``."""
        if not self.rows:
            raise ValueError("empty campaign")
        return max(
            self.rows, key=lambda row: row.access_reduction(technique, baseline)
        ).benchmark

    @property
    def mean_rmw_overhead(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.rmw_overhead for row in self.rows) / len(self.rows)

    @property
    def max_rmw_overhead(self) -> float:
        return max((row.rmw_overhead for row in self.rows), default=0.0)

    def total_events(self, technique: str) -> SRAMEventLog:
        """Suite-wide event log for one technique (``__add__``-folded)."""
        return sum(
            (row.results[technique].events for row in self.rows),
            SRAMEventLog(),
        )


def _run_one(
    trace: Sequence[MemoryAccess],
    technique: str,
    config: ExperimentConfig,
    telemetry: Optional[Telemetry] = None,
) -> SimulationResult:
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    simulator = Simulator(technique, config.geometry, telemetry=telemetry)
    warmup = config.warmup_accesses
    if warmup:
        with span(telem, "warmup", technique=technique):
            simulator.feed(trace[:warmup])
        simulator.reset_measurements()
    with span(telem, "measure", technique=technique):
        simulator.feed(trace[warmup:])
    return simulator.finish()


def run_campaign(
    config: ExperimentConfig, telemetry: Optional[Telemetry] = None
) -> CampaignResult:
    """Run every benchmark through every technique.

    With ``telemetry``, each campaign phase (trace-gen, warm-up,
    measure) runs under a span and the controllers are instrumented.
    """
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    rows: List[BenchmarkRow] = []
    for benchmark in config.benchmarks:
        profile = get_profile(benchmark)
        with span(telem, "trace_gen", benchmark=benchmark):
            trace = generate_trace(
                profile, config.accesses_per_benchmark, seed=config.seed
            )
        results = {
            technique: _run_one(trace, technique, config, telemetry)
            for technique in config.techniques
        }
        rows.append(BenchmarkRow(benchmark=benchmark, results=results))
    return CampaignResult(config=config, rows=rows)


def run_geometry_sweep(
    config: ExperimentConfig, geometries: Sequence[CacheGeometry]
) -> Dict[str, CampaignResult]:
    """Run the campaign once per geometry (Figures 10/11).

    Returns results keyed by ``geometry.describe()``.
    """
    return {
        geometry.describe(): run_campaign(config.with_geometry(geometry))
        for geometry in geometries
    }
