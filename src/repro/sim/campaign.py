"""Benchmark-suite campaigns — the engine behind Figures 9, 10 and 11.

A campaign synthesises one trace per benchmark, replays it through
every technique (with a warm-up slice excluded from accounting) and
collects the per-benchmark access-reduction numbers plus suite
averages.

Fault tolerance
---------------
Campaigns are the long-running shape of this codebase, so they are
*recoverable*, not merely observable:

* Each benchmark runs under the active :class:`RetryPolicy` —
  transient failures are retried with backoff, and a benchmark that
  exhausts its budget is **quarantined** into
  ``CampaignResult.failed_rows`` instead of aborting the suite
  (``strict=True`` restores fail-fast via
  :class:`CampaignFailedError`).
* With ``checkpoint=...`` every completed row is durably journaled as
  it finishes; re-running the same config resumes from the journal and
  only executes missing benchmarks (see :mod:`repro.sim.checkpoint`).
* All degradation events flow through ``repro.obs`` counters
  (``retry.attempt``, ``campaign.quarantined``,
  ``checkpoint.resumed_rows``, ...).

Per-benchmark *timeouts* need process isolation and therefore live in
:func:`repro.sim.parallel.run_campaign_parallel`; the in-process runner
here honours retries, quarantine and checkpointing with identical
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cache.config import CacheGeometry
from repro.errors import CampaignFailedError, ReproError, ValidationError
from repro.faultinject.plan import maybe_inject
from repro.obs.spans import span
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.experiment import ExperimentConfig
from repro.sim.resilience import (
    ExecutionPolicy,
    FailedRow,
    RetryPolicy,
    active_policy,
    retry_call,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.sram.events import SRAMEventLog
from repro.trace.record import MemoryAccess
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

__all__ = [
    "BenchmarkRow",
    "CampaignResult",
    "run_campaign",
    "run_geometry_sweep",
]

CheckpointArg = Union[str, Path, None]


@dataclass(frozen=True)
class BenchmarkRow:
    """All techniques' results for one benchmark."""

    benchmark: str
    results: Dict[str, SimulationResult]

    def array_accesses(self, technique: str) -> int:
        return self.results[technique].array_accesses

    def access_reduction(self, technique: str, baseline: str = "rmw") -> float:
        baseline_accesses = self.array_accesses(baseline)
        if baseline_accesses == 0:
            return 0.0
        return 1.0 - self.array_accesses(technique) / baseline_accesses

    @property
    def rmw_overhead(self) -> float:
        conventional = self.array_accesses("conventional")
        if conventional == 0:
            return 0.0
        return self.array_accesses("rmw") / conventional - 1.0


@dataclass(frozen=True)
class CampaignResult:
    """Suite-wide results for one geometry.

    ``rows`` holds the benchmarks that completed; ``failed_rows`` the
    ones quarantined after exhausting their retry budget (empty unless
    a non-strict campaign hit persistent failures).  Aggregates are
    computed over the completed rows only.
    """

    config: ExperimentConfig
    rows: List[BenchmarkRow]
    failed_rows: List[FailedRow] = field(default_factory=list)

    @cached_property
    def _rows_by_benchmark(self) -> Dict[str, BenchmarkRow]:
        # Safe to cache on the frozen instance: rows are assembled once
        # at construction and never mutated afterwards.
        return {row.benchmark: row for row in self.rows}

    @property
    def complete(self) -> bool:
        """True when no benchmark was quarantined."""
        return not self.failed_rows

    def row(self, benchmark: str) -> BenchmarkRow:
        try:
            return self._rows_by_benchmark[benchmark]
        except KeyError:
            raise ValidationError(f"benchmark {benchmark!r} not in campaign") from None

    def mean_reduction(self, technique: str, baseline: str = "rmw") -> float:
        """Arithmetic mean of per-benchmark reductions (the paper's avg)."""
        if not self.rows:
            return 0.0
        return sum(
            row.access_reduction(technique, baseline) for row in self.rows
        ) / len(self.rows)

    def max_reduction(self, technique: str, baseline: str = "rmw") -> float:
        return max(
            (row.access_reduction(technique, baseline) for row in self.rows),
            default=0.0,
        )

    def best_benchmark(self, technique: str, baseline: str = "rmw") -> str:
        """Benchmark with the largest reduction for ``technique``."""
        if not self.rows:
            raise ValidationError("empty campaign")
        return max(
            self.rows, key=lambda row: row.access_reduction(technique, baseline)
        ).benchmark

    @property
    def mean_rmw_overhead(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.rmw_overhead for row in self.rows) / len(self.rows)

    @property
    def max_rmw_overhead(self) -> float:
        return max((row.rmw_overhead for row in self.rows), default=0.0)

    def total_events(self, technique: str) -> SRAMEventLog:
        """Suite-wide event log for one technique (``__add__``-folded)."""
        return sum(
            (row.results[technique].events for row in self.rows),
            SRAMEventLog(),
        )


def _run_one(
    trace: Sequence[MemoryAccess],
    technique: str,
    config: ExperimentConfig,
    telemetry: Optional[Telemetry] = None,
) -> SimulationResult:
    """One (trace, technique) run with warm-up.

    Runs on the Simulator's default batched engine; with telemetry
    enabled the controller transparently falls back to per-access
    execution so samplers and trace sinks see every request.
    """
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    simulator = Simulator(technique, config.geometry, telemetry=telemetry)
    warmup = config.warmup_accesses
    if warmup:
        with span(telem, "warmup", technique=technique):
            simulator.feed(trace[:warmup])
        simulator.reset_measurements()
    with span(telem, "measure", technique=technique):
        simulator.feed(trace[warmup:])
    return simulator.finish()


def execute_row(
    benchmark: str,
    config: ExperimentConfig,
    telemetry: Optional[Telemetry] = None,
    attempt: int = 1,
) -> BenchmarkRow:
    """One benchmark through every technique (the unit of retry).

    Consults the fault-injection hook first, so the harness can crash,
    hang or transiently fail exactly this (benchmark, attempt).
    """
    maybe_inject("worker", benchmark=benchmark, attempt=attempt)
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    profile = get_profile(benchmark)
    with span(telem, "trace_gen", benchmark=benchmark):
        trace = generate_trace(
            profile, config.accesses_per_benchmark, seed=config.seed
        )
    results = {
        technique: _run_one(trace, technique, config, telemetry)
        for technique in config.techniques
    }
    return BenchmarkRow(benchmark=benchmark, results=results)


# -- checkpoint plumbing shared with the parallel runner ----------------------------


def _open_campaign_journal(checkpoint: CheckpointArg, config: ExperimentConfig):
    """(journal, resumed rows) for ``checkpoint`` (None -> (None, {}))."""
    if checkpoint is None:
        return None, {}
    from repro.sim import checkpoint as ckpt

    store = ckpt.as_store(checkpoint)
    journal = store.open_campaign(config)
    resumed: Dict[str, BenchmarkRow] = {}
    for key, payload in journal.rows.items():
        if key in config.benchmarks:
            resumed[key] = ckpt.deserialize_row(payload)
    return journal, resumed


def _journal_row(journal, row: BenchmarkRow) -> None:
    if journal is not None:
        from repro.sim import checkpoint as ckpt

        journal.append(row.benchmark, ckpt.serialize_row(row))


def _report_resume(telem: Telemetry, journal, resumed_count: int) -> None:
    if journal is None or not telem.enabled:
        return
    if resumed_count:
        telem.registry.inc("checkpoint.resumed_rows", resumed_count)
        telem.instant(
            "checkpoint.resumed",
            category="resilience",
            rows=resumed_count,
            path=str(journal.path),
        )
    if journal.skipped_records:
        telem.registry.inc("checkpoint.skipped_records", journal.skipped_records)


def emit_degradation(telem: Telemetry, name: str, **details) -> None:
    """Route one degradation event through counters + trace instants."""
    if not telem.enabled:
        return
    telem.registry.inc(name)
    telem.instant(name, category="resilience", **details)


def _resolve(
    retry: Optional[RetryPolicy],
    strict: Optional[bool],
    checkpoint: CheckpointArg,
) -> Tuple[RetryPolicy, bool, CheckpointArg, ExecutionPolicy]:
    policy = active_policy()
    return (
        retry if retry is not None else policy.retry,
        strict if strict is not None else policy.strict,
        checkpoint if checkpoint is not None else policy.checkpoint,
        policy,
    )


def run_campaign(
    config: ExperimentConfig,
    telemetry: Optional[Telemetry] = None,
    *,
    retry: Optional[RetryPolicy] = None,
    strict: Optional[bool] = None,
    checkpoint: CheckpointArg = None,
) -> CampaignResult:
    """Run every benchmark through every technique, in process.

    Parameters left as None fall back to the ambient
    :class:`ExecutionPolicy` (see :func:`execution_policy`); if that
    policy requests multiple processes, execution is delegated to
    :func:`repro.sim.parallel.run_campaign_parallel`.

    With ``telemetry``, each campaign phase (trace-gen, warm-up,
    measure) runs under a span and the controllers are instrumented.
    """
    retry, strict, checkpoint, policy = _resolve(retry, strict, checkpoint)
    if policy.processes is not None and policy.processes > 1:
        from repro.sim.parallel import run_campaign_parallel

        return run_campaign_parallel(
            config,
            processes=policy.processes,
            telemetry=telemetry,
            retry=retry,
            strict=strict,
            checkpoint=checkpoint,
        )
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    journal, resumed = _open_campaign_journal(checkpoint, config)
    try:
        _report_resume(telem, journal, len(resumed))
        completed, failed = _run_rows_resilient(
            [b for b in config.benchmarks if b not in resumed],
            config,
            telemetry,
            retry,
            strict,
            journal,
            telem,
        )
    finally:
        if journal is not None:
            journal.close()
    completed.update(resumed)
    rows = [
        completed[benchmark]
        for benchmark in config.benchmarks
        if benchmark in completed
    ]
    return CampaignResult(config=config, rows=rows, failed_rows=failed)


def _run_rows_resilient(
    benchmarks: Sequence[str],
    config: ExperimentConfig,
    telemetry: Optional[Telemetry],
    retry: RetryPolicy,
    strict: bool,
    journal,
    telem: Telemetry,
) -> Tuple[Dict[str, BenchmarkRow], List[FailedRow]]:
    """Sequential resilient execution of ``benchmarks`` (shared with
    the parallel runner's ``processes=1`` path)."""
    completed: Dict[str, BenchmarkRow] = {}
    failed: List[FailedRow] = []

    def on_event(name: str, **details) -> None:
        emit_degradation(telem, name, **details)

    for benchmark in benchmarks:
        try:
            row = retry_call(
                lambda attempt, _b=benchmark: execute_row(
                    _b, config, telemetry, attempt
                ),
                policy=retry,
                seed=config.seed,
                name=benchmark,
                on_event=on_event,
            )
        except ReproError as exc:
            failure = FailedRow(
                benchmark=benchmark,
                attempts=retry.max_attempts,
                error_type=type(exc).__name__,
                error=str(exc),
            )
            if strict:
                raise CampaignFailedError(
                    f"campaign failed (strict): {failure.describe()}",
                    failed_rows=[failure],
                ) from exc
            failed.append(failure)
            emit_degradation(
                telem,
                "campaign.quarantined",
                benchmark=benchmark,
                error=failure.error_type,
            )
            continue
        completed[benchmark] = row
        _journal_row(journal, row)
    return completed, failed


def run_geometry_sweep(
    config: ExperimentConfig, geometries: Sequence[CacheGeometry]
) -> Dict[str, CampaignResult]:
    """Run the campaign once per geometry (Figures 10/11).

    Returns results keyed by ``geometry.describe()``.  Each geometry's
    campaign is an independent config, so under a directory-mode
    checkpoint every geometry journals (and resumes) separately.
    """
    return {
        geometry.describe(): run_campaign(config.with_geometry(geometry))
        for geometry in geometries
    }
