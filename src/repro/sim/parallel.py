"""Multiprocess campaign execution.

A full campaign is embarrassingly parallel across benchmarks (each
benchmark's trace generation + per-technique replay is independent), so
this module fans the rows out over a process pool.  Each worker
synthesises its own trace from ``(benchmark, config)`` — nothing large
crosses the process boundary, and determinism is untouched because
seeds derive from names, not from execution order.

``run_campaign_parallel`` returns exactly what
:func:`repro.sim.campaign.run_campaign` returns; a sequential fallback
keeps single-CPU and restricted environments working.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Optional

from repro.sim.campaign import BenchmarkRow, CampaignResult, _run_one
from repro.sim.experiment import ExperimentConfig
from repro.utils.validation import check_positive
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

__all__ = ["run_campaign_parallel"]


def _run_benchmark(args) -> BenchmarkRow:
    """Worker: one benchmark through every technique (module-level so
    it pickles)."""
    benchmark, config = args
    profile = get_profile(benchmark)
    trace = generate_trace(
        profile, config.accesses_per_benchmark, seed=config.seed
    )
    results = {
        technique: _run_one(trace, technique, config)
        for technique in config.techniques
    }
    return BenchmarkRow(benchmark=benchmark, results=results)


def run_campaign_parallel(
    config: ExperimentConfig, processes: Optional[int] = None
) -> CampaignResult:
    """Run the campaign with up to ``processes`` workers.

    ``processes=1`` (or a pool failure, e.g. a sandbox that forbids
    fork) degrades to in-process execution with identical results.
    """
    if processes is not None:
        check_positive("processes", processes)
    jobs = [(benchmark, config) for benchmark in config.benchmarks]
    if processes == 1:
        rows = [_run_benchmark(job) for job in jobs]
        return CampaignResult(config=config, rows=rows)
    try:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            rows = list(pool.map(_run_benchmark, jobs))
    except (OSError, PermissionError):
        rows = [_run_benchmark(job) for job in jobs]
    return CampaignResult(config=config, rows=rows)
