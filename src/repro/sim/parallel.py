"""Multiprocess campaign execution with fault tolerance.

A full campaign is embarrassingly parallel across benchmarks (each
benchmark's trace generation + per-technique replay is independent), so
this module fans the rows out over worker processes.  Each worker
synthesises its own trace from ``(benchmark, config)`` — nothing large
crosses the process boundary, and determinism is untouched because
seeds derive from names, not from execution order.

Execution model
---------------
Every benchmark attempt runs in a **dedicated, supervised child
process** (see :func:`repro.sim.resilience.run_supervised`), driven by
a small pool of supervisor threads in the parent.  A dedicated child —
unlike a slot in a shared ``ProcessPoolExecutor`` — can be killed, so a
hung benchmark costs one ``worker_timeout_s`` instead of the campaign:

* a child exceeding the :class:`RetryPolicy` timeout is terminated and
  retried (``worker.timeout``);
* a child that dies (SIGKILL, OOM, injected crash) is retried
  (``worker.crash``);
* transient exceptions are retried with deterministic backoff
  (``retry.attempt``);
* a benchmark exhausting its budget is quarantined into
  ``CampaignResult.failed_rows`` (``campaign.quarantined``) — the rest
  of the suite still completes unless ``strict=True``.

Row order is pinned to ``config.benchmarks`` regardless of completion
order, and with a ``checkpoint`` every finished row is journaled
immediately, so an interrupted campaign resumes re-running only the
missing benchmarks.

``run_campaign_parallel`` returns exactly what
:func:`repro.sim.campaign.run_campaign` returns; a sequential fallback
keeps single-CPU and restricted environments working.  The fallback is
*observable*: it logs through ``repro.obs``, bumps the
``warning.parallel.pool_fallback`` counter and (when tracing) drops an
instant on the timeline — a campaign silently running at 1/N speed is a
bug, not a feature.

Workers execute rows through the Simulator's batched engine (see
:mod:`repro.engine`); results are bit-identical to scalar execution, so
parallelism and batching compose without affecting determinism.

For trace-file campaigns the ``RPCOL1`` columnar format
(:mod:`repro.trace.colio`) composes with this fan-out: every worker
memory-maps the same file read-only and feeds zero-copy chunks to the
columnar engine (``Simulator(engine="columnar").feed_chunks(...)``),
so the OS page cache backs all workers with one physical copy of the
trace and no per-worker deserialization.  The chunk's grouped
projection (:meth:`repro.engine.columnar.ColumnarChunk.grouped`) is a
pure trace transform, so a worker sweeping several techniques over the
same chunks computes it once, not once per technique.

Telemetry across the pool: trace sinks do not cross process
boundaries, so each worker collects into a private metrics-only
registry and ships its :meth:`MetricsRegistry.state_dict` back with the
row.  A worker-local registry counts as live telemetry, which makes the
controller take its per-access path — campaigns that want maximum
throughput should run without ``--metrics-out``.  Supervisor threads never touch the caller's registry; each job's
metrics state and degradation events are folded in by the main thread
in benchmark order, so the merged output is deterministic (merge is
associative and commutative anyway).  States are merged with a
``worker:<benchmark>`` label (:meth:`MetricsRegistry.merge_worker_state`),
so ``--metrics-out`` reports the campaign aggregate *and* the
per-worker breakdown, and every supervised completion bumps the
``worker.complete`` counter — the reconciliation anchor for the
breakdown.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Event
from typing import Dict, List, Optional, Tuple

from repro.errors import BreakerOpenError, CampaignFailedError, ReproError
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.campaign import (
    BenchmarkRow,
    CampaignHealth,
    CampaignResult,
    _open_campaign_journal,
    _open_result_store,
    _journal_row,
    _report_resume,
    _run_rows_resilient,
    _store_load_row,
    _store_save_row,
    emit_degradation,
    execute_row,
)
from repro.sim.experiment import ExperimentConfig
from repro.sim.resilience import (
    CircuitBreaker,
    FailedRow,
    RetryPolicy,
    active_policy,
    retry_call,
    run_supervised,
)
from repro.utils.validation import check_positive

__all__ = ["run_campaign_parallel"]

#: Worker result: the benchmark row plus the worker-local metrics state
#: (None when the caller did not request telemetry).
_WorkerResult = Tuple[BenchmarkRow, Optional[dict]]


def _run_benchmark(args) -> _WorkerResult:
    """Worker: one benchmark through every technique (module-level so
    it pickles)."""
    benchmark, config, collect_metrics, attempt = args
    telemetry = Telemetry(registry=MetricsRegistry()) if collect_metrics else None
    row = execute_row(benchmark, config, telemetry, attempt=attempt)
    state = telemetry.registry.state_dict() if telemetry is not None else None
    return row, state


@dataclass
class _JobOutcome:
    """Everything one supervisor thread hands back to the main thread."""

    benchmark: str
    row: Optional[BenchmarkRow] = None
    metrics_state: Optional[dict] = None
    failure: Optional[FailedRow] = None
    events: List[Tuple[str, dict]] = field(default_factory=list)
    pool_fallback: bool = False
    skipped: bool = False


def _supervise_job(
    benchmark: str,
    config: ExperimentConfig,
    collect_metrics: bool,
    retry: RetryPolicy,
    journal,
    abort: Event,
    breaker: Optional[CircuitBreaker] = None,
) -> _JobOutcome:
    """Run one benchmark to completion/quarantine from a parent thread.

    Touches no shared telemetry: degradation events are buffered on the
    outcome and replayed by the main thread in deterministic order.
    The journal *is* written from here (it locks internally) so a row
    is durable the moment it exists.  The circuit breaker is shared
    across supervisor threads (it locks internally too).
    """
    outcome = _JobOutcome(benchmark=benchmark)

    def on_event(name: str, **details) -> None:
        outcome.events.append((name, details))

    if abort.is_set():
        outcome.skipped = True
        return outcome

    def attempt_fn(attempt: int) -> _WorkerResult:
        args = (benchmark, config, collect_metrics, attempt)
        try:
            return run_supervised(
                _run_benchmark,
                args,
                timeout_s=retry.worker_timeout_s,
                label=f"benchmark {benchmark}",
                on_event=on_event,
                heartbeat_interval_s=retry.heartbeat_interval_s,
            )
        except (OSError, PermissionError) as exc:
            # Process creation itself failed (e.g. a sandbox that
            # forbids fork): degrade to in-process execution for this
            # job.  Timeouts cannot be enforced in-process; retries and
            # quarantine still apply.
            outcome.pool_fallback = True
            on_event("parallel.pool_fallback", error=f"{type(exc).__name__}: {exc}")
            return _run_benchmark(args)

    try:
        row, state = retry_call(
            attempt_fn,
            policy=retry,
            seed=config.seed,
            name=benchmark,
            on_event=on_event,
            breaker=breaker,
        )
    except ReproError as exc:  # repro-lint: disable=RPR205
        # Not silent: _run_pool emits breaker.skip / campaign.quarantined
        # for this FailedRow when folding outcomes, in deterministic
        # submission order.  Emitting from the supervisor thread here
        # would double-count and race the ordering.
        skipped = isinstance(exc, BreakerOpenError)
        outcome.failure = FailedRow(
            benchmark=benchmark,
            attempts=(
                breaker.failures(benchmark)
                if skipped and breaker is not None
                else retry.max_attempts
            ),
            error_type=type(exc).__name__,
            error=str(exc),
            breaker_skipped=skipped,
        )
        return outcome
    outcome.row = row
    outcome.metrics_state = state
    _journal_row(journal, row)
    return outcome


def run_campaign_parallel(
    config: ExperimentConfig,
    processes: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    *,
    retry: Optional[RetryPolicy] = None,
    strict: Optional[bool] = None,
    checkpoint=None,
    result_cache=None,
) -> CampaignResult:
    """Run the campaign with up to ``processes`` supervised workers.

    ``processes=1`` is an explicit request for in-process execution
    with the caller's full telemetry (sink included); it still honours
    retries, quarantine and checkpointing, but not worker timeouts.
    Parameters left as None fall back to the ambient
    :class:`ExecutionPolicy`.

    The result store is touched only from the coordinating thread:
    lookups happen before any job is dispatched, commits after the
    fold — supervisor threads and worker processes never see it.
    """
    if processes is not None:
        check_positive("processes", processes)
    policy = active_policy()
    retry = retry if retry is not None else policy.retry
    strict = strict if strict is not None else policy.strict
    checkpoint = checkpoint if checkpoint is not None else policy.checkpoint
    result_cache = (
        result_cache if result_cache is not None else policy.result_cache
    )
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    collect_metrics = telem.enabled

    store = _open_result_store(result_cache, policy, telem)
    journal, resumed = _open_campaign_journal(checkpoint, config)
    cached: Dict[str, BenchmarkRow] = {}
    healed = 0
    try:
        _report_resume(telem, journal, len(resumed))
        pending = [b for b in config.benchmarks if b not in resumed]
        if store is not None:
            still_pending = []
            for benchmark in pending:
                corrupt_before = store.counters["corrupt"]
                row = _store_load_row(store, config, benchmark, telem)
                healed += store.counters["corrupt"] - corrupt_before
                if row is not None:
                    cached[benchmark] = row
                    _journal_row(journal, row)
                else:
                    still_pending.append(benchmark)
            pending = still_pending
        breaker = (
            CircuitBreaker(retry.breaker_threshold)
            if retry.breaker_threshold is not None
            else None
        )
        if processes == 1:
            executed, failed = _run_rows_resilient(
                pending, config, telemetry, retry, strict, journal, telem,
                breaker=breaker, store=store,
            )
        else:
            executed, failed = _run_pool(
                pending,
                config,
                collect_metrics,
                retry,
                strict,
                journal,
                telem,
                processes,
                breaker=breaker,
                store=store,
            )
    finally:
        if journal is not None:
            journal.close()
    completed: Dict[str, BenchmarkRow] = {}
    completed.update(resumed)
    completed.update(cached)
    completed.update(executed)
    rows = [
        completed[benchmark]
        for benchmark in config.benchmarks
        if benchmark in completed
    ]
    if collect_metrics and processes != 1:
        telem.registry.set_gauge("parallel.workers", processes or 0)
    health = CampaignHealth(
        total=len(config.benchmarks),
        cached=len(resumed) + len(cached),
        recomputed=len(executed),
        quarantined=sum(1 for f in failed if not f.breaker_skipped),
        breaker_skipped=sum(1 for f in failed if f.breaker_skipped),
        checkpoint_resumed=len(resumed),
        healed=healed,
    )
    return CampaignResult(
        config=config, rows=rows, failed_rows=failed, health=health
    )


def _run_pool(
    pending: List[str],
    config: ExperimentConfig,
    collect_metrics: bool,
    retry: RetryPolicy,
    strict: bool,
    journal,
    telem: Telemetry,
    processes: Optional[int],
    breaker: Optional[CircuitBreaker] = None,
    store=None,
) -> Tuple[Dict[str, BenchmarkRow], List[FailedRow]]:
    """Fan ``pending`` out over supervisor threads; fold results back
    in deterministic (submission) order."""
    completed: Dict[str, BenchmarkRow] = {}
    failed: List[FailedRow] = []
    if not pending:
        return completed, failed
    workers = min(processes or os.cpu_count() or 1, len(pending))
    abort = Event()
    with ThreadPoolExecutor(max_workers=max(1, workers)) as pool:
        futures = [
            pool.submit(
                _supervise_job, benchmark, config, collect_metrics, retry,
                journal, abort, breaker,
            )
            for benchmark in pending
        ]
        if strict:
            # Fail fast: stop launching new jobs once any benchmark is
            # lost for good.  Jobs already running finish their attempt.
            for future in futures:
                if future.result().failure is not None:
                    abort.set()
                    break
        outcomes = [future.result() for future in futures]

    pool_fallback_errors = []
    for outcome in outcomes:  # deterministic: submission order
        if outcome.skipped:
            continue
        for name, details in outcome.events:
            if name == "parallel.pool_fallback":
                pool_fallback_errors.append(details.get("error", ""))
                continue
            emit_degradation(telem, name, **details)
        if outcome.failure is not None:
            failed.append(outcome.failure)
            if outcome.failure.breaker_skipped:
                emit_degradation(
                    telem, "breaker.skip", benchmark=outcome.benchmark
                )
            else:
                emit_degradation(
                    telem,
                    "campaign.quarantined",
                    benchmark=outcome.benchmark,
                    error=outcome.failure.error_type,
                )
            continue
        completed[outcome.benchmark] = outcome.row
        if store is not None:
            _store_save_row(store, config, outcome.row, telem)
        if outcome.metrics_state is not None and collect_metrics:
            # Labelled merge: the aggregate gets the worker's counters
            # and the state is also filed under its worker id, so
            # --metrics-out carries the per-worker breakdown.  The id is
            # the benchmark name — workers are per-benchmark processes,
            # and pids would break run-to-run determinism.
            telem.registry.merge_worker_state(
                outcome.metrics_state, worker_id=f"worker:{outcome.benchmark}"
            )
    if pool_fallback_errors:
        telem.warn(
            "parallel.pool_fallback",
            f"process pool unavailable ({pool_fallback_errors[0]}); "
            "benchmarks ran in-process",
            benchmarks=len(pool_fallback_errors),
        )
    if strict and failed:
        raise CampaignFailedError(
            "campaign failed (strict): "
            + "; ".join(f.describe() for f in failed),
            failed_rows=failed,
        )
    return completed, failed
