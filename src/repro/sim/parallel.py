"""Multiprocess campaign execution.

A full campaign is embarrassingly parallel across benchmarks (each
benchmark's trace generation + per-technique replay is independent), so
this module fans the rows out over a process pool.  Each worker
synthesises its own trace from ``(benchmark, config)`` — nothing large
crosses the process boundary, and determinism is untouched because
seeds derive from names, not from execution order.

``run_campaign_parallel`` returns exactly what
:func:`repro.sim.campaign.run_campaign` returns; a sequential fallback
keeps single-CPU and restricted environments working.  The fallback is
*observable*: it logs through ``repro.obs``, bumps the
``warning.parallel.pool_fallback`` counter and (when tracing) drops an
instant on the timeline — a campaign silently running at 1/N speed is a
bug, not a feature.

Telemetry across the pool: trace sinks do not cross process
boundaries, so each worker collects into a private metrics-only
registry and ships its :meth:`MetricsRegistry.state_dict` back with the
row; the parent folds the states into the caller's registry (merge is
associative, so arrival order is irrelevant).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.campaign import BenchmarkRow, CampaignResult, _run_one
from repro.sim.experiment import ExperimentConfig
from repro.utils.validation import check_positive
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

__all__ = ["run_campaign_parallel"]

#: Worker result: the benchmark row plus the worker-local metrics state
#: (None when the caller did not request telemetry).
_WorkerResult = Tuple[BenchmarkRow, Optional[dict]]


def _run_benchmark(args) -> _WorkerResult:
    """Worker: one benchmark through every technique (module-level so
    it pickles)."""
    benchmark, config, collect_metrics = args
    telemetry = Telemetry(registry=MetricsRegistry()) if collect_metrics else None
    profile = get_profile(benchmark)
    trace = generate_trace(
        profile, config.accesses_per_benchmark, seed=config.seed
    )
    results = {
        technique: _run_one(trace, technique, config, telemetry)
        for technique in config.techniques
    }
    row = BenchmarkRow(benchmark=benchmark, results=results)
    state = telemetry.registry.state_dict() if telemetry is not None else None
    return row, state


def run_campaign_parallel(
    config: ExperimentConfig,
    processes: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> CampaignResult:
    """Run the campaign with up to ``processes`` workers.

    ``processes=1`` (or a pool failure, e.g. a sandbox that forbids
    fork) degrades to in-process execution with identical results; the
    degradation is reported through ``telemetry.warn`` so it never
    happens invisibly.
    """
    if processes is not None:
        check_positive("processes", processes)
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    collect_metrics = telem.enabled
    jobs = [
        (benchmark, config, collect_metrics) for benchmark in config.benchmarks
    ]
    if processes == 1:
        # Explicit request, not a degradation: run with the caller's
        # full telemetry (sink included) in-process.
        rows = [
            _run_one_benchmark_sequential(job, telemetry) for job in jobs
        ]
        return CampaignResult(config=config, rows=rows)
    try:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            outputs = list(pool.map(_run_benchmark, jobs))
    except (OSError, PermissionError) as exc:
        telem.warn(
            "parallel.pool_fallback",
            f"process pool unavailable ({type(exc).__name__}: {exc}); "
            "running the campaign sequentially",
            benchmarks=len(jobs),
        )
        rows = [
            _run_one_benchmark_sequential(job, telemetry) for job in jobs
        ]
        return CampaignResult(config=config, rows=rows)
    rows = []
    for row, state in outputs:
        rows.append(row)
        if state is not None and collect_metrics:
            telem.registry.merge_state(state)
    if collect_metrics:
        telem.registry.set_gauge("parallel.workers", processes or 0)
    return CampaignResult(config=config, rows=rows)


def _run_one_benchmark_sequential(
    job, telemetry: Optional[Telemetry]
) -> BenchmarkRow:
    """In-process version of the worker, with full caller telemetry."""
    benchmark, config, _collect = job
    profile = get_profile(benchmark)
    trace = generate_trace(
        profile, config.accesses_per_benchmark, seed=config.seed
    )
    results = {
        technique: _run_one(trace, technique, config, telemetry)
        for technique in config.techniques
    }
    return BenchmarkRow(benchmark=benchmark, results=results)
