"""Simulation driver: traces -> controllers -> results.

``simulator``
    Run one trace through one controller.
``comparison``
    Replay one materialised trace through several techniques on fresh
    caches, and compute the paper's access-frequency reduction metrics.
``experiment``
    :class:`ExperimentConfig` — everything one run depends on.
``campaign``
    Full benchmark-suite sweeps (the shape of Figures 9-11).
``resilience``
    Retry policies, supervised worker processes, ambient execution
    policies — how long campaigns survive faults.
``checkpoint``
    JSONL journaling so interrupted campaigns resume instead of
    restarting.
"""

from repro.sim.simulator import SimulationResult, Simulator, run_simulation
from repro.sim.comparison import ComparisonResult, compare_techniques
from repro.sim.experiment import ExperimentConfig
from repro.sim.campaign import (
    BenchmarkRow,
    CampaignResult,
    run_campaign,
    run_geometry_sweep,
)
from repro.sim.checkpoint import (
    CheckpointJournal,
    CheckpointStore,
    config_fingerprint,
)
from repro.sim.parallel import run_campaign_parallel
from repro.sim.resilience import (
    ExecutionPolicy,
    FailedRow,
    RetryPolicy,
    active_policy,
    execution_policy,
)
from repro.sim.stability import StabilityResult, seed_stability

__all__ = [
    "StabilityResult",
    "seed_stability",
    "Simulator",
    "SimulationResult",
    "run_simulation",
    "ComparisonResult",
    "compare_techniques",
    "ExperimentConfig",
    "BenchmarkRow",
    "CampaignResult",
    "run_campaign",
    "run_campaign_parallel",
    "run_geometry_sweep",
    "RetryPolicy",
    "FailedRow",
    "ExecutionPolicy",
    "execution_policy",
    "active_policy",
    "CheckpointJournal",
    "CheckpointStore",
    "config_fingerprint",
]
