"""Simulation driver: traces -> controllers -> results.

``simulator``
    Run one trace through one controller.
``comparison``
    Replay one materialised trace through several techniques on fresh
    caches, and compute the paper's access-frequency reduction metrics.
``experiment``
    :class:`ExperimentConfig` — everything one run depends on.
``campaign``
    Full benchmark-suite sweeps (the shape of Figures 9-11).
"""

from repro.sim.simulator import SimulationResult, Simulator, run_simulation
from repro.sim.comparison import ComparisonResult, compare_techniques
from repro.sim.experiment import ExperimentConfig
from repro.sim.campaign import (
    BenchmarkRow,
    CampaignResult,
    run_campaign,
    run_geometry_sweep,
)
from repro.sim.stability import StabilityResult, seed_stability

__all__ = [
    "StabilityResult",
    "seed_stability",
    "Simulator",
    "SimulationResult",
    "run_simulation",
    "ComparisonResult",
    "compare_techniques",
    "ExperimentConfig",
    "BenchmarkRow",
    "CampaignResult",
    "run_campaign",
    "run_geometry_sweep",
]
