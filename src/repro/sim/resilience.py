"""Fault-tolerant execution primitives for campaign runs.

A full campaign sweeps 25 benchmarks x 4 techniques; at production
trace lengths that is hours of embarrassingly-parallel work, and one
hung worker or one transient exception must not discard everything
already computed.  This module provides the three building blocks the
campaign runners compose:

:class:`RetryPolicy`
    Bounded retry with exponential backoff and *deterministic* jitter
    (seeded from the experiment seed and the benchmark name, so two
    runs of the same campaign back off identically).

:func:`retry_call`
    Drives a callable through a policy, retrying :class:`ReproError`
    failures and re-raising once the attempt budget is exhausted.
    Programming errors (``TypeError`` & co.) are never retried.

:func:`run_supervised`
    Runs a function in a dedicated child process under a wall-clock
    timeout.  A hung child is terminated and surfaces as
    :class:`WorkerTimeoutError`; a child that dies without reporting
    (SIGKILL, OOM, ``os._exit``) surfaces as
    :class:`WorkerCrashError`.  Both are retryable.

:class:`ExecutionPolicy` / :func:`execution_policy`
    An ambient policy stack so the CLI can switch a whole command —
    including campaigns started deep inside figure producers — to a
    given retry/timeout/checkpoint configuration without threading
    arguments through every layer.

Degradation events (``retry.attempt``, ``worker.timeout``,
``worker.crash``) are reported through ``on_event`` callbacks rather
than written to telemetry directly: the parallel runner supervises
jobs from threads, and replaying the events from the main thread keeps
the metrics registry single-threaded and the merged output
deterministic.
"""

from __future__ import annotations

import multiprocessing
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path
from typing import Any, Callable, List, Optional, Union

from repro.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.utils.rng import derive_seed

__all__ = [
    "RetryPolicy",
    "FailedRow",
    "ExecutionPolicy",
    "execution_policy",
    "active_policy",
    "retry_call",
    "run_supervised",
]

#: Event callback signature: ``on_event(name, **details)``.
EventCallback = Callable[..., None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attributes:
        max_attempts: total tries per benchmark (1 = no retry).
        base_delay_s: backoff before the second attempt.
        max_delay_s: backoff ceiling.
        multiplier: backoff growth factor per attempt.
        jitter: +/- fraction applied to each delay; the draw is
            deterministic in ``(seed, name, attempt)`` so reruns are
            bit-repeatable.
        worker_timeout_s: per-attempt wall-clock budget for supervised
            workers (None = unlimited; only enforced for
            process-isolated execution).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    worker_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.worker_timeout_s is not None and self.worker_timeout_s <= 0:
            raise ConfigurationError(
                f"worker_timeout_s must be positive, got {self.worker_timeout_s}"
            )

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Fail on the first error — the pre-resilience behaviour."""
        return cls(max_attempts=1)

    def with_timeout(self, worker_timeout_s: Optional[float]) -> "RetryPolicy":
        return replace(self, worker_timeout_s=worker_timeout_s)

    def backoff_delay(self, attempt: int, seed: int = 0, name: str = "") -> float:
        """Sleep before attempt ``attempt + 1`` (attempts count from 1)."""
        raw = self.base_delay_s * self.multiplier ** (attempt - 1)
        raw = min(raw, self.max_delay_s)
        if not self.jitter or not raw:
            return raw
        # Deterministic uniform draw in [1 - jitter, 1 + jitter].
        unit = derive_seed(seed, "retry", name, str(attempt)) / float(2**64)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)


@dataclass(frozen=True)
class FailedRow:
    """One benchmark quarantined after exhausting its retry budget."""

    benchmark: str
    attempts: int
    error_type: str
    error: str

    def describe(self) -> str:
        return (
            f"{self.benchmark}: {self.error_type} after "
            f"{self.attempts} attempt(s): {self.error}"
        )


@dataclass(frozen=True)
class ExecutionPolicy:
    """Ambient campaign-execution configuration.

    The CLI builds one from its flags and installs it with
    :func:`execution_policy`; :func:`repro.sim.campaign.run_campaign`
    and friends consult :func:`active_policy` for any parameter the
    caller did not pass explicitly.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    strict: bool = False
    checkpoint: Optional[Union[str, Path]] = None
    processes: Optional[int] = None


_DEFAULT_POLICY = ExecutionPolicy()
_policy_stack: List[ExecutionPolicy] = []


def active_policy() -> ExecutionPolicy:
    """The innermost installed policy (or the defaults)."""
    return _policy_stack[-1] if _policy_stack else _DEFAULT_POLICY


@contextmanager
def execution_policy(policy: ExecutionPolicy):
    """Install ``policy`` as the ambient execution policy for a block."""
    _policy_stack.append(policy)
    try:
        yield policy
    finally:
        _policy_stack.pop()


def retry_call(
    fn: Callable[[int], Any],
    policy: RetryPolicy,
    seed: int = 0,
    name: str = "",
    on_event: Optional[EventCallback] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Call ``fn(attempt)`` under ``policy``; attempts count from 1.

    Retries any :class:`ReproError` (which includes worker timeouts and
    crashes); anything else — a programming error — propagates
    immediately.  The last failure is re-raised once the budget is
    spent, so callers see the real error; the attempt count is
    ``policy.max_attempts`` by construction.
    """
    attempt = 1
    while True:
        try:
            return fn(attempt)
        except ReproError as exc:
            if attempt >= policy.max_attempts:
                raise
            delay = policy.backoff_delay(attempt, seed=seed, name=name)
            if on_event is not None:
                on_event(
                    "retry.attempt",
                    target=name,
                    attempt=attempt,
                    error=type(exc).__name__,
                    backoff_s=round(delay, 6),
                )
            if delay:
                sleep(delay)
            attempt += 1


# -- supervised child-process execution ---------------------------------------------


def _child_entry(conn, target, args) -> None:
    """Child-side shim: run ``target(args)`` and report over the pipe."""
    try:
        result = target(args)
    except BaseException as exc:  # noqa: BLE001 - serialised, not swallowed
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        finally:
            conn.close()
        return
    conn.send(("ok", result))
    conn.close()


def _rebuild_exception(type_name: str, message: str) -> Exception:
    """Turn a worker's (type name, message) report back into an exception."""
    import repro.errors as errors_module

    cls = getattr(errors_module, type_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    try:
        from repro.faultinject.plan import InjectedFaultError

        if type_name == "InjectedFaultError":
            return InjectedFaultError(message)
    except ImportError:  # pragma: no cover - faultinject is in-tree
        pass
    return SimulationError(f"worker raised {type_name}: {message}")


def run_supervised(
    target: Callable[[Any], Any],
    args: Any,
    timeout_s: Optional[float] = None,
    label: str = "worker",
    on_event: Optional[EventCallback] = None,
) -> Any:
    """Run ``target(args)`` in a dedicated child process.

    Unlike a shared process pool, a dedicated child can be *killed*:
    when the wall clock passes ``timeout_s`` the child is terminated
    (then SIGKILLed if it ignores SIGTERM) and
    :class:`WorkerTimeoutError` is raised.  A child that exits without
    sending a result raises :class:`WorkerCrashError` with its exit
    code.  Exceptions the child caught and reported are rebuilt and
    re-raised in the parent.

    ``OSError``/``PermissionError`` from process creation propagate
    unchanged so callers can fall back to in-process execution in
    sandboxes that forbid fork.
    """
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_entry, args=(child_conn, target, args), daemon=True
    )
    try:
        proc.start()
    except BaseException:
        parent_conn.close()
        child_conn.close()
        raise
    child_conn.close()
    try:
        # Wake on either a result or child death, whichever is first —
        # a crashed child must not cost the full timeout.
        ready = _wait_connections([parent_conn, proc.sentinel], timeout=timeout_s)
        if parent_conn in ready:
            # Ready can also mean EOF: a child that died without
            # sending (os._exit, SIGKILL) closes its end of the pipe.
            status = _recv_or_none(parent_conn)
            proc.join()
        elif ready:
            # Child died; give a racing result a moment to drain.
            status = _recv_or_none(parent_conn) if parent_conn.poll(0.25) else None
            proc.join()
        else:
            _terminate(proc)
            if on_event is not None:
                on_event(
                    "worker.timeout", target=label, timeout_s=timeout_s, pid=proc.pid
                )
            raise WorkerTimeoutError(
                f"{label}: worker (pid {proc.pid}) exceeded its "
                f"{timeout_s:g}s budget and was terminated"
            )
    finally:
        parent_conn.close()
    if status is None:
        if on_event is not None:
            on_event("worker.crash", target=label, exit_code=proc.exitcode)
        raise WorkerCrashError(
            f"{label}: worker died with exit code {proc.exitcode} "
            "before returning a result"
        )
    kind = status[0]
    if kind == "ok":
        if on_event is not None:
            # The success-side twin of worker.crash/worker.timeout: the
            # merged campaign metrics show how many supervised workers
            # actually completed (the counter the per-worker telemetry
            # breakdown is reconciled against).
            on_event("worker.complete", target=label, pid=proc.pid)
        return status[1]
    _, type_name, message = status
    raise _rebuild_exception(type_name, message)


def _recv_or_none(conn) -> Optional[tuple]:
    try:
        return conn.recv()
    except EOFError:
        return None


def _terminate(proc, grace_s: float = 2.0) -> None:
    """Terminate, escalating to SIGKILL if the child ignores SIGTERM."""
    proc.terminate()
    proc.join(grace_s)
    if proc.is_alive():  # pragma: no cover - needs a SIGTERM-immune child
        proc.kill()
        proc.join(grace_s)
