"""Fault-tolerant execution primitives for campaign runs.

A full campaign sweeps 25 benchmarks x 4 techniques; at production
trace lengths that is hours of embarrassingly-parallel work, and one
hung worker or one transient exception must not discard everything
already computed.  This module provides the three building blocks the
campaign runners compose:

:class:`RetryPolicy`
    Bounded retry with exponential backoff and *deterministic* jitter
    (seeded from the experiment seed and the benchmark name, so two
    runs of the same campaign back off identically).

:func:`retry_call`
    Drives a callable through a policy, retrying :class:`ReproError`
    failures and re-raising once the attempt budget is exhausted.
    Programming errors (``TypeError`` & co.) are never retried.

:class:`CircuitBreaker`
    Per-benchmark failure counter.  After ``threshold`` failures the
    breaker *opens* and :func:`retry_call` stops retrying that
    benchmark immediately (:class:`BreakerOpenError`) instead of
    burning the rest of the attempt budget on a row that keeps
    failing; the campaign quarantines it as *breaker-skipped* and
    carries on — graceful degradation instead of serial grinding.

:func:`run_supervised`
    Runs a function in a dedicated child process under a wall-clock
    timeout.  A hung child is terminated and surfaces as
    :class:`WorkerTimeoutError`; a child that dies without reporting
    (SIGKILL, OOM, ``os._exit``) surfaces as
    :class:`WorkerCrashError`.  Both are retryable.  With a heartbeat
    interval set, the child also streams liveness beats over the
    result pipe; a worker that stops beating — frozen by SIGSTOP,
    swapped out, or dead in a way that leaves the pipe open — is
    killed after a few missed beats rather than after the full
    wall-clock budget.  (Beats come from a dedicated child thread, so
    a *computing* worker keeps beating: heartbeats detect frozen
    processes early, the wall clock remains the backstop for
    livelock.)

:class:`ExecutionPolicy` / :func:`execution_policy`
    An ambient policy stack so the CLI can switch a whole command —
    including campaigns started deep inside figure producers — to a
    given retry/timeout/checkpoint configuration without threading
    arguments through every layer.

Degradation events (``retry.attempt``, ``worker.timeout``,
``worker.crash``) are reported through ``on_event`` callbacks rather
than written to telemetry directly: the parallel runner supervises
jobs from threads, and replaying the events from the main thread keeps
the metrics registry single-threaded and the merged output
deterministic.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import (
    BreakerOpenError,
    ConfigurationError,
    ReproError,
    SimulationError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.utils.rng import derive_seed

__all__ = [
    "RetryPolicy",
    "FailedRow",
    "CircuitBreaker",
    "ExecutionPolicy",
    "execution_policy",
    "active_policy",
    "retry_call",
    "run_supervised",
]

#: Event callback signature: ``on_event(name, **details)``.
EventCallback = Callable[..., None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attributes:
        max_attempts: total tries per benchmark (1 = no retry).
        base_delay_s: backoff before the second attempt.
        max_delay_s: backoff ceiling.
        multiplier: backoff growth factor per attempt.
        jitter: +/- fraction applied to each delay; the draw is
            deterministic in ``(seed, name, attempt)`` so reruns are
            bit-repeatable.
        worker_timeout_s: per-attempt wall-clock budget for supervised
            workers (None = unlimited; only enforced for
            process-isolated execution).
        breaker_threshold: distinct failures per benchmark before its
            circuit breaker opens and the row is skipped instead of
            retried (None = breakers disabled, the pre-breaker
            behaviour).
        heartbeat_interval_s: liveness beat period for supervised
            workers (None = heartbeats disabled).  A worker that
            misses several consecutive beats is killed early instead
            of waiting out ``worker_timeout_s``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    worker_timeout_s: Optional[float] = None
    breaker_threshold: Optional[int] = None
    heartbeat_interval_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.worker_timeout_s is not None and self.worker_timeout_s <= 0:
            raise ConfigurationError(
                f"worker_timeout_s must be positive, got {self.worker_timeout_s}"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if (
            self.heartbeat_interval_s is not None
            and self.heartbeat_interval_s <= 0
        ):
            raise ConfigurationError(
                "heartbeat_interval_s must be positive, got "
                f"{self.heartbeat_interval_s}"
            )

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Fail on the first error — the pre-resilience behaviour."""
        return cls(max_attempts=1)

    def with_timeout(self, worker_timeout_s: Optional[float]) -> "RetryPolicy":
        return replace(self, worker_timeout_s=worker_timeout_s)

    def backoff_delay(self, attempt: int, seed: int = 0, name: str = "") -> float:
        """Sleep before attempt ``attempt + 1`` (attempts count from 1)."""
        raw = self.base_delay_s * self.multiplier ** (attempt - 1)
        raw = min(raw, self.max_delay_s)
        if not self.jitter or not raw:
            return raw
        # Deterministic uniform draw in [1 - jitter, 1 + jitter].
        unit = derive_seed(seed, "retry", name, str(attempt)) / float(2**64)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)


@dataclass(frozen=True)
class FailedRow:
    """One benchmark quarantined after exhausting its retry budget.

    ``breaker_skipped`` marks rows abandoned by an *open circuit
    breaker* rather than a spent retry budget — the degradation ladder
    gave up on them early to protect campaign throughput.
    """

    benchmark: str
    attempts: int
    error_type: str
    error: str
    breaker_skipped: bool = False

    def describe(self) -> str:
        how = "skipped by open breaker" if self.breaker_skipped else "after"
        return (
            f"{self.benchmark}: {self.error_type} {how} "
            f"{self.attempts} attempt(s): {self.error}"
        )


class CircuitBreaker:
    """Per-target failure counter with a trip threshold.

    Shared by every retry loop in a campaign (the parallel runner's
    supervisor threads included — mutation is lock-protected).  Once a
    target accumulates ``threshold`` failures its breaker *opens*:
    :func:`retry_call` refuses further work on it and raises
    :class:`BreakerOpenError`, which the campaign records as a
    breaker-skipped quarantined row.
    """

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        self.threshold = threshold
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {}
        self._open: Dict[str, bool] = {}

    def failures(self, target: str) -> int:
        with self._lock:
            return self._failures.get(target, 0)

    def is_open(self, target: str) -> bool:
        with self._lock:
            return self._open.get(target, False)

    def record_failure(self, target: str) -> bool:
        """Count one failure; True the moment this trip *opens* it."""
        with self._lock:
            count = self._failures.get(target, 0) + 1
            self._failures[target] = count
            if count >= self.threshold and not self._open.get(target, False):
                self._open[target] = True
                return True
            return False

    def record_success(self, target: str) -> None:
        """A success resets the count (a closed breaker heals)."""
        with self._lock:
            if not self._open.get(target, False):
                self._failures.pop(target, None)

    def open_targets(self) -> List[str]:
        with self._lock:
            return sorted(t for t, is_open in self._open.items() if is_open)


@dataclass(frozen=True)
class ExecutionPolicy:
    """Ambient campaign-execution configuration.

    The CLI builds one from its flags and installs it with
    :func:`execution_policy`; :func:`repro.sim.campaign.run_campaign`
    and friends consult :func:`active_policy` for any parameter the
    caller did not pass explicitly.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    strict: bool = False
    checkpoint: Optional[Union[str, Path]] = None
    processes: Optional[int] = None
    #: Root directory of the content-addressed result store (None =
    #: no caching).  The campaign runners open a
    #: :class:`repro.store.ResultStore` here and serve cached rows
    #: without invoking the simulator.
    result_cache: Optional[Union[str, Path]] = None
    #: LRU size bound for the result store (None = unbounded).
    result_cache_max_bytes: Optional[int] = None
    #: Energy/area estimator backend spec ("auto" routes each query to
    #: the most accurate capable backend; "analytical"/"library" force
    #: one).  Analysis producers that were not handed an explicit
    #: registry consult this.
    estimator: str = "auto"
    #: Directory (or file) of the durable estimation-record cache
    #: (None = estimates are recomputed every run).
    estimator_cache: Optional[Union[str, Path]] = None


_DEFAULT_POLICY = ExecutionPolicy()
_policy_stack: List[ExecutionPolicy] = []


def active_policy() -> ExecutionPolicy:
    """The innermost installed policy (or the defaults)."""
    return _policy_stack[-1] if _policy_stack else _DEFAULT_POLICY


@contextmanager
def execution_policy(policy: ExecutionPolicy):
    """Install ``policy`` as the ambient execution policy for a block."""
    _policy_stack.append(policy)
    try:
        yield policy
    finally:
        _policy_stack.pop()


def retry_call(
    fn: Callable[[int], Any],
    policy: RetryPolicy,
    seed: int = 0,
    name: str = "",
    on_event: Optional[EventCallback] = None,
    sleep: Callable[[float], None] = time.sleep,
    breaker: Optional[CircuitBreaker] = None,
) -> Any:
    """Call ``fn(attempt)`` under ``policy``; attempts count from 1.

    Retries any :class:`ReproError` (which includes worker timeouts and
    crashes); anything else — a programming error — propagates
    immediately.  The last failure is re-raised once the budget is
    spent, so callers see the real error; the attempt count is
    ``policy.max_attempts`` by construction.

    With a ``breaker``, every failure is recorded against ``name``;
    once the breaker opens the retry loop stops immediately — even
    with budget left — and raises :class:`BreakerOpenError` (emitting
    ``breaker.open`` at the moment it trips).  A breaker already open
    on entry refuses the call outright.
    """
    attempt = 1
    while True:
        if breaker is not None and breaker.is_open(name):
            raise BreakerOpenError(
                f"{name}: circuit breaker is open after "
                f"{breaker.failures(name)} failure(s); refusing further "
                "attempts"
            )
        try:
            result = fn(attempt)
        except BreakerOpenError:
            raise
        except ReproError as exc:
            if breaker is not None:
                opened = breaker.record_failure(name)
                if opened and on_event is not None:
                    on_event(
                        "breaker.open",
                        target=name,
                        failures=breaker.failures(name),
                        error=type(exc).__name__,
                    )
                if breaker.is_open(name):
                    raise BreakerOpenError(
                        f"{name}: circuit breaker opened after "
                        f"{breaker.failures(name)} failure(s); last error: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
            if attempt >= policy.max_attempts:
                raise
            delay = policy.backoff_delay(attempt, seed=seed, name=name)
            if on_event is not None:
                on_event(
                    "retry.attempt",
                    target=name,
                    attempt=attempt,
                    error=type(exc).__name__,
                    backoff_s=round(delay, 6),
                )
            if delay:
                sleep(delay)
            attempt += 1
        else:
            if breaker is not None:
                breaker.record_success(name)
            return result


# -- supervised child-process execution ---------------------------------------------


#: A worker is declared stalled after this many silent heartbeat
#: periods.  Small enough to beat any realistic wall-clock budget,
#: large enough that one slow scheduler tick is not a death sentence.
_STALL_FACTOR = 4.0


def _child_entry(conn, target, args, heartbeat_interval_s=None) -> None:
    """Child-side shim: run ``target(args)`` and report over the pipe.

    With a heartbeat interval, a daemon thread streams ``("beat",)``
    tuples over the same pipe (send-lock serialised against the final
    result) so the supervisor can tell a frozen process from a slow
    one.
    """
    send_lock = threading.Lock()
    stop_beating = threading.Event()
    if heartbeat_interval_s:

        def _beat() -> None:
            while not stop_beating.wait(heartbeat_interval_s):
                try:
                    with send_lock:
                        conn.send(("beat",))
                except OSError:
                    return

        threading.Thread(target=_beat, daemon=True).start()
    try:
        result = target(args)
    except BaseException as exc:  # noqa: BLE001  # repro-lint: disable=RPR205
        # Not silent: the exception is serialised over the pipe and the
        # parent rebuilds and re-raises it (_rebuild_exception) — the
        # handler body *is* the error channel.
        stop_beating.set()
        try:
            with send_lock:
                conn.send(("error", type(exc).__name__, str(exc)))
        finally:
            conn.close()
        return
    stop_beating.set()
    with send_lock:
        conn.send(("ok", result))
    conn.close()


def _rebuild_exception(type_name: str, message: str) -> Exception:
    """Turn a worker's (type name, message) report back into an exception."""
    import repro.errors as errors_module

    cls = getattr(errors_module, type_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    try:
        from repro.faultinject.plan import InjectedFaultError

        if type_name == "InjectedFaultError":
            return InjectedFaultError(message)
    except ImportError:  # pragma: no cover - faultinject is in-tree
        pass
    return SimulationError(f"worker raised {type_name}: {message}")


def run_supervised(
    target: Callable[[Any], Any],
    args: Any,
    timeout_s: Optional[float] = None,
    label: str = "worker",
    on_event: Optional[EventCallback] = None,
    heartbeat_interval_s: Optional[float] = None,
) -> Any:
    """Run ``target(args)`` in a dedicated child process.

    Unlike a shared process pool, a dedicated child can be *killed*:
    when the wall clock passes ``timeout_s`` the child is terminated
    (then SIGKILLed if it ignores SIGTERM) and
    :class:`WorkerTimeoutError` is raised.  A child that exits without
    sending a result raises :class:`WorkerCrashError` with its exit
    code.  Exceptions the child caught and reported are rebuilt and
    re-raised in the parent.

    ``OSError``/``PermissionError`` from process creation propagate
    unchanged so callers can fall back to in-process execution in
    sandboxes that forbid fork.
    """
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_entry,
        args=(child_conn, target, args, heartbeat_interval_s),
        daemon=True,
    )
    try:
        proc.start()
    except BaseException:
        parent_conn.close()
        child_conn.close()
        raise
    child_conn.close()
    deadline = (
        time.monotonic() + timeout_s if timeout_s is not None else None
    )
    stall_budget = (
        heartbeat_interval_s * _STALL_FACTOR
        if heartbeat_interval_s is not None
        else None
    )
    last_signal = time.monotonic()
    try:
        while True:
            now = time.monotonic()
            waits = []
            if deadline is not None:
                waits.append(deadline - now)
            if stall_budget is not None:
                waits.append(last_signal + stall_budget - now)
            wait_timeout = max(0.0, min(waits)) if waits else None
            # Wake on a message (result or beat) or child death,
            # whichever is first — a crashed child must not cost the
            # full timeout.
            ready = _wait_connections(
                [parent_conn, proc.sentinel], timeout=wait_timeout
            )
            if parent_conn in ready:
                # Ready can also mean EOF: a child that died without
                # sending (os._exit, SIGKILL) closes its end of the pipe.
                status = _recv_or_none(parent_conn)
                if status is not None and status[0] == "beat":
                    last_signal = time.monotonic()
                    if on_event is not None:
                        on_event(
                            "worker.heartbeat", target=label, pid=proc.pid
                        )
                    continue
                proc.join()
                break
            if ready:
                # Child died; drain any racing result past the
                # buffered beats.
                status = _drain_result(parent_conn)
                proc.join()
                break
            now = time.monotonic()
            if stall_budget is not None and (
                deadline is None or now < deadline
            ):
                # The heartbeat window expired first: the worker went
                # silent for _STALL_FACTOR beat periods while its
                # process still exists — frozen, not slow.
                _terminate(proc)
                if on_event is not None:
                    on_event(
                        "worker.timeout",
                        target=label,
                        stalled=True,
                        heartbeat_interval_s=heartbeat_interval_s,
                        pid=proc.pid,
                    )
                raise WorkerTimeoutError(
                    f"{label}: worker (pid {proc.pid}) missed heartbeats "
                    f"for {stall_budget:g}s (interval "
                    f"{heartbeat_interval_s:g}s) and was terminated as "
                    "stalled"
                )
            _terminate(proc)
            if on_event is not None:
                on_event(
                    "worker.timeout",
                    target=label,
                    timeout_s=timeout_s,
                    pid=proc.pid,
                )
            raise WorkerTimeoutError(
                f"{label}: worker (pid {proc.pid}) exceeded its "
                f"{timeout_s:g}s budget and was terminated"
            )
    finally:
        parent_conn.close()
    if status is None:
        if on_event is not None:
            on_event("worker.crash", target=label, exit_code=proc.exitcode)
        raise WorkerCrashError(
            f"{label}: worker died with exit code {proc.exitcode} "
            "before returning a result"
        )
    kind = status[0]
    if kind == "ok":
        if on_event is not None:
            # The success-side twin of worker.crash/worker.timeout: the
            # merged campaign metrics show how many supervised workers
            # actually completed (the counter the per-worker telemetry
            # breakdown is reconciled against).
            on_event("worker.complete", target=label, pid=proc.pid)
        return status[1]
    _, type_name, message = status
    raise _rebuild_exception(type_name, message)


def _recv_or_none(conn) -> Optional[tuple]:
    try:
        return conn.recv()
    except EOFError:
        return None


def _drain_result(conn, grace_s: float = 0.25) -> Optional[tuple]:
    """Skim buffered heartbeats for a final result after child death."""
    while conn.poll(grace_s):
        status = _recv_or_none(conn)
        if status is None or status[0] != "beat":
            return status
        grace_s = 0.0
    return None


def _terminate(proc, grace_s: float = 2.0) -> None:
    """Terminate, escalating to SIGKILL if the child ignores SIGTERM."""
    proc.terminate()
    proc.join(grace_s)
    if proc.is_alive():  # pragma: no cover - needs a SIGTERM-immune child
        proc.kill()
        proc.join(grace_s)
