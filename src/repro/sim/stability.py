"""Seed-stability analysis.

The paper notes Pin runs are not repeatable, forcing all techniques to
be evaluated in a single run.  Our traces are repeatable, which buys
something better: we can *quantify* run-to-run variation by re-seeding
the generators.  This module runs a campaign across seeds and reports
mean / standard deviation of the headline reductions — the error bars
the paper could not draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.sim.campaign import run_campaign
from repro.sim.experiment import ExperimentConfig
from repro.utils.validation import check_positive
from repro.errors import ValidationError

__all__ = ["StabilityResult", "seed_stability"]


@dataclass(frozen=True)
class StabilityResult:
    """Across-seed statistics of a campaign metric."""

    technique: str
    per_seed_means: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.per_seed_means) / len(self.per_seed_means)

    @property
    def std(self) -> float:
        if len(self.per_seed_means) < 2:
            return 0.0
        mu = self.mean
        variance = sum((x - mu) ** 2 for x in self.per_seed_means) / (
            len(self.per_seed_means) - 1
        )
        return variance ** 0.5

    @property
    def spread(self) -> float:
        return max(self.per_seed_means) - min(self.per_seed_means)


def seed_stability(
    config: ExperimentConfig,
    seeds: Sequence[int],
    techniques: Sequence[str] = ("wg", "wg_rb"),
) -> Dict[str, StabilityResult]:
    """Run ``config`` once per seed; return per-technique statistics.

    ``config.techniques`` must include ``rmw`` (the reduction baseline)
    plus every entry of ``techniques``.
    """
    check_positive("number of seeds", len(seeds))
    missing = [t for t in ("rmw", *techniques) if t not in config.techniques]
    if missing:
        raise ValidationError(f"config.techniques is missing {missing}")
    per_seed: Dict[str, List[float]] = {t: [] for t in techniques}
    for seed in seeds:
        seeded = ExperimentConfig(
            geometry=config.geometry,
            benchmarks=config.benchmarks,
            techniques=config.techniques,
            accesses_per_benchmark=config.accesses_per_benchmark,
            warmup_fraction=config.warmup_fraction,
            seed=seed,
        )
        campaign = run_campaign(seeded)
        for technique in techniques:
            per_seed[technique].append(campaign.mean_reduction(technique))
    return {
        technique: StabilityResult(
            technique=technique, per_seed_means=tuple(values)
        )
        for technique, values in per_seed.items()
    }
