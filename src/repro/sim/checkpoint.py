"""Checkpoint/resume journaling for campaigns and comparisons.

Completed benchmark rows are appended to a JSON-Lines journal *as they
finish*, so an interrupted campaign — crashed driver, killed worker,
power loss — resumes by re-running only the missing benchmarks.

File format
-----------
Line 1 is a header object::

    {"format": "repro8t-checkpoint", "version": 1,
     "kind": "campaign", "fingerprint": "<sha256 hex>"}

Every following line is one completed unit of work::

    {"key": "<benchmark or technique>", "payload": {...}, "crc": "<crc32 hex>"}

``crc`` covers the canonical JSON of ``payload``; a record whose CRC
does not match (bit rot, interleaved writes from a buggy caller) is
*skipped*, not trusted — the unit simply re-runs.  A truncated final
line (the writer died mid-append) is likewise skipped.  A header whose
``fingerprint`` does not match the resuming config raises
:class:`CheckpointError`: the journal belongs to a different
experiment, and silently mixing rows would corrupt results.

Durability: each record is written as one ``write()`` of a complete
line, flushed and ``fsync``'d, so a journal never contains a
half-record followed by a full one.

Path modes
----------
A checkpoint path naming a file (or ending in a suffix like
``.jsonl``) holds exactly one journal; resuming it under a different
config is an error.  A path naming a directory (or without a suffix)
becomes a *store*: each distinct config journals to
``<dir>/<fingerprint16>.jsonl``, which is what multi-campaign commands
(``repro-8t report``, geometry sweeps) need.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import zlib
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.cache.config import CacheGeometry
from repro.cache.stats import CacheStats
from repro.core.outcomes import OperationCounts
from repro.errors import CheckpointError
from repro.sim.experiment import ExperimentConfig
from repro.sim.simulator import SimulationResult
from repro.sram.events import SRAMEventLog
from repro.trace.record import MemoryAccess

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "CheckpointJournal",
    "CheckpointStore",
    "config_fingerprint",
    "comparison_fingerprint",
    "serialize_row",
    "deserialize_row",
    "serialize_result",
    "deserialize_result",
]

FORMAT_NAME = "repro8t-checkpoint"
FORMAT_VERSION = 1


# -- fingerprints -------------------------------------------------------------------


def _geometry_payload(geometry: CacheGeometry) -> Dict:
    return {
        "size_bytes": geometry.size_bytes,
        "associativity": geometry.associativity,
        "block_bytes": geometry.block_bytes,
        "address_bits": geometry.address_bits,
    }


def _digest(payload: Dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def config_fingerprint(config: ExperimentConfig) -> str:
    """Identity of a campaign: everything a row's value depends on.

    Benchmark/technique *order* is excluded — rows are keyed by name
    and each (benchmark, technique) simulation is independent, so a
    reordered config legitimately resumes the same journal.
    """
    return _digest(
        {
            "geometry": _geometry_payload(config.geometry),
            "benchmarks": sorted(config.benchmarks),
            "techniques": sorted(config.techniques),
            "accesses_per_benchmark": config.accesses_per_benchmark,
            "warmup_fraction": config.warmup_fraction,
            "seed": config.seed,
        }
    )


def comparison_fingerprint(
    trace: Sequence[MemoryAccess],
    geometry: CacheGeometry,
    techniques: Sequence[str],
    controller_kwargs: Optional[Dict] = None,
) -> str:
    """Identity of a single-trace comparison (hashes the trace itself)."""
    hasher = hashlib.sha256()
    for access in trace:
        hasher.update(
            b"%d|%d|%d|%d;"
            % (access.icount, 1 if access.is_write else 0, access.address, access.value)
        )
    return _digest(
        {
            "trace": hasher.hexdigest(),
            "geometry": _geometry_payload(geometry),
            "techniques": sorted(techniques),
            "controller_kwargs": repr(sorted((controller_kwargs or {}).items())),
        }
    )


# -- row serialisation --------------------------------------------------------------


def serialize_result(result: SimulationResult) -> Dict:
    """JSON payload for one (trace, technique) result — exact, all ints."""
    return {
        "technique": result.technique,
        "geometry": _geometry_payload(result.geometry),
        "requests": result.requests,
        "events": result.events.to_dict(),
        "counts": asdict(result.counts),
        "cache_stats": asdict(result.cache_stats),
    }


def deserialize_result(payload: Dict) -> SimulationResult:
    return SimulationResult(
        technique=payload["technique"],
        geometry=CacheGeometry(**payload["geometry"]),
        requests=payload["requests"],
        events=SRAMEventLog(**payload["events"]),
        counts=OperationCounts(**payload["counts"]),
        cache_stats=CacheStats(**payload["cache_stats"]),
    )


def serialize_row(row) -> Dict:
    """JSON payload for one :class:`repro.sim.campaign.BenchmarkRow`."""
    return {
        "benchmark": row.benchmark,
        "results": {
            technique: serialize_result(result)
            for technique, result in row.results.items()
        },
    }


def deserialize_row(payload: Dict):
    from repro.sim.campaign import BenchmarkRow

    return BenchmarkRow(
        benchmark=payload["benchmark"],
        results={
            technique: deserialize_result(result)
            for technique, result in payload["results"].items()
        },
    )


# -- the journal --------------------------------------------------------------------


def _payload_crc(payload: Dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(canonical.encode()) & 0xFFFFFFFF, "08x")


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a writer-lock pid."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        # Exists but owned elsewhere (or unprobeable): assume alive —
        # the safe direction for a mutual-exclusion check.
        return True
    return True


class CheckpointJournal:
    """One append-only JSONL journal bound to a config fingerprint.

    Open with :meth:`open`; the returned journal has already loaded
    whatever completed rows survive in the file (``rows``) and counted
    unusable lines (``skipped_records``).  ``append`` is thread-safe —
    the parallel runner journals from supervisor threads.

    *Across processes*, however, a journal admits exactly one writer:
    opening takes a ``<path>.lock`` pidfile (atomic
    ``O_CREAT|O_EXCL``), and a second opener gets a clear
    :class:`CheckpointError` naming the owning pid instead of silently
    interleaving appends with it.  A lock whose owner is dead (the
    previous run crashed before :meth:`close`) is stale and is taken
    over automatically.  Missing parent directories are created on
    open.
    """

    def __init__(
        self,
        path: Path,
        kind: str,
        fingerprint: str,
        rows: Dict[str, Dict],
        skipped_records: int,
        resumed: bool,
    ) -> None:
        self.path = path
        self.kind = kind
        self.fingerprint = fingerprint
        self.rows = rows
        self.skipped_records = skipped_records
        self.resumed = resumed
        self._lock = threading.Lock()
        path.parent.mkdir(parents=True, exist_ok=True)
        self._lock_path = Path(f"{path}.lock")
        self._locked = False
        self._acquire_writer_lock()
        try:
            self._handle = open(path, "a", encoding="utf-8")
        except BaseException:
            self._release_writer_lock()
            raise
        if not resumed:
            self._write_line(
                {
                    "format": FORMAT_NAME,
                    "version": FORMAT_VERSION,
                    "kind": kind,
                    "fingerprint": fingerprint,
                }
            )

    def _acquire_writer_lock(self) -> None:
        while True:
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                owner = self._lock_owner()
                if owner is not None and _pid_alive(owner):
                    raise CheckpointError(
                        f"{self.path}: journal is already open for writing "
                        f"by process {owner}; concurrent writers would "
                        "interleave records.  Wait for that run to finish, "
                        f"or remove {self._lock_path} if the process is "
                        "gone."
                    ) from None
                # Stale lock: the previous writer died without closing.
                try:
                    self._lock_path.unlink()
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self._locked = True
            return

    def _lock_owner(self) -> Optional[int]:
        try:
            return int(self._lock_path.read_text().strip())
        except (OSError, ValueError):
            return None

    def _release_writer_lock(self) -> None:
        if not self._locked:
            return
        self._locked = False
        try:
            self._lock_path.unlink()
        except OSError:
            pass

    @classmethod
    def open(cls, path: Union[str, Path], kind: str, fingerprint: str) -> "CheckpointJournal":
        """Create or resume the journal at ``path``.

        Raises :class:`CheckpointError` when the file exists but its
        header is unreadable, is for a different ``kind``, carries a
        different fingerprint (stale checkpoint), or is already open
        for writing by a live process.  Missing parent directories are
        created.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows: Dict[str, Dict] = {}
        skipped = 0
        resumed = False
        if path.exists() and path.stat().st_size > 0:
            resumed = True
            with open(path, "r", encoding="utf-8") as handle:
                header_line = handle.readline()
                header = cls._parse_header(path, header_line)
                if header.get("kind") != kind:
                    raise CheckpointError(
                        f"{path}: checkpoint is for kind "
                        f"{header.get('kind')!r}, expected {kind!r}"
                    )
                if header.get("fingerprint") != fingerprint:
                    raise CheckpointError(
                        f"{path}: stale checkpoint — its config fingerprint "
                        f"{str(header.get('fingerprint'))[:16]}... does not match "
                        f"this run's {fingerprint[:16]}...; delete the file or "
                        "point --checkpoint elsewhere"
                    )
                for line in handle:
                    record = cls._parse_record(line)
                    if record is None:
                        skipped += 1
                        continue
                    key, payload = record
                    rows[key] = payload
        journal = cls(path, kind, fingerprint, rows, skipped, resumed)
        return journal

    @staticmethod
    def _parse_header(path: Path, line: str) -> Dict:
        try:
            header = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{path}: checkpoint header is not valid JSON: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
            raise CheckpointError(
                f"{path}: not a {FORMAT_NAME} file "
                f"(header {str(line)[:60]!r})"
            )
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"{path}: unsupported checkpoint version "
                f"{header.get('version')!r} (this build reads "
                f"{FORMAT_VERSION})"
            )
        return header

    @staticmethod
    def _parse_record(line: str) -> Optional[Tuple[str, Dict]]:
        """One record line -> (key, payload), or None if unusable."""
        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None  # truncated trailing append — re-run that unit
        if not isinstance(record, dict):
            return None
        key = record.get("key")
        payload = record.get("payload")
        if not isinstance(key, str) or not isinstance(payload, dict):
            return None
        if record.get("crc") != _payload_crc(payload):
            return None  # corrupt — never trust it, just recompute
        return key, payload

    def append(self, key: str, payload: Dict) -> None:
        """Durably record one completed unit of work."""
        self._write_line(
            {"key": key, "payload": payload, "crc": _payload_crc(payload)}
        )
        self.rows[key] = payload

    def _write_line(self, obj: Dict) -> None:
        line = json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()
            self._release_writer_lock()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class CheckpointStore:
    """Maps configs to journal files (see *Path modes* above)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    @property
    def directory_mode(self) -> bool:
        if self.path.is_dir():
            return True
        if self.path.exists():
            return False
        return self.path.suffix == ""

    def journal_path(self, fingerprint: str) -> Path:
        if self.directory_mode:
            self.path.mkdir(parents=True, exist_ok=True)
            return self.path / f"{fingerprint[:16]}.jsonl"
        parent = self.path.parent
        if parent and not parent.exists():
            parent.mkdir(parents=True, exist_ok=True)
        return self.path

    def open(self, kind: str, fingerprint: str) -> CheckpointJournal:
        return CheckpointJournal.open(
            self.journal_path(fingerprint), kind, fingerprint
        )

    def open_campaign(self, config: ExperimentConfig) -> CheckpointJournal:
        return self.open("campaign", config_fingerprint(config))

    def open_comparison(
        self,
        trace: Sequence[MemoryAccess],
        geometry: CacheGeometry,
        techniques: Sequence[str],
        controller_kwargs: Optional[Dict] = None,
    ) -> CheckpointJournal:
        return self.open(
            "comparison",
            comparison_fingerprint(trace, geometry, techniques, controller_kwargs),
        )


def as_store(
    checkpoint: Union[str, Path, CheckpointStore, None]
) -> Optional[CheckpointStore]:
    """Normalise a user-facing checkpoint argument."""
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(checkpoint)
