"""Multiprogrammed trace mixes.

An L1-D in a real system sees context switches: the paper evaluates
single-program traces, so a natural question is how Write Grouping
survives when several programs interleave through one cache (and one
Set-Buffer).  This module time-slices per-program traces into a single
multiprogrammed stream:

* each program runs for a *quantum* of instructions, then the next
  program resumes where it left off;
* instruction counts are rebased onto a single global timeline;
* address spaces are disambiguated by giving each program a private
  high-order address offset (modelling distinct physical pages).

The multiprogramming ablation shows WG degrading gracefully: grouping
windows are short (tens of instructions) compared to realistic quanta
(thousands+), so reductions barely move until quanta shrink to absurd
sizes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.trace.record import MemoryAccess
from repro.utils.validation import check_positive
from repro.errors import ValidationError

__all__ = ["merge_traces"]

#: Address-space stride between programs (1 TiB apart: high-order bits
#: distinct, well within the 48-bit physical space).
_PROGRAM_SPACING = 1 << 40


def merge_traces(
    traces: Sequence[Sequence[MemoryAccess]],
    quantum_instructions: int,
    separate_address_spaces: bool = True,
) -> List[MemoryAccess]:
    """Round-robin time-slice ``traces`` into one stream.

    Args:
        traces: one materialised trace per program.
        quantum_instructions: instructions each program runs per turn.
        separate_address_spaces: give each program a private address
            offset (default).  Disable to model shared-memory processes.

    The merged stream preserves each program's internal order; global
    icounts are contiguous across slices (context-switch overhead is
    not modelled — it would only dilute the effects being measured).
    """
    check_positive("quantum_instructions", quantum_instructions)
    if not traces:
        raise ValidationError("at least one trace is required")

    cursors = [0] * len(traces)
    merged: List[MemoryAccess] = []
    global_icount = 0
    active = [bool(trace) for trace in traces]

    while any(active):
        for program, trace in enumerate(traces):
            if not active[program]:
                continue
            cursor = cursors[program]
            slice_start_icount = trace[cursor].icount
            offset = (
                program * _PROGRAM_SPACING if separate_address_spaces else 0
            )
            consumed_instructions = 0
            while cursor < len(trace):
                access = trace[cursor]
                consumed_instructions = access.icount - slice_start_icount
                if consumed_instructions >= quantum_instructions:
                    break
                merged.append(
                    MemoryAccess(
                        icount=global_icount + consumed_instructions,
                        kind=access.kind,
                        address=access.address + offset,
                        value=access.value,
                    )
                )
                cursor += 1
            # +1 keeps global icounts strictly increasing across slices.
            global_icount += consumed_instructions + 1
            cursors[program] = cursor
            if cursor >= len(trace):
                active[program] = False
    return merged
