"""Workload profile — the calibrated knobs describing one benchmark.

A profile is a mixture of address streams plus scalar behaviour knobs.
The knobs map to the paper's measured quantities as follows:

``read_frequency`` / ``write_frequency``
    Memory accesses per executed instruction (Figure 3).
``silent_fraction``
    Probability a write stores the value already present (Figure 5).
``burst_mean``
    Mean number of consecutive accesses served by the same stream;
    together with the streams' spatial locality this sets the
    consecutive same-set share (Figure 4).
``type_persistence``
    Probability that the next access repeats the previous access's
    read/write kind within a burst; high persistence produces the WW
    runs Write Grouping exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError

__all__ = ["StreamSpec", "WorkloadProfile"]


@dataclass(frozen=True)
class StreamSpec:
    """One address stream in a profile's mixture.

    Attributes:
        kind: pattern engine name (see :mod:`repro.workload.patterns`).
        weight: relative probability of a burst using this stream.
        region_kib: size of the stream's private region in KiB.
        stride_words: stride for ``strided`` patterns (ignored otherwise).
        write_bias: multiplier (>0) applied to the profile write share
            when the burst runs on this stream; lets e.g. a result
            stream be write-heavy while an input stream is read-only.
        hot_words / hot_probability: working-set knobs for ``hotspot``
            patterns (ignored otherwise).  A small ``hot_words`` keeps
            revisits inside one cache block, which feeds the Tag-Buffer
            hits that survive intervening accesses to other sets.
    """

    kind: str
    weight: float
    region_kib: int = 256
    stride_words: int = 1
    write_bias: float = 1.0
    hot_words: int = 16
    hot_probability: float = 0.9

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(f"stream weight must be > 0, got {self.weight}")
        if self.region_kib <= 0:
            raise ConfigurationError(
                f"region_kib must be > 0, got {self.region_kib}"
            )
        if self.write_bias < 0:
            raise ConfigurationError(
                f"write_bias must be >= 0, got {self.write_bias}"
            )
        if self.hot_words <= 0:
            raise ConfigurationError(
                f"hot_words must be > 0, got {self.hot_words}"
            )
        if not 0.0 <= self.hot_probability <= 1.0:
            raise ConfigurationError(
                f"hot_probability must be in [0, 1], got {self.hot_probability}"
            )

    @property
    def region_words(self) -> int:
        return self.region_kib * 1024 // 8


@dataclass(frozen=True)
class WorkloadProfile:
    """All knobs for one synthetic benchmark."""

    name: str
    read_frequency: float
    write_frequency: float
    silent_fraction: float
    burst_mean: float
    type_persistence: float
    streams: Tuple[StreamSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("profile needs a name")
        if not 0.0 < self.read_frequency < 1.0:
            raise ConfigurationError(
                f"read_frequency must be in (0, 1), got {self.read_frequency}"
            )
        if not 0.0 < self.write_frequency < 1.0:
            raise ConfigurationError(
                f"write_frequency must be in (0, 1), got {self.write_frequency}"
            )
        if self.read_frequency + self.write_frequency >= 1.0:
            raise ConfigurationError(
                "read_frequency + write_frequency must stay below 1 "
                "(not every instruction is a memory access)"
            )
        if not 0.0 <= self.silent_fraction <= 1.0:
            raise ConfigurationError(
                f"silent_fraction must be in [0, 1], got {self.silent_fraction}"
            )
        if self.burst_mean < 1.0:
            raise ConfigurationError(
                f"burst_mean must be >= 1, got {self.burst_mean}"
            )
        if not 0.0 <= self.type_persistence <= 1.0:
            raise ConfigurationError(
                f"type_persistence must be in [0, 1], got {self.type_persistence}"
            )
        if not self.streams:
            raise ConfigurationError("profile needs at least one stream")

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that access memory."""
        return self.read_frequency + self.write_frequency

    @property
    def write_share(self) -> float:
        """Writes as a share of memory accesses."""
        return self.write_frequency / self.memory_fraction

    @property
    def footprint_kib(self) -> int:
        """Total region footprint across streams."""
        return sum(stream.region_kib for stream in self.streams)
