"""Fit a workload profile to an observed trace.

Closes the loop between the two trace sources: given any trace — an
instrumented kernel, a converted real trace file, or another tool's
output — estimate the :class:`WorkloadProfile` knobs that would make
the synthetic generator mimic it.  Useful for (a) calibrating profiles
from real measurements when they exist, and (b) sanity-checking the
generator (fitting a synthetic trace should roughly recover its own
knobs — property-tested).

Estimators (all single-pass over the trace):

* read/write frequency — directly from :class:`TraceStatistics`;
* silent fraction — directly from the value stream;
* burst_mean — from the mean run length of *consecutive same-block*
  accesses (the observable footprint of stream bursts);
* type_persistence — from P(kind_i == kind_{i-1}), inverted through
  the stationary mixing identity p_obs = rho + (1-rho)*(r^2 + w^2);
* stream mix — a coarse spatial classification: fraction of accesses
  whose block distance to the previous access is 0/1 (sequential-ish),
  small (strided/hot) or large (random/pointer), mapped to a
  three-stream mixture.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.trace.record import MemoryAccess
from repro.trace.stats import collect_statistics
from repro.utils.bitops import round_up_pow2
from repro.workload.profile import StreamSpec, WorkloadProfile
from repro.errors import ValidationError

__all__ = ["fit_profile"]

_BLOCK_BYTES = 32  # classification granularity (baseline block size)


def _estimate_burst_mean(trace: Sequence[MemoryAccess]) -> float:
    """Mean run length of consecutive same-block accesses, floor 1."""
    runs: List[int] = []
    current = 1
    for previous, access in zip(trace, trace[1:]):
        same_block = (
            previous.address // _BLOCK_BYTES == access.address // _BLOCK_BYTES
        )
        near_block = (
            abs(access.address // _BLOCK_BYTES - previous.address // _BLOCK_BYTES)
            <= 1
        )
        if same_block or near_block:
            current += 1
        else:
            runs.append(current)
            current = 1
    runs.append(current)
    return max(1.0, sum(runs) / len(runs))


def _estimate_persistence(trace: Sequence[MemoryAccess], stats) -> float:
    """Invert P(same kind) = rho + (1-rho)(r^2+w^2) for rho."""
    if len(trace) < 2:
        return 0.5
    same_kind = sum(
        1
        for previous, access in zip(trace, trace[1:])
        if previous.kind is access.kind
    )
    observed = same_kind / (len(trace) - 1)
    write_share = stats.write_share_of_accesses
    base = write_share**2 + (1.0 - write_share) ** 2
    if base >= 1.0:
        return 0.0
    rho = (observed - base) / (1.0 - base)
    return min(1.0, max(0.0, rho))


def _classify_spatial(trace: Sequence[MemoryAccess]) -> Dict[str, float]:
    """Fractions of near/strided/far transitions between accesses."""
    counts = {"sequential": 0, "strided": 0, "random": 0}
    for previous, access in zip(trace, trace[1:]):
        distance = abs(
            access.address // _BLOCK_BYTES - previous.address // _BLOCK_BYTES
        )
        if distance <= 1:
            counts["sequential"] += 1
        elif distance <= 16:
            counts["strided"] += 1
        else:
            counts["random"] += 1
    total = max(1, len(trace) - 1)
    return {kind: count / total for kind, count in counts.items()}


def fit_profile(
    trace: Sequence[MemoryAccess], name: str = "fitted"
) -> WorkloadProfile:
    """Estimate a :class:`WorkloadProfile` from a trace.

    Raises ``ValueError`` for traces too short to estimate from
    (< 100 accesses) or with no reads or no writes (the profile model
    requires both).
    """
    if len(trace) < 100:
        raise ValidationError(
            f"need at least 100 accesses to fit a profile, got {len(trace)}"
        )
    stats = collect_statistics(trace)
    if stats.reads == 0 or stats.writes == 0:
        raise ValidationError("trace must contain both reads and writes")

    read_frequency = min(0.6, max(0.01, stats.read_frequency))
    write_frequency = min(0.6, max(0.01, stats.write_frequency))
    if read_frequency + write_frequency >= 1.0:
        scale = 0.95 / (read_frequency + write_frequency)
        read_frequency *= scale
        write_frequency *= scale

    footprint_words = len({access.word for access in trace})
    region_kib = max(8, round_up_pow2(footprint_words * 8 // 1024 or 1))
    spatial = _classify_spatial(trace)
    streams = tuple(
        StreamSpec(kind, weight=max(share, 0.02), region_kib=region_kib)
        for kind, share in spatial.items()
    )

    return WorkloadProfile(
        name=name,
        read_frequency=read_frequency,
        write_frequency=write_frequency,
        silent_fraction=stats.silent_write_fraction,
        burst_mean=_estimate_burst_mean(trace),
        type_persistence=_estimate_persistence(trace, stats),
        streams=streams,
        description=f"fitted from a {len(trace)}-access trace",
    )
