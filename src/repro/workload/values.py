"""Store-value model.

Silent stores — writes whose value equals what memory already holds —
are 42 % of SPEC 2006 writes on average (paper Figure 5, following
Lepak & Lipasti).  The value model mirrors the program's memory state
and, for each write, either replays the current value (silent, with the
profile's calibrated probability) or produces a fresh distinct value.
Memory starts zero-filled, consistent with the cache substrate's
:class:`FunctionalMemory`.
"""

from __future__ import annotations

from typing import Dict

from repro.trace.record import word_address
from repro.utils.rng import DeterministicRNG
from repro.errors import ValidationError

__all__ = ["ValueModel"]


class ValueModel:
    """Produces write values with a target silent-store fraction."""

    def __init__(self, silent_fraction: float, rng: DeterministicRNG) -> None:
        if not 0.0 <= silent_fraction <= 1.0:
            raise ValidationError(
                f"silent_fraction must be in [0, 1], got {silent_fraction}"
            )
        self.silent_fraction = silent_fraction
        self._rng = rng
        self._memory: Dict[int, int] = {}
        self._next_fresh = 1
        self.silent_writes = 0
        self.total_writes = 0

    def value_for_write(self, byte_address: int) -> int:
        """Choose the value the program stores at ``byte_address``."""
        self.total_writes += 1
        word = word_address(byte_address)
        current = self._memory.get(word, 0)
        if self._rng.maybe(self.silent_fraction):
            self.silent_writes += 1
            return current
        value = self._next_fresh
        self._next_fresh += 1
        if value == current:  # pragma: no cover - counter never collides
            value += 1
            self._next_fresh += 1
        self._memory[word] = value
        return value

    def current_value(self, byte_address: int) -> int:
        """Value the model believes memory holds (oracle for tests)."""
        return self._memory.get(word_address(byte_address), 0)

    @property
    def observed_silent_fraction(self) -> float:
        if self.total_writes == 0:
            return 0.0
        return self.silent_writes / self.total_writes
