"""Address-stream pattern engines.

Each pattern walks a private region of the address space and yields
word-aligned byte addresses.  The mixture of patterns in a profile is
what gives each synthetic benchmark its spatial-locality signature —
and spatial locality is what the paper's techniques harvest.
"""

from __future__ import annotations

import abc
from typing import Dict, Type

from repro.trace.record import WORD_BYTES
from repro.utils.rng import DeterministicRNG
from repro.utils.bitops import is_power_of_two
from repro.utils.validation import check_positive
from repro.errors import ValidationError

__all__ = [
    "AddressPattern",
    "SequentialPattern",
    "StridedPattern",
    "RandomPattern",
    "PointerChasePattern",
    "HotspotPattern",
    "make_pattern",
]


class AddressPattern(abc.ABC):
    """A stateful generator of word-aligned byte addresses.

    Args:
        base_address: first byte of the pattern's region (word aligned).
        region_words: number of words in the region.
    """

    def __init__(self, base_address: int, region_words: int) -> None:
        check_positive("region_words", region_words)
        if base_address % WORD_BYTES != 0:
            raise ValidationError(
                f"base_address must be word aligned, got {base_address:#x}"
            )
        self.base_address = base_address
        self.region_words = region_words

    @abc.abstractmethod
    def next_address(self, rng: DeterministicRNG) -> int:
        """Produce the next byte address of the stream."""

    def _address_of_word(self, word_index: int) -> int:
        return self.base_address + (word_index % self.region_words) * WORD_BYTES


class SequentialPattern(AddressPattern):
    """Unit-stride walk, wrapping at the region end.

    Models streaming kernels (bwaves, lbm, libquantum): consecutive
    accesses fall in the same cache block 1 - 1/words_per_block of the
    time, which is the raw material for write grouping.
    """

    def __init__(self, base_address: int, region_words: int) -> None:
        super().__init__(base_address, region_words)
        self._position = 0

    def next_address(self, rng: DeterministicRNG) -> int:
        address = self._address_of_word(self._position)
        self._position = (self._position + 1) % self.region_words
        return address


class StridedPattern(AddressPattern):
    """Constant-stride walk (column-major array sweeps, records)."""

    def __init__(
        self, base_address: int, region_words: int, stride_words: int
    ) -> None:
        super().__init__(base_address, region_words)
        check_positive("stride_words", stride_words)
        self.stride_words = stride_words
        self._position = 0

    def next_address(self, rng: DeterministicRNG) -> int:
        address = self._address_of_word(self._position)
        self._position = (self._position + self.stride_words) % self.region_words
        return address


class RandomPattern(AddressPattern):
    """Uniform random words in the region (hash tables, gobmk/sjeng)."""

    def next_address(self, rng: DeterministicRNG) -> int:
        return self._address_of_word(rng.randint(0, self.region_words - 1))


class PointerChasePattern(AddressPattern):
    """A full-period pseudo-random permutation walk (mcf-style chasing).

    Uses an LCG over a power-of-two region (odd increment, multiplier
    ≡ 1 mod 4) so every word is visited exactly once per period without
    materialising a permutation.
    """

    def __init__(self, base_address: int, region_words: int) -> None:
        if not is_power_of_two(region_words):
            raise ValidationError(
                f"pointer chase needs a power-of-two region, got {region_words}"
            )
        super().__init__(base_address, region_words)
        self._position = 0
        # Full-period LCG parameters for modulus 2^k (Hull-Dobell).
        self._multiplier = 5
        self._increment = 12345 | 1

    def next_address(self, rng: DeterministicRNG) -> int:
        address = self._address_of_word(self._position)
        self._position = (
            self._multiplier * self._position + self._increment
        ) % self.region_words
        return address


class HotspotPattern(AddressPattern):
    """A small hot set reused with high probability, else a cold word.

    Models stack frames and frequently written globals — the main source
    of silent stores and tight set reuse in integer codes.
    """

    def __init__(
        self,
        base_address: int,
        region_words: int,
        hot_words: int = 16,
        hot_probability: float = 0.9,
    ) -> None:
        super().__init__(base_address, region_words)
        check_positive("hot_words", hot_words)
        if not 0.0 <= hot_probability <= 1.0:
            raise ValidationError(
                f"hot_probability must be in [0, 1], got {hot_probability}"
            )
        self.hot_words = min(hot_words, region_words)
        self.hot_probability = hot_probability

    def next_address(self, rng: DeterministicRNG) -> int:
        if rng.maybe(self.hot_probability):
            return self._address_of_word(rng.randint(0, self.hot_words - 1))
        return self._address_of_word(rng.randint(0, self.region_words - 1))


_PATTERN_KINDS: Dict[str, Type[AddressPattern]] = {
    "sequential": SequentialPattern,
    "strided": StridedPattern,
    "random": RandomPattern,
    "pointer_chase": PointerChasePattern,
    "hotspot": HotspotPattern,
}


def make_pattern(
    kind: str, base_address: int, region_words: int, **kwargs
) -> AddressPattern:
    """Build a pattern engine by kind name."""
    try:
        pattern_class = _PATTERN_KINDS[kind]
    except KeyError:
        raise ValidationError(
            f"unknown pattern kind {kind!r}; known: {sorted(_PATTERN_KINDS)}"
        ) from None
    return pattern_class(base_address, region_words, **kwargs)
