"""Calibrated SPEC CPU2006 workload profiles.

The paper runs 25 of the 29 SPEC CPU2006 benchmarks (Section 5.1).  It
names a handful explicitly — bwaves, wrf and lbm as the high
write-grouping winners, gamess and cactusADM as the read-bypass winners
— and reports the averages: 26 % reads / 14 % writes per instruction
(Figure 3), 27 % consecutive same-set accesses with WW peaking at 24 %
for bwaves (Figure 4), and 42 % silent writes on average with 77 % for
bwaves (Figure 5).

Each profile below encodes one benchmark's published character (memory
intensity, spatial locality, write burstiness, silent-store rate) into
the generator's knobs.  The four benchmarks the paper drops are the
four that were notoriously hard to build in 2012 toolchains: dealII,
tonto, omnetpp and xalancbmk.

Calibration is *shape-level*, per the reproduction brief: the
per-benchmark values are plausible rather than measured, but the
averages and the orderings the paper highlights are asserted by the
calibration tests in ``tests/workload/test_calibration.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workload.profile import StreamSpec, WorkloadProfile
from repro.errors import ValidationError

__all__ = ["SPEC2006_PROFILES", "benchmark_names", "get_profile"]


def _streaming(
    region_kib: int = 4096, out_bias: float = 2.0, noise: float = 1.2
) -> Tuple[StreamSpec, ...]:
    """FP streaming kernel: big input sweep, write-heavy output sweep."""
    return (
        StreamSpec("sequential", weight=5.0, region_kib=region_kib, write_bias=0.5),
        StreamSpec(
            "sequential", weight=3.0, region_kib=region_kib // 2, write_bias=out_bias
        ),
        StreamSpec("random", weight=noise, region_kib=256, write_bias=1.0),
    )


def _read_stencil(region_kib: int = 2048) -> Tuple[StreamSpec, ...]:
    """Stencil/update: reads dominate, writes land where reads just were."""
    return (
        StreamSpec("sequential", weight=6.0, region_kib=region_kib, write_bias=1.0),
        StreamSpec("strided", weight=2.0, region_kib=region_kib, stride_words=8,
                   write_bias=0.6),
        StreamSpec("random", weight=1.0, region_kib=256, write_bias=1.0),
    )


def _pointer(region_kib: int = 8192) -> Tuple[StreamSpec, ...]:
    """Pointer chasing with a hot working set (mcf/astar)."""
    return (
        StreamSpec("pointer_chase", weight=5.0, region_kib=region_kib,
                   write_bias=0.8),
        StreamSpec("hotspot", weight=3.0, region_kib=128, write_bias=1.3,
                   hot_words=4, hot_probability=0.85),
        StreamSpec("sequential", weight=1.0, region_kib=512, write_bias=1.0),
    )


def _integer_mixed(region_kib: int = 1024) -> Tuple[StreamSpec, ...]:
    """Typical integer code: stack hotspot, heap randomness, some sweeps.

    The stack hotspot fits one cache block (4 words), so repeated
    spills/reloads revisit one set even with other accesses interleaved
    — the Tag-Buffer hit pattern integer codes feed WG with.
    """
    return (
        StreamSpec("hotspot", weight=3.0, region_kib=128, write_bias=1.5,
                   hot_words=4, hot_probability=0.8),
        StreamSpec("random", weight=3.0, region_kib=region_kib, write_bias=0.8),
        StreamSpec("sequential", weight=2.0, region_kib=512, write_bias=1.0),
    )


def _table_walk(region_kib: int = 2048) -> Tuple[StreamSpec, ...]:
    """hmmer/h264-style: sequential table sweeps with a hot accumulator."""
    return (
        StreamSpec("sequential", weight=5.0, region_kib=region_kib, write_bias=1.2),
        StreamSpec("hotspot", weight=2.0, region_kib=64, write_bias=1.5,
                   hot_words=4, hot_probability=0.85),
        StreamSpec("random", weight=1.0, region_kib=512, write_bias=0.6),
    )


# name: (read_freq, write_freq, silent, burst_mean, persistence, streams, note)
_TABLE: Dict[str, tuple] = {
    "perlbench": (0.28, 0.16, 0.45, 2.0, 0.50, _integer_mixed(1024),
                  "interpreter: hot stack, branchy heap traffic"),
    "bzip2": (0.25, 0.12, 0.35, 1.9, 0.55, _table_walk(1024),
              "block-sorting compressor: buffer sweeps"),
    "gcc": (0.30, 0.15, 0.50, 1.9, 0.45, _integer_mixed(2048),
            "compiler: pointer-rich IR walks"),
    "bwaves": (0.26, 0.215, 0.77, 5.5, 0.85, _streaming(8192, out_bias=2.1),
               "blast-wave CFD: long unit-stride write bursts"),
    "gamess": (0.32, 0.09, 0.40, 2.6, 0.30, _read_stencil(1024),
               "quantum chemistry: read-read reuse of fresh results"),
    "mcf": (0.35, 0.10, 0.30, 1.5, 0.40, _pointer(16384),
            "network simplex: cache-hostile pointer chasing"),
    "milc": (0.26, 0.14, 0.45, 2.3, 0.65, _streaming(4096),
             "lattice QCD: field sweeps"),
    "zeusmp": (0.24, 0.12, 0.50, 2.3, 0.65, _streaming(4096),
               "astro CFD: structured-grid sweeps"),
    "gromacs": (0.26, 0.13, 0.40, 2.1, 0.50, _integer_mixed(512),
                "molecular dynamics: neighbour lists + hot particles"),
    "cactusADM": (0.30, 0.12, 0.45, 3.0, 0.30, _read_stencil(4096),
                  "numerical relativity: stencil updates then re-reads"),
    "leslie3d": (0.27, 0.14, 0.50, 2.4, 0.65, _streaming(4096),
                 "eddy simulation: grid sweeps"),
    "namd": (0.23, 0.09, 0.35, 1.9, 0.50, _integer_mixed(512),
             "molecular dynamics: compute-bound"),
    "gobmk": (0.27, 0.14, 0.40, 1.6, 0.40, _integer_mixed(2048),
              "go engine: board hashing, low spatial locality"),
    "soplex": (0.30, 0.10, 0.35, 2.2, 0.45, (
        StreamSpec("strided", weight=4.0, region_kib=4096, stride_words=16,
                   write_bias=0.7),
        StreamSpec("sequential", weight=3.0, region_kib=2048, write_bias=1.2),
        StreamSpec("random", weight=1.0, region_kib=1024, write_bias=0.8),
    ), "LP solver: sparse column strides"),
    "povray": (0.30, 0.13, 0.45, 2.1, 0.45, _integer_mixed(256),
               "ray tracer: hot scene graph nodes"),
    "calculix": (0.26, 0.13, 0.40, 2.0, 0.55, _read_stencil(2048),
                 "FEM: element matrix assembly"),
    "hmmer": (0.30, 0.16, 0.45, 2.0, 0.60, _table_walk(2048),
              "profile HMM: dynamic-programming rows"),
    "sjeng": (0.26, 0.12, 0.40, 1.5, 0.40, _integer_mixed(4096),
              "chess engine: transposition-table randomness"),
    "GemsFDTD": (0.28, 0.14, 0.50, 2.8, 0.65, _streaming(8192),
                 "FDTD solver: field-array sweeps"),
    "libquantum": (0.22, 0.12, 0.60, 4.0, 0.80, _streaming(2048, out_bias=2.3,
                                                           noise=0.2),
                   "quantum simulator: single-array streaming"),
    "h264ref": (0.30, 0.17, 0.45, 2.0, 0.55, _table_walk(1024),
                "video encoder: macroblock sweeps + hot predictors"),
    "lbm": (0.23, 0.20, 0.65, 5.5, 0.85, _streaming(8192, out_bias=2.2),
            "lattice Boltzmann: write-dominated cell updates"),
    "astar": (0.28, 0.11, 0.35, 1.8, 0.40, _pointer(8192),
              "pathfinding: open-list pointer chasing"),
    "wrf": (0.26, 0.18, 0.70, 5.0, 0.80, _streaming(8192, out_bias=2.1),
            "weather model: tile sweeps with many unchanged cells"),
    "sphinx3": (0.31, 0.08, 0.40, 2.1, 0.40, _read_stencil(1024),
                "speech recognition: read-dominated scoring"),
}


def _build_profiles() -> Dict[str, WorkloadProfile]:
    profiles = {}
    for name, row in _TABLE.items():
        read_freq, write_freq, silent, burst, persistence, streams, note = row
        profiles[name] = WorkloadProfile(
            name=name,
            read_frequency=read_freq,
            write_frequency=write_freq,
            silent_fraction=silent,
            burst_mean=burst,
            type_persistence=persistence,
            streams=streams,
            description=note,
        )
    return profiles


SPEC2006_PROFILES: Dict[str, WorkloadProfile] = _build_profiles()
"""The paper's 25 benchmarks, keyed by name."""


def benchmark_names() -> List[str]:
    """Benchmark names in the paper's (alphabetical) presentation order."""
    return sorted(SPEC2006_PROFILES)


def get_profile(name: str) -> WorkloadProfile:
    """Look up one benchmark profile by name."""
    try:
        return SPEC2006_PROFILES[name]
    except KeyError:
        raise ValidationError(
            f"unknown benchmark {name!r}; known: {benchmark_names()}"
        ) from None
