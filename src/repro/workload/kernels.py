"""Instrumented real kernels — a mechanistic trace source.

Where :mod:`repro.workload.generator` synthesises traces statistically,
this module *executes* small kernels against an
:class:`InstrumentedMemory` that records every load and store, exactly
the way a Pin tool instruments a binary.  The kernels cover the access
archetypes the SPEC profiles model: dense sweeps (stream triad,
matmul), pointer chasing (linked list), random updates (histogram),
stencils, and comparison-driven writes (insertion sort — a natural
source of silent stores when data is partially sorted).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.trace.record import AccessType, MemoryAccess, WORD_BYTES
from repro.utils.rng import DeterministicRNG
from repro.utils.validation import check_positive
from repro.errors import ValidationError

__all__ = ["InstrumentedMemory", "KERNEL_NAMES", "run_kernel"]


class InstrumentedMemory:
    """A flat word array that logs every access as a trace record.

    Kernels address it by word index; the logger converts to byte
    addresses.  One instruction-counter tick is charged per memory
    access plus a fixed overhead per kernel-level operation, giving the
    traces a realistic memory-access frequency (~1/3).
    """

    def __init__(self, words: int, non_memory_gap: int = 2) -> None:
        check_positive("words", words)
        self._data: List[int] = [0] * words
        self._gap = non_memory_gap
        self._icount = 0
        self.trace: List[MemoryAccess] = []

    def __len__(self) -> int:
        return len(self._data)

    def load(self, word_index: int) -> int:
        """Instrumented read."""
        self._icount += 1 + self._gap
        self.trace.append(
            MemoryAccess(
                icount=self._icount,
                kind=AccessType.READ,
                address=word_index * WORD_BYTES,
            )
        )
        return self._data[word_index]

    def store(self, word_index: int, value: int) -> None:
        """Instrumented write (records the stored value for silent-store
        analysis, then updates the backing array)."""
        self._icount += 1 + self._gap
        self.trace.append(
            MemoryAccess(
                icount=self._icount,
                kind=AccessType.WRITE,
                address=word_index * WORD_BYTES,
                value=value,
            )
        )
        self._data[word_index] = value

    def poke(self, word_index: int, value: int) -> None:
        """Initialise memory without tracing (test fixture setup)."""
        self._data[word_index] = value

    def peek(self, word_index: int) -> int:
        """Read without tracing."""
        return self._data[word_index]


# -- kernels -------------------------------------------------------------------


def _stream_triad(memory: InstrumentedMemory, rng: DeterministicRNG) -> None:
    """a[i] = b[i] + s * c[i] over three disjoint arrays."""
    n = len(memory) // 3
    a, b, c = 0, n, 2 * n
    for i in range(n):
        memory.poke(b + i, rng.randint(0, 50))
        memory.poke(c + i, rng.randint(0, 50))
    scalar = 3
    for i in range(n):
        memory.store(a + i, memory.load(b + i) + scalar * memory.load(c + i))


def _matmul(memory: InstrumentedMemory, rng: DeterministicRNG) -> None:
    """Naive n x n matrix multiply, row-major C = A @ B."""
    n = max(2, int((len(memory) // 3) ** 0.5))
    a, b, c = 0, n * n, 2 * n * n
    for i in range(n * n):
        memory.poke(a + i, rng.randint(0, 9))
        memory.poke(b + i, rng.randint(0, 9))
    for i in range(n):
        for j in range(n):
            accumulator = 0
            for k in range(n):
                accumulator += memory.load(a + i * n + k) * memory.load(
                    b + k * n + j
                )
            memory.store(c + i * n + j, accumulator)


def _linked_list(memory: InstrumentedMemory, rng: DeterministicRNG) -> None:
    """Build a shuffled singly linked list, then walk it twice summing."""
    n = len(memory) // 2
    order = list(range(n))
    rng.shuffle(order)
    # node i: next pointer at word i, payload at word n + i.
    for position in range(n - 1):
        memory.store(order[position], order[position + 1])
        memory.store(n + order[position], rng.randint(0, 99))
    memory.store(order[-1], order[0])
    memory.store(n + order[-1], rng.randint(0, 99))
    node = order[0]
    total = 0
    for _ in range(2 * n):
        total += memory.load(n + node)
        node = memory.load(node)


def _histogram(memory: InstrumentedMemory, rng: DeterministicRNG) -> None:
    """Random increments into a small bin array (read-modify-write pairs)."""
    bins = min(64, len(memory) // 4)
    samples = len(memory)
    for _ in range(samples):
        bin_index = rng.randint(0, bins - 1)
        memory.store(bin_index, memory.load(bin_index) + 1)


def _stencil(memory: InstrumentedMemory, rng: DeterministicRNG) -> None:
    """1D 3-point Jacobi sweep: out[i] = avg(in[i-1], in[i], in[i+1])."""
    n = len(memory) // 2
    src, dst = 0, n
    for i in range(n):
        memory.poke(src + i, rng.randint(0, 100))
    for _ in range(2):
        for i in range(1, n - 1):
            total = (
                memory.load(src + i - 1)
                + memory.load(src + i)
                + memory.load(src + i + 1)
            )
            memory.store(dst + i, total // 3)
        src, dst = dst, src


def _insertion_sort(memory: InstrumentedMemory, rng: DeterministicRNG) -> None:
    """Insertion sort of a nearly-sorted array — rich in silent stores.

    Shifting an element over an equal neighbour rewrites the same value,
    which is exactly the silent-store pattern of Figure 5.
    """
    n = min(len(memory), 512)
    for i in range(n):
        # Long runs of duplicates with sparse perturbations: most
        # elements are already in place, so the final store of each
        # iteration rewrites the value it just read.
        bump = 1 if rng.maybe(0.15) else 0
        memory.poke(i, (i // 16) + bump)
    for i in range(1, n):
        key = memory.load(i)
        j = i - 1
        while j >= 0:
            current = memory.load(j)
            if current <= key:
                break
            memory.store(j + 1, current)
            j -= 1
        memory.store(j + 1, key)


def _binary_search(memory: InstrumentedMemory, rng: DeterministicRNG) -> None:
    """Many binary searches over a sorted table — scattered, read-only
    probes into a large array plus a small hot result buffer."""
    n = max(8, len(memory) - 64)
    results = n  # 64-word result buffer after the table
    for i in range(n):
        memory.poke(i, 2 * i)  # sorted, even values only
    for query_index in range(n // 2):
        target = rng.randint(0, 2 * n)
        low, high = 0, n - 1
        found = 0
        while low <= high:
            mid = (low + high) // 2
            value = memory.load(mid)
            if value == target:
                found = 1
                break
            if value < target:
                low = mid + 1
            else:
                high = mid - 1
        memory.store(results + (query_index % 64), found)


def _fifo_queue(memory: InstrumentedMemory, rng: DeterministicRNG) -> None:
    """Producer/consumer ring buffer: head/tail counters in one hot
    block, payload sweeping the ring — WW pairs on the counters."""
    capacity = len(memory) - 2
    head_slot, tail_slot = capacity, capacity + 1
    for _ in range(2 * capacity):
        if rng.maybe(0.55):
            tail = memory.load(tail_slot)
            head = memory.load(head_slot)
            if tail - head < capacity:
                memory.store(tail % capacity, rng.randint(1, 99))
                memory.store(tail_slot, tail + 1)
        else:
            head = memory.load(head_slot)
            tail = memory.load(tail_slot)
            if head < tail:
                memory.load(head % capacity)
                memory.store(head_slot, head + 1)


def _checkpoint(memory: InstrumentedMemory, rng: DeterministicRNG) -> None:
    """Periodic state checkpointing: copy a working region into a
    shadow region even when little changed — the canonical silent-store
    generator (most copied words are identical to the previous copy)."""
    n = len(memory) // 2
    working, shadow = 0, n
    for i in range(n):
        memory.poke(working + i, rng.randint(0, 9))
    for _round in range(3):
        # Mutate a small fraction of the working set...
        for _ in range(max(1, n // 16)):
            memory.store(working + rng.randint(0, n - 1), rng.randint(0, 9))
        # ...then checkpoint everything.
        for i in range(n):
            memory.store(shadow + i, memory.load(working + i))


_KERNELS: Dict[str, Callable[[InstrumentedMemory, DeterministicRNG], None]] = {
    "stream_triad": _stream_triad,
    "matmul": _matmul,
    "linked_list": _linked_list,
    "histogram": _histogram,
    "stencil": _stencil,
    "insertion_sort": _insertion_sort,
    "binary_search": _binary_search,
    "fifo_queue": _fifo_queue,
    "checkpoint": _checkpoint,
}

KERNEL_NAMES = tuple(sorted(_KERNELS))
"""Available instrumented kernels."""


def run_kernel(
    name: str, words: int = 3072, seed: int = 7
) -> List[MemoryAccess]:
    """Execute a kernel over a fresh instrumented memory; return its trace."""
    try:
        kernel = _KERNELS[name]
    except KeyError:
        raise ValidationError(
            f"unknown kernel {name!r}; known: {list(KERNEL_NAMES)}"
        ) from None
    memory = InstrumentedMemory(words)
    kernel(memory, DeterministicRNG(seed).fork("kernel", name))
    return memory.trace
