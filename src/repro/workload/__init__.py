"""Workload substrate — the reproduction's substitute for Pin + SPEC 2006.

The paper drives its cache simulator with Pin traces of 25 SPEC CPU2006
benchmarks.  Neither Pin nor SPEC binaries are available here, so this
package synthesises traces whose *statistical structure* matches what
the paper measures (its Figures 3-5) while keeping the spatial structure
at the address level so geometry sensitivity (Figures 10-11) emerges
from simulation:

``patterns``
    Address-stream engines: sequential, strided, random, pointer-chase
    and hotspot.
``values``
    The store-value model that produces silent stores at a calibrated
    rate.
``profile``
    :class:`WorkloadProfile` — the knobs describing one benchmark.
``spec2006``
    25 calibrated profiles named after the paper's benchmarks.
``generator``
    :class:`SyntheticTraceGenerator` — turns a profile into a trace.
``kernels``
    Real, executable, instrumented kernels (matmul, stream triad, sort,
    linked list, histogram, stencil) whose memory behaviour is captured
    directly — a second, fully mechanistic trace source.
"""

from repro.workload.patterns import (
    AddressPattern,
    HotspotPattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    make_pattern,
)
from repro.workload.values import ValueModel
from repro.workload.profile import StreamSpec, WorkloadProfile
from repro.workload.generator import SyntheticTraceGenerator, generate_trace
from repro.workload.spec2006 import (
    SPEC2006_PROFILES,
    benchmark_names,
    get_profile,
)
from repro.workload.kernels import (
    InstrumentedMemory,
    KERNEL_NAMES,
    run_kernel,
)
from repro.workload.mixes import merge_traces
from repro.workload.fitting import fit_profile

__all__ = [
    "AddressPattern",
    "SequentialPattern",
    "StridedPattern",
    "RandomPattern",
    "PointerChasePattern",
    "HotspotPattern",
    "make_pattern",
    "ValueModel",
    "StreamSpec",
    "WorkloadProfile",
    "SyntheticTraceGenerator",
    "generate_trace",
    "SPEC2006_PROFILES",
    "benchmark_names",
    "get_profile",
    "InstrumentedMemory",
    "KERNEL_NAMES",
    "run_kernel",
    "merge_traces",
    "fit_profile",
]
