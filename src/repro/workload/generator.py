"""Synthetic trace generator.

Turns a :class:`WorkloadProfile` into a stream of
:class:`MemoryAccess` records.  The generation loop:

1. pick a stream (weighted) and a geometric burst length
   (``burst_mean``) — within a burst all accesses come from that stream;
2. for each access choose read/write: repeat the previous kind with
   probability ``type_persistence``, otherwise redraw Bernoulli with the
   stream-biased write share (the stationary write share stays at the
   profile's value for unit bias);
3. advance the instruction counter by a geometric gap whose mean makes
   memory accesses land at ``memory_fraction`` per instruction;
4. for writes, draw the value from the :class:`ValueModel`, which
   produces silent stores at the calibrated rate.

Determinism: everything derives from ``(profile.name, seed)`` so two
runs — or two controllers replaying the same materialised trace — see
identical streams.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.trace.record import AccessType, MemoryAccess, WORD_BYTES
from repro.utils.rng import DeterministicRNG
from repro.utils.validation import check_positive
from repro.workload.patterns import AddressPattern, make_pattern
from repro.workload.profile import WorkloadProfile
from repro.workload.values import ValueModel

__all__ = ["SyntheticTraceGenerator", "generate_trace"]

# Streams get disjoint 1 GiB-aligned base regions so their footprints
# never overlap (48-bit physical space leaves plenty of room).
_REGION_SPACING = 1 << 30


class SyntheticTraceGenerator:
    """Stateful generator for one profile."""

    def __init__(self, profile: WorkloadProfile, seed: int = 2012) -> None:
        self.profile = profile
        root = DeterministicRNG(seed).fork("workload", profile.name)
        self._stream_rng = root.fork("streams")
        self._type_rng = root.fork("types")
        self._gap_rng = root.fork("gaps")
        self._address_rng = root.fork("addresses")
        self._value_model = ValueModel(
            profile.silent_fraction, root.fork("values")
        )
        self._patterns: List[AddressPattern] = []
        self._weights: List[float] = []
        self._write_shares: List[float] = []
        base_write_share = profile.write_share
        for index, spec in enumerate(profile.streams):
            kwargs = {}
            if spec.kind == "strided":
                kwargs["stride_words"] = spec.stride_words
            elif spec.kind == "hotspot":
                kwargs["hot_words"] = spec.hot_words
                kwargs["hot_probability"] = spec.hot_probability
            pattern = make_pattern(
                spec.kind,
                base_address=(index + 1) * _REGION_SPACING,
                region_words=spec.region_words,
                **kwargs,
            )
            self._patterns.append(pattern)
            self._weights.append(spec.weight)
            self._write_shares.append(
                min(1.0, base_write_share * spec.write_bias)
            )
        self._icount = 0
        self._gap_mean = 1.0 / profile.memory_fraction

    @property
    def value_model(self) -> ValueModel:
        return self._value_model

    def generate(self, num_accesses: int) -> Iterator[MemoryAccess]:
        """Yield ``num_accesses`` records."""
        check_positive("num_accesses", num_accesses)
        produced = 0
        stream_indices = list(range(len(self._patterns)))
        while produced < num_accesses:
            stream_index = self._stream_rng.weighted_choice(
                stream_indices, self._weights
            )
            pattern = self._patterns[stream_index]
            write_share = self._write_shares[stream_index]
            burst_length = self._stream_rng.geometric(self.profile.burst_mean)
            previous_kind: Optional[AccessType] = None
            for _ in range(burst_length):
                if produced >= num_accesses:
                    return
                kind = self._choose_kind(previous_kind, write_share)
                previous_kind = kind
                address = pattern.next_address(self._address_rng)
                self._icount += self._gap_rng.geometric(self._gap_mean)
                if kind is AccessType.WRITE:
                    value = self._value_model.value_for_write(address)
                else:
                    value = 0
                yield MemoryAccess(
                    icount=self._icount,
                    kind=kind,
                    address=address,
                    value=value,
                )
                produced += 1

    def _choose_kind(
        self, previous: Optional[AccessType], write_share: float
    ) -> AccessType:
        if previous is not None and self._type_rng.maybe(
            self.profile.type_persistence
        ):
            return previous
        if self._type_rng.maybe(write_share):
            return AccessType.WRITE
        return AccessType.READ


def generate_trace(
    profile: WorkloadProfile, num_accesses: int, seed: int = 2012
) -> List[MemoryAccess]:
    """Materialise a full synthetic trace for ``profile``."""
    generator = SyntheticTraceGenerator(profile, seed=seed)
    return list(generator.generate(num_accesses))


def _word_aligned(address: int) -> bool:
    return address % WORD_BYTES == 0
