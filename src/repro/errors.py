"""Exception hierarchy for the reproduction library.

All library-specific failures derive from :class:`ReproError` so callers
can catch configuration and simulation failures without also swallowing
programming errors like ``TypeError``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TraceFormatError",
    "SimulationError",
    "PortConflictError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A cache/SRAM/workload configuration is internally inconsistent."""


class TraceFormatError(ReproError):
    """A trace file or record is malformed."""


class SimulationError(ReproError):
    """A simulation reached an impossible state (internal invariant broke)."""


class PortConflictError(SimulationError):
    """An SRAM port was scheduled for two operations in the same cycle."""
