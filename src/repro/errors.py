"""Exception hierarchy for the reproduction library.

All library-specific failures derive from :class:`ReproError` so callers
can catch configuration and simulation failures without also swallowing
programming errors like ``TypeError``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TraceFormatError",
    "SimulationError",
    "InvariantViolation",
    "PortConflictError",
    "WorkerTimeoutError",
    "WorkerCrashError",
    "CheckpointError",
    "CampaignFailedError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A cache/SRAM/workload configuration is internally inconsistent."""


class TraceFormatError(ReproError):
    """A trace file or record is malformed."""


class SimulationError(ReproError):
    """A simulation reached an impossible state (internal invariant broke)."""


class InvariantViolation(SimulationError):
    """A structural invariant of the cache or controller state broke.

    Raised by the debug-mode checks in :mod:`repro.check.invariants`
    (see :meth:`repro.core.controller.CacheController.
    enable_invariant_checks`), naming the exact invariant and location.
    """


class PortConflictError(SimulationError):
    """An SRAM port was scheduled for two operations in the same cycle.

    Raised by :meth:`repro.sram.ports.PortTracker.reserve`, the
    no-stall variant of ``acquire``.
    """


class WorkerTimeoutError(SimulationError):
    """A campaign worker exceeded its per-benchmark wall-clock budget.

    Raised by :func:`repro.sim.resilience.run_supervised` after the
    hung worker process has been terminated.  Retryable: the supervisor
    counts it against the benchmark's :class:`RetryPolicy` budget.
    """


class WorkerCrashError(SimulationError):
    """A campaign worker process died before returning a result.

    Covers hard crashes — a killed process (SIGKILL/OOM), an injected
    ``os._exit`` or an interpreter abort — where no exception could
    cross the process boundary.  Raised by
    :func:`repro.sim.resilience.run_supervised`; retryable.
    """


class CheckpointError(ReproError):
    """A campaign checkpoint file is unusable.

    Raised by :mod:`repro.sim.checkpoint` when the journal header is
    missing or malformed, or when its config fingerprint does not match
    the campaign being resumed (a *stale* checkpoint — silently mixing
    rows from different configs would corrupt results).
    """


class CampaignFailedError(SimulationError):
    """A strict campaign had benchmarks exhaust their retry budget.

    Only raised with ``strict=True``; the default policy quarantines
    failed benchmarks into ``CampaignResult.failed_rows`` instead.
    ``failed_rows`` on the exception carries the per-benchmark
    :class:`repro.sim.resilience.FailedRow` records.
    """

    def __init__(self, message: str, failed_rows=()) -> None:
        super().__init__(message)
        self.failed_rows = tuple(failed_rows)
