"""Exception hierarchy for the reproduction library.

All library-specific failures derive from :class:`ReproError` so callers
can catch configuration and simulation failures without also swallowing
programming errors like ``TypeError``.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ValidationError",
    "TypeContractError",
    "StateError",
    "TraceFormatError",
    "SimulationError",
    "InvariantViolation",
    "PortConflictError",
    "WorkerTimeoutError",
    "WorkerCrashError",
    "BreakerOpenError",
    "CheckpointError",
    "StoreError",
    "StoreIntegrityError",
    "CampaignFailedError",
    "LintConfigError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A cache/SRAM/workload configuration is internally inconsistent."""


class ValidationError(ConfigurationError, ValueError):
    """A caller passed an invalid value (bad range, unknown name, ...).

    Dual-inherits :class:`ValueError` so ``except ValueError`` at call
    sites (and third-party code) keeps working, while ``except
    ReproError`` — the CLI and campaign-quarantine contract — now also
    catches it.  Via :class:`ConfigurationError` it maps to exit code 2
    (usage) at the CLI entry point.  This is the standard replacement
    for ``raise ValueError`` in library code (lint rule RPR111).
    """


class TypeContractError(ReproError, TypeError):
    """A caller passed a value of the wrong type.

    Dual-inherits :class:`TypeError`; the replacement for ``raise
    TypeError`` in library code (lint rule RPR111).
    """


class StateError(ReproError, RuntimeError):
    """An object was used in a state that forbids the operation.

    E.g. processing through a finalized controller or timing with a
    never-started timer.  Dual-inherits :class:`RuntimeError`; the
    replacement for ``raise RuntimeError`` in library code (RPR111).
    """


class TraceFormatError(ReproError):
    """A trace file or record is malformed."""


class SimulationError(ReproError):
    """A simulation reached an impossible state (internal invariant broke)."""


class InvariantViolation(SimulationError):
    """A structural invariant of the cache or controller state broke.

    Raised by the debug-mode checks in :mod:`repro.check.invariants`
    (see :meth:`repro.core.controller.CacheController.
    enable_invariant_checks`), naming the exact invariant and location.
    """


class PortConflictError(SimulationError):
    """An SRAM port was scheduled for two operations in the same cycle.

    Raised by :meth:`repro.sram.ports.PortTracker.reserve`, the
    no-stall variant of ``acquire``.
    """


class WorkerTimeoutError(SimulationError):
    """A campaign worker exceeded its per-benchmark wall-clock budget.

    Raised by :func:`repro.sim.resilience.run_supervised` after the
    hung worker process has been terminated.  Retryable: the supervisor
    counts it against the benchmark's :class:`RetryPolicy` budget.
    """


class WorkerCrashError(SimulationError):
    """A campaign worker process died before returning a result.

    Covers hard crashes — a killed process (SIGKILL/OOM), an injected
    ``os._exit`` or an interpreter abort — where no exception could
    cross the process boundary.  Raised by
    :func:`repro.sim.resilience.run_supervised`; retryable.
    """


class BreakerOpenError(SimulationError):
    """A per-benchmark circuit breaker tripped; the row was skipped.

    Raised by :func:`repro.sim.resilience.retry_call` once a
    :class:`repro.sim.resilience.CircuitBreaker` has recorded its
    failure threshold: instead of burning the remaining retry budget on
    a row that keeps failing, the row is skipped and quarantined
    (``FailedRow.breaker_skipped``), and the campaign degrades
    gracefully.  Deliberately *not* retryable in spirit — the breaker
    exists to stop retries — although it derives from
    :class:`SimulationError` so the quarantine contract still catches
    it.
    """


class CheckpointError(ReproError):
    """A campaign checkpoint file is unusable.

    Raised by :mod:`repro.sim.checkpoint` when the journal header is
    missing or malformed, or when its config fingerprint does not match
    the campaign being resumed (a *stale* checkpoint — silently mixing
    rows from different configs would corrupt results).
    """


class StoreError(ReproError):
    """A result-store operation could not be performed.

    Covers unusable store roots (a file where a directory is needed),
    malformed invalidation selectors, and commit failures that are not
    plain OS errors.  Distinct from :class:`StoreIntegrityError`, which
    classifies *entry* damage found on read.
    """


class StoreIntegrityError(StoreError):
    """A result-store entry failed validation on read.

    ``reason`` classifies the damage: ``"torn"`` (unparseable JSON — a
    torn or truncated write), ``"schema"`` (wrong format name or schema
    version), ``"skew"`` (header does not match the requested key — a
    renamed file or a code/config version mismatch), or ``"crc"`` (the
    payload checksum does not match).  The store never raises this to
    campaign callers; it quarantines the entry and reports a miss so
    the row is recomputed and re-stored (a self-healing read).
    """

    def __init__(self, message: str, reason: str = "corrupt") -> None:
        super().__init__(message)
        self.reason = reason


class CampaignFailedError(SimulationError):
    """A strict campaign had benchmarks exhaust their retry budget.

    Only raised with ``strict=True``; the default policy quarantines
    failed benchmarks into ``CampaignResult.failed_rows`` instead.
    ``failed_rows`` on the exception carries the per-benchmark
    :class:`repro.sim.resilience.FailedRow` records.
    """

    def __init__(self, message: str, failed_rows: Iterable[object] = ()) -> None:
        super().__init__(message)
        self.failed_rows = tuple(failed_rows)


class LintConfigError(ConfigurationError):
    """A ``repro-8t lint`` invocation or artifact is unusable.

    Covers unknown rule ids, unreadable paths, malformed baseline
    files, and invalid rule registrations.  Distinct from findings:
    findings are facts about the linted tree (exit code 1), this error
    means the lint run itself could not be configured (exit code 2).
    """
