"""Columnar (second-generation) execution engine.

The batched engine removed per-record object construction but still
pays Python's per-record indirection tax on every access: container
lookups for the set's slot arrays, method calls into ``cache._fill``,
``memory.read_block`` and the Set-Buffer, attribute traffic on shared
counters.  This tier removes that tax.  A :class:`ColumnarChunk` holds
a trace chunk as NumPy arrays (zero-copy views when it comes from an
``RPCOL1`` mmap, see :mod:`repro.trace.colio`); the kernels below use
vectorized decode/regrouping to set the loops up, then replay records
through loops whose *entire* working state lives in local variables —
the fill path, next-level memory transfers, buffer write-backs and all
statistics inlined, flushed once per chunk.

Why this is bit-identical
-------------------------
* **Ticks are positional.**  Every access bumps the cache's LRU tick
  exactly once (hit → ``_touch``, miss → ``_fill``/``_record_fill``) in
  every technique, so the access at chunk position ``p`` always stamps
  ``tick0 + p``.  Stamps are therefore assigned by position, which
  frees the conventional/RMW kernel to regroup records.
* **Set-disjoint state.**  Tags, stamps, data, dirty bits and miss
  traffic are all per-set, and eviction/fill block addresses compose
  the set index, so accesses to different sets never interact.  The
  conventional/RMW kernel exploits this: a stable argsort groups the
  chunk by set (trace order preserved within each set), the per-set
  slot arrays are hoisted into locals once per group, and each group
  replays independently — same state transitions, same aggregate
  counters, radically fewer lookups.
* **WG runs in trace order.**  The Write-Grouping buffer is global
  state, so that kernel keeps trace order; with the paper's single
  buffer entry its whole control plane reduces to four locals
  (buffered set, dirty bit, data rows, modified-word set) plus one
  invariant — while a set is buffered the cache never refills it
  (``fill_flush`` drains the buffer first), hence the Tag-Buffer's
  tags always equal the cache's and every probe outcome is implied by
  the cache probe.  Consecutive same-set write runs are pre-grouped
  vectorized (``np.flatnonzero(np.diff(...))``).

Gating matches :meth:`CacheController.process_batch` exactly (fast-path
name, telemetry, invariant checker, ``engine_fast_ok``); anything the
kernels cannot reproduce bit-identically — WG buffer pools with more
than one entry, non-LRU replacement, telemetry, invariant checks —
falls back to the batched engine for the whole chunk.  The four-way
scalar↔batched↔columnar↔oracle differential in ``tests/engine/`` and
``repro/check/`` enforces bit-identity across all of it.

NumPy is an optional extra; :func:`require_numpy` raises a
:class:`ValidationError` when it is missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional

from repro.cache.config import CacheGeometry
from repro.engine.batch import AccessBatch, iter_batches
from repro.errors import StateError, ValidationError
from repro.trace.record import MemoryAccess

try:
    import numpy
except ImportError:  # pragma: no cover - exercised on CI without numpy
    numpy = None  # type: ignore[assignment]

np: Any = numpy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import CacheController
    from repro.core.write_grouping import WriteGroupingController

__all__ = [
    "HAVE_NUMPY",
    "ColumnarChunk",
    "require_numpy",
    "iter_chunks",
    "process_chunk",
]

HAVE_NUMPY = np is not None

_NO_TAG = -1


def require_numpy() -> None:
    """Raise :class:`ValidationError` unless NumPy is importable."""
    if np is None:
        raise ValidationError(
            "engine='columnar' requires NumPy; install the 'columnar' "
            "extra (pip install repro-8t[columnar])"
        )


@dataclass
class ColumnarChunk:
    """One trace chunk as seven parallel NumPy arrays.

    The columnar counterpart of :class:`AccessBatch`: ``icounts``/
    ``addresses``/``values`` are u64, ``kinds`` u8, and the pre-split
    ``set_indices``/``tags``/``word_offsets`` are i64 (signed, so they
    compare directly against the cache's slot-array tags, whose invalid
    sentinel is ``-1``).  Slices of
    :class:`repro.trace.colio.ColumnarTrace` columns arrive here as
    zero-copy views.
    """

    geometry: CacheGeometry
    icounts: Any
    kinds: Any
    addresses: Any
    values: Any
    set_indices: Any
    tags: Any
    word_offsets: Any
    _grouped: Any = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.kinds)

    def grouped(self) -> "Any":
        """The set-grouped, run-compressed projection of this chunk.

        A pure function of the trace data and geometry — independent of
        any cache or controller state — so it is computed once and
        cached: a campaign sweeping several techniques over the same
        chunks (see :mod:`repro.sim.parallel`) pays for the projection
        once, not once per technique.  See
        :func:`_grouped_projection` for the layout.
        """
        if self._grouped is None:
            self._grouped = _grouped_projection(self)
        return self._grouped

    @classmethod
    def from_access_batch(cls, batch: AccessBatch) -> "ColumnarChunk":
        """Lift a list-based batch into array form."""
        require_numpy()
        return cls(
            geometry=batch.geometry,
            icounts=np.array(batch.icounts, dtype=np.uint64),
            kinds=np.array(batch.kinds, dtype=np.uint8),
            addresses=np.array(batch.addresses, dtype=np.uint64),
            values=np.array(batch.values, dtype=np.uint64),
            set_indices=np.array(batch.set_indices, dtype=np.int64),
            tags=np.array(batch.tags, dtype=np.int64),
            word_offsets=np.array(batch.word_offsets, dtype=np.int64),
        )

    def to_access_batch(self) -> AccessBatch:
        """Decode back to plain-int lists (the batched-engine fallback)."""
        return AccessBatch(
            geometry=self.geometry,
            icounts=self.icounts.tolist(),
            kinds=self.kinds.tolist(),
            addresses=self.addresses.tolist(),
            values=self.values.tolist(),
            set_indices=self.set_indices.tolist(),
            tags=self.tags.tolist(),
            word_offsets=self.word_offsets.tolist(),
        )


def _grouped_projection(chunk: ColumnarChunk) -> Any:
    """Set-grouped, run-compressed view of a chunk (pure trace transform).

    A stable argsort groups the chunk by set, preserving trace order
    within each set — legal input to the plain kernel because per-set
    cache state is disjoint and LRU stamps are positional.  Consecutive
    same-(set, tag) records then form *runs* in which only the first
    record can miss (the block stays resident — an eviction would need
    another access to the set, and the run is contiguous in sorted
    order) and only writes mutate data.  A read affects nothing but the
    LRU stamp, and stamps are only *read* after its run ends (victim
    choice happens on a miss, i.e. in a later run of the set), so every
    record may stamp with its run's final trace position and non-first
    reads drop out entirely.

    Returns ``(set_l, pos_l, flag_l, tag_l, word_l, val_l, fword_l,
    writes)``: plain-int lists over the kept records (run-firsts plus
    writes), where ``pos_l`` is the run-final chunk position (the
    kernel adds its tick base), ``flag_l`` packs the record's kind in
    bit 0 and "run contains a write" in bit 1, ``fword_l`` is the first
    word-store index of the record's block (the fill path's memory
    address, ``WORD_BYTES == 8``), and ``writes`` counts writes in the
    whole chunk.  Everything here depends only on the trace data and
    the chunk's geometry — never on cache or controller state — so the
    result is cached on the chunk and shared across techniques.
    """
    set_arr = chunk.set_indices
    n = len(set_arr)
    wpb = chunk.geometry.words_per_block
    order = np.argsort(set_arr, kind="stable")
    s_sorted = set_arr[order]
    t_sorted = chunk.tags[order]
    k_sorted = chunk.kinds[order]
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.logical_or(
        s_sorted[1:] != s_sorted[:-1],
        t_sorted[1:] != t_sorted[:-1],
        out=new_run[1:],
    )
    run_starts = np.flatnonzero(new_run)
    run_id = np.cumsum(new_run) - 1
    run_end = np.append(run_starts[1:], n) - 1
    # Within a run positions increase (stable sort), so the run's last
    # sorted record carries its final position.
    pos_sorted = order[run_end][run_id]
    flag_sorted = k_sorted + 2 * np.logical_or.reduceat(
        k_sorted, run_starts
    )[run_id].astype(np.uint8)
    keep = np.flatnonzero(new_run | (k_sorted != 0))
    sel = order[keep]
    return (
        s_sorted.take(keep).tolist(),
        pos_sorted.take(keep).tolist(),
        flag_sorted.take(keep).tolist(),
        t_sorted.take(keep).tolist(),
        chunk.word_offsets.take(sel).tolist(),
        chunk.values.take(sel).tolist(),
        ((chunk.addresses.take(sel) >> 3).astype(np.int64) & ~(wpb - 1))
        .tolist(),
        int(np.count_nonzero(k_sorted)),
    )


def iter_chunks(
    trace: Iterable[MemoryAccess],
    geometry: CacheGeometry,
    batch_size: Optional[int] = None,
) -> Iterator[ColumnarChunk]:
    """Chunk a scalar trace into :class:`ColumnarChunk` arrays.

    Streaming like :func:`repro.engine.batch.iter_batches` (which does
    the decode); this adds only the list→array lift per chunk.
    """
    require_numpy()
    for batch in iter_batches(trace, geometry, batch_size):
        yield ColumnarChunk.from_access_batch(batch)


def process_chunk(controller: "CacheController", chunk: ColumnarChunk) -> int:
    """Run one chunk through the columnar kernels; returns records consumed.

    Mirrors :meth:`CacheController.process_batch`'s contract (finalized
    check, geometry check, gating) and falls back to the batched engine
    — itself gated down to scalar when needed — whenever the columnar
    kernels cannot reproduce the exact semantics.
    """
    require_numpy()
    if controller._finalized:  # noqa: SLF001 - engine contract
        raise StateError("controller already finalized")
    if chunk.geometry != controller.cache.geometry:
        raise ValidationError(
            f"batch decoded for {chunk.geometry.describe()} fed to a "
            f"{controller.cache.geometry.describe()} cache"
        )
    n = len(chunk)
    if n == 0:
        return 0
    name = controller.name
    fast_ok = (
        name == controller._fast_path_name  # noqa: SLF001 - engine contract
        and not controller._obs  # noqa: SLF001
        and controller._invariant_checker is None  # noqa: SLF001
        and controller.cache.engine_fast_ok
    )
    if fast_ok and name in ("conventional", "rmw"):
        _process_chunk_plain(controller, chunk, is_rmw=name == "rmw")
    elif (
        fast_ok
        and name in ("wg", "wg_rb")
        and len(controller._entries) == 1  # noqa: SLF001
    ):
        _process_chunk_wg(controller, chunk)  # type: ignore[arg-type]
    else:
        return controller.process_batch(chunk.to_access_batch())
    return n


def _process_chunk_plain(
    controller: "CacheController", chunk: ColumnarChunk, is_rmw: bool
) -> None:
    """Columnar kernel shared by the conventional and RMW controllers.

    A stable argsort groups the chunk by set (preserving trace order
    within each set — legal because per-set state is disjoint and LRU
    stamps are positional); each group replays with the set's slot
    arrays hoisted into locals and the miss path — way choice, dirty
    eviction, next-level block transfer, refill — inlined down to plain
    list and dict operations on the functional memory's word store.
    All statistics accumulate in locals and flush once.
    """
    cache = controller.cache
    tags_by_set = cache._tags  # noqa: SLF001 - engine contract
    dirty_by_set = cache._dirty  # noqa: SLF001
    data_by_set = cache._data  # noqa: SLF001
    stamps_by_set = cache._stamps  # noqa: SLF001
    tick0 = cache._tick  # noqa: SLF001
    memory = cache.memory
    mem_words = memory._words  # noqa: SLF001
    geometry = cache.geometry
    wpb = geometry.words_per_block
    offset_bits = geometry.offset_bits
    tag_word_shift = offset_bits + geometry.index_bits - 3
    set_word_shift = offset_bits - 3
    count_mt = controller.count_miss_traffic
    word_range = range(wpb)
    n = len(chunk)

    set_l, pos_l, flag_l, tag_l, word_l, val_l, fword_l, writes = (
        chunk.grouped()
    )
    mem_get = mem_words.get

    # Hits need no counting in the loop: they are derived at flush time
    # from the vectorized totals minus the (rare) miss counters.
    read_misses = write_misses = 0
    evictions = dirty_evictions = 0
    current_set = -1
    tags: Any = None
    stamps: Any = None
    dirty: Any = None
    data: Any = None
    set_word_base = 0
    # One-entry (tag -> way) memo per set group.  Every run-first record
    # resolves (its tag differs from the previous run's, which is what
    # the memo holds) and refreshes the memo, so the memo branch fires
    # exactly on non-first records of a run — which by construction of
    # the projection's keep mask are always writes whose way, stamp and
    # dirty state the run-first already settled.  Tags only change
    # through the fill path (which refreshes the memo), so the memo can
    # never go stale.  -2 collides with no tag (>= -1).
    last_tag = -2
    last_base = 0
    for s, pos, flag, t, w, v, first_word in zip(
        set_l, pos_l, flag_l, tag_l, word_l, val_l, fword_l
    ):
        if t == last_tag and s == current_set:
            data[last_base + w] = v
            continue
        if s != current_set:
            current_set = s
            tags = tags_by_set[s]
            stamps = stamps_by_set[s]
            dirty = dirty_by_set[s]
            data = data_by_set[s]
            set_word_base = s << set_word_shift
        if t in tags:
            way = tags.index(t)
        else:
            # Miss: ``cache._fill``, inlined.  An invalid way means no
            # victim; otherwise the LRU way is evicted (written back
            # when dirty).
            if flag & 1:
                write_misses += 1
            else:
                read_misses += 1
            if _NO_TAG in tags:
                way = tags.index(_NO_TAG)
                base = way * wpb
            else:
                way = stamps.index(min(stamps))
                base = way * wpb
                evictions += 1
                if dirty[way]:
                    dirty_evictions += 1
                    victim_word = (tags[way] << tag_word_shift) | set_word_base
                    for o in word_range:
                        mem_words[victim_word + o] = data[base + o]
            data[base : base + wpb] = [
                mem_get(o, 0) for o in range(first_word, first_word + wpb)
            ]
            tags[way] = t
            dirty[way] = False
        # LRU stamps are positional, so the run-final stamp is known up
        # front; the dirty bit may be set as soon as the run is known to
        # contain a write (bit 1 of ``flag``) — nothing observes it
        # before the run's writes have applied.
        stamps[way] = tick0 + pos
        last_tag = t
        last_base = way * wpb
        if flag:
            dirty[way] = True
            if flag & 1:
                data[last_base + w] = v

    reads = n - writes
    read_hits = reads - read_misses
    write_hits = writes - write_misses
    block_reads = read_misses + write_misses
    block_writes = dirty_evictions
    mt_fills = block_reads if count_mt else 0
    mt_dirty = dirty_evictions
    cache._tick = tick0 + n  # noqa: SLF001
    controller._current_icount = int(chunk.icounts[-1])  # noqa: SLF001
    memory.block_reads += block_reads
    memory.block_writes += block_writes
    counts = controller.counts
    counts.read_requests += reads
    counts.write_requests += writes
    stats = cache.stats
    stats.read_hits += read_hits
    stats.write_hits += write_hits
    stats.read_misses += read_misses
    stats.write_misses += write_misses
    stats.evictions += evictions
    stats.dirty_evictions += dirty_evictions
    events = controller.events
    row_words = controller._row_words  # noqa: SLF001
    if is_rmw:
        counts.rmw_operations += writes
        events.rmw_operations += writes
        events.precharges += reads + writes
        events.rwl_pulses += reads + writes
        events.row_reads += reads + writes
        events.words_routed += reads + writes * row_words
        events.wwl_pulses += writes
        events.row_writes += writes
        events.words_driven += writes * row_words
    else:
        events.precharges += reads
        events.rwl_pulses += reads
        events.row_reads += reads
        events.words_routed += reads
        events.wwl_pulses += writes
        events.row_writes += writes
        events.words_driven += writes
    if count_mt and mt_fills:
        events.rmw_operations += mt_fills
        events.precharges += mt_dirty + mt_fills
        events.rwl_pulses += mt_dirty + mt_fills
        events.row_reads += mt_dirty + mt_fills
        events.words_routed += mt_dirty * wpb + mt_fills * row_words
        events.wwl_pulses += mt_fills
        events.row_writes += mt_fills
        events.words_driven += mt_fills * row_words
        counts.rmw_operations += mt_fills


def _process_chunk_wg(
    controller: "WriteGroupingController", chunk: ColumnarChunk
) -> None:
    """Columnar kernel for WG / WG+RB with a single buffer entry.

    Runs in trace order (the buffer is global state), but the whole
    buffer reduces to locals: buffered set (``-1`` when invalid), dirty
    bit, ``dirty_since``, the Set-Buffer's data rows and modified-word
    set.  Write-backs, buffer fills and cache fills are inlined; the
    Tag-Buffer needs no tag probes because while a set is buffered its
    cache tags cannot change (a miss drains the buffer first), so a
    cache-hit read of the buffered set *is* a Tag-Buffer hit.  The
    buffer objects are rematerialized once at chunk end.  Consecutive
    same-(kind, set) runs are pre-grouped vectorized so the inner write
    loop consumes whole runs without rescanning.
    """
    cache = controller.cache
    tags_by_set = cache._tags  # noqa: SLF001 - engine contract
    dirty_by_set = cache._dirty  # noqa: SLF001
    data_by_set = cache._data  # noqa: SLF001
    stamps_by_set = cache._stamps  # noqa: SLF001
    tick0 = cache._tick  # noqa: SLF001
    memory = cache.memory
    mem_words = memory._words  # noqa: SLF001
    geometry = cache.geometry
    wpb = geometry.words_per_block
    offset_bits = geometry.offset_bits
    tag_word_shift = offset_bits + geometry.index_bits - 3
    set_word_shift = offset_bits - 3
    row_words = controller._row_words  # noqa: SLF001
    count_mt = controller.count_miss_traffic
    detect = controller.detect_silent_writes
    bypass_reads = controller._rb_bypass  # noqa: SLF001
    word_range = range(wpb)
    entry = controller._entries[0]  # noqa: SLF001
    tag_buffer = entry.tag_buffer
    set_buffer = entry.set_buffer

    # Buffer state, lifted into locals for the duration of the chunk.
    if tag_buffer.valid:
        buffered_set = tag_buffer.set_index
        buffer_dirty = tag_buffer.dirty
        dirty_since = entry.dirty_since
        buffer_rows, modified = set_buffer.engine_views()
    else:
        buffered_set = -1
        buffer_dirty = False
        dirty_since = None
        buffer_rows = modified = None  # type: ignore[assignment]

    kinds = chunk.kinds
    set_arr = chunk.set_indices
    n = len(kinds)
    set_l = set_arr.tolist()
    kind_l = kinds.tolist()
    tag_l = chunk.tags.tolist()
    word_l = chunk.word_offsets.tolist()
    val_l = chunk.values.tolist()
    ic_l = chunk.icounts.tolist()
    fword_l = ((chunk.addresses >> 3).astype(np.int64) & ~(wpb - 1)).tolist()
    mem_get = mem_words.get
    # Vectorized run-length grouping: run_end_l[i] is the end
    # (exclusive) of the maximal run of records sharing position i's
    # (kind, set) pair.
    change = (
        np.flatnonzero(np.diff(set_arr) | (kinds[1:] != kinds[:-1])) + 1
    )
    run_bounds = np.concatenate((change, [n]))
    run_starts = np.concatenate(([0], change))
    run_end_l = np.repeat(run_bounds, run_bounds - run_starts).tolist()

    reads = 0  # read requests
    read_hits = 0  # of which cache hits
    row_reads = 0  # reads served by an array row read (1 word routed)
    bypassed = 0  # reads served from the Set-Buffer (WG+RB only)
    writes = 0  # write requests
    write_hits = 0  # of which cache hits
    grouped = 0  # writes merged on a Tag-Buffer hit
    silent = 0  # of which silent (when detection is on)
    read_misses = write_misses = evictions = dirty_evictions = 0
    buffer_fills = 0  # Set-Buffer fills (full-row reads)
    premature_wb = eviction_wb = fill_flush_wb = 0  # full-row writes
    residency_total = residency_max = windows = 0

    i = 0
    while i < n:
        s = set_l[i]
        t = tag_l[i]
        tags = tags_by_set[s]
        if not kind_l[i]:
            # Read request.
            reads += 1
            row_reads += 1
            if t in tags:
                read_hits += 1
                way = tags.index(t)
                stamps_by_set[s][way] = tick0 + i
                if buffered_set == s:
                    # Tag-Buffer hit (implied: buffered tags equal the
                    # cache tags while the set stays buffered).
                    if bypass_reads:
                        row_reads -= 1
                        bypassed += 1
                    elif buffer_dirty:
                        # WG: premature write-back, inlined.
                        target = data_by_set[s]
                        target_dirty = dirty_by_set[s]
                        for bway, bword in modified:
                            target[bway * wpb + bword] = buffer_rows[bway][bword]
                            target_dirty[bway] = True
                        modified.clear()
                        buffer_dirty = False
                        premature_wb += 1
                        if dirty_since is not None:
                            residency = ic_l[i] - dirty_since
                            if residency < 0:
                                residency = 0
                            residency_total += residency
                            if residency > residency_max:
                                residency_max = residency
                            windows += 1
                            dirty_since = None
            else:
                # Cache miss: drain-and-drop the buffer if the fill is
                # about to mutate the buffered set, then fill (inlined).
                if buffered_set == s:
                    if buffer_dirty:
                        target = data_by_set[s]
                        target_dirty = dirty_by_set[s]
                        for bway, bword in modified:
                            target[bway * wpb + bword] = buffer_rows[bway][bword]
                            target_dirty[bway] = True
                        modified.clear()
                        buffer_dirty = False
                        fill_flush_wb += 1
                        if dirty_since is not None:
                            residency = ic_l[i] - dirty_since
                            if residency < 0:
                                residency = 0
                            residency_total += residency
                            if residency > residency_max:
                                residency_max = residency
                            windows += 1
                            dirty_since = None
                    buffered_set = -1
                    buffer_rows = modified = None  # type: ignore[assignment]
                read_misses += 1
                stamps = stamps_by_set[s]
                data = data_by_set[s]
                set_dirty = dirty_by_set[s]
                if _NO_TAG in tags:
                    way = tags.index(_NO_TAG)
                    base = way * wpb
                else:
                    way = stamps.index(min(stamps))
                    base = way * wpb
                    evictions += 1
                    if set_dirty[way]:
                        dirty_evictions += 1
                        victim_word = (
                            tags[way] << tag_word_shift
                        ) | (s << set_word_shift)
                        for o in word_range:
                            mem_words[victim_word + o] = data[base + o]
                first_word = fword_l[i]
                data[base : base + wpb] = [
                    mem_get(o, 0) for o in range(first_word, first_word + wpb)
                ]
                tags[way] = t
                set_dirty[way] = False
                stamps[way] = tick0 + i
            i += 1
            continue

        # Write run: every record in [i, run_end) is a write to set s.
        run_end = run_end_l[i]
        stamps = stamps_by_set[s]
        k = i
        while k < run_end:
            t = tag_l[k]
            writes += 1
            if t in tags:
                write_hits += 1
                way = tags.index(t)
                stamps[way] = tick0 + k
            else:
                # Cache miss mid-run: drain the buffer first when it
                # holds this set, then fill (both inlined, as above).
                if buffered_set == s:
                    if buffer_dirty:
                        target = data_by_set[s]
                        target_dirty = dirty_by_set[s]
                        for bway, bword in modified:
                            target[bway * wpb + bword] = buffer_rows[bway][bword]
                            target_dirty[bway] = True
                        modified.clear()
                        buffer_dirty = False
                        fill_flush_wb += 1
                        if dirty_since is not None:
                            residency = ic_l[k] - dirty_since
                            if residency < 0:
                                residency = 0
                            residency_total += residency
                            if residency > residency_max:
                                residency_max = residency
                            windows += 1
                            dirty_since = None
                    buffered_set = -1
                    buffer_rows = modified = None  # type: ignore[assignment]
                write_misses += 1
                data = data_by_set[s]
                set_dirty = dirty_by_set[s]
                if _NO_TAG in tags:
                    way = tags.index(_NO_TAG)
                    base = way * wpb
                else:
                    way = stamps.index(min(stamps))
                    base = way * wpb
                    evictions += 1
                    if set_dirty[way]:
                        dirty_evictions += 1
                        victim_word = (
                            tags[way] << tag_word_shift
                        ) | (s << set_word_shift)
                        for o in word_range:
                            mem_words[victim_word + o] = data[base + o]
                first_word = fword_l[k]
                data[base : base + wpb] = [
                    mem_get(o, 0) for o in range(first_word, first_word + wpb)
                ]
                tags[way] = t
                set_dirty[way] = False
                stamps[way] = tick0 + k
            if buffered_set == s:
                grouped += 1
            else:
                # Tag-Buffer miss: drain the (single) victim entry and
                # refill it with this set — Algorithm 1's write path,
                # inlined (``_write_back(entry, "eviction")`` +
                # ``_fill_entry``).
                if buffer_dirty:
                    target = data_by_set[buffered_set]
                    target_dirty = dirty_by_set[buffered_set]
                    for bway, bword in modified:
                        target[bway * wpb + bword] = buffer_rows[bway][bword]
                        target_dirty[bway] = True
                    buffer_dirty = False
                    eviction_wb += 1
                    if dirty_since is not None:
                        residency = ic_l[k] - dirty_since
                        if residency < 0:
                            residency = 0
                        residency_total += residency
                        if residency > residency_max:
                            residency_max = residency
                        windows += 1
                        dirty_since = None
                data = data_by_set[s]
                buffer_rows = [
                    data[way_base : way_base + wpb]
                    for way_base in range(0, row_words, wpb)
                ]
                modified = set()
                buffered_set = s
                buffer_fills += 1
            row = buffer_rows[way]
            w = word_l[k]
            v = val_l[k]
            if row[w] == v:
                # Silent write: the buffer is left untouched when
                # detection is on; dirties it like any other write
                # otherwise.
                if detect:
                    silent += 1
                    k += 1
                    continue
            else:
                row[w] = v
                modified.add((way, w))
            if not buffer_dirty:
                dirty_since = ic_l[k]
                buffer_dirty = True
            k += 1
        i = run_end

    # Rematerialize the buffer objects from the locals.
    if buffered_set == -1:
        entry.invalidate()
        entry.dirty_since = None
    else:
        tag_buffer.valid = True
        tag_buffer.dirty = buffer_dirty
        tag_buffer.set_index = buffered_set
        tag_buffer._tags = tuple(  # noqa: SLF001 - engine contract
            tag if tag != _NO_TAG else None
            for tag in tags_by_set[buffered_set]
        )
        set_buffer.valid = True
        set_buffer.set_index = buffered_set
        set_buffer._data = buffer_rows  # noqa: SLF001
        set_buffer._modified = modified  # noqa: SLF001
        entry.dirty_since = dirty_since

    cache._tick = tick0 + n  # noqa: SLF001
    controller._current_icount = ic_l[-1]  # noqa: SLF001
    block_reads = read_misses + write_misses
    memory.block_reads += block_reads
    memory.block_writes += dirty_evictions
    mt_fills = block_reads if count_mt else 0
    mt_dirty = dirty_evictions
    counts = controller.counts
    counts.read_requests += reads
    counts.write_requests += writes
    counts.grouped_writes += grouped
    counts.silent_writes_detected += silent
    counts.bypassed_reads += bypassed
    counts.set_buffer_fills += buffer_fills
    counts.premature_writebacks += premature_wb
    counts.eviction_writebacks += eviction_wb
    counts.fill_flush_writebacks += fill_flush_wb
    counts.dirty_residency_total += residency_total
    if residency_max > counts.dirty_residency_max:
        counts.dirty_residency_max = residency_max
    counts.dirty_windows += windows
    stats = cache.stats
    stats.read_hits += read_hits
    stats.write_hits += write_hits
    stats.read_misses += read_misses
    stats.write_misses += write_misses
    stats.evictions += evictions
    stats.dirty_evictions += dirty_evictions
    events = controller.events
    wb_row_writes = premature_wb + eviction_wb + fill_flush_wb
    events.precharges += row_reads + buffer_fills
    events.rwl_pulses += row_reads + buffer_fills
    events.row_reads += row_reads + buffer_fills
    events.words_routed += row_reads + buffer_fills * row_words
    events.wwl_pulses += wb_row_writes
    events.row_writes += wb_row_writes
    events.words_driven += wb_row_writes * row_words
    events.set_buffer_reads += bypassed
    events.set_buffer_writes += writes
    if count_mt and mt_fills:
        events.rmw_operations += mt_fills
        events.precharges += mt_dirty + mt_fills
        events.rwl_pulses += mt_dirty + mt_fills
        events.row_reads += mt_dirty + mt_fills
        events.words_routed += mt_dirty * wpb + mt_fills * row_words
        events.wwl_pulses += mt_fills
        events.row_writes += mt_fills
        events.words_driven += mt_fills * row_words
        counts.rmw_operations += mt_fills
