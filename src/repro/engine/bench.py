"""Hot-path throughput benchmark: scalar vs batched vs columnar engine.

Replays one synthetic workload through every requested technique —
once through the scalar ``process()`` loop, once through the batched
``process_batch()`` engine, and (on request, NumPy permitting) once
through the columnar ``process_chunk()`` engine — and reports
accesses/second for each.  As a side effect every run cross-checks the
engines' event logs, so a benchmark run doubles as an end-to-end
equivalence check on a real workload.

Methodology: every engine is timed on pre-decoded input.  The scalar
engine consumes materialized records, the batched engine pre-built
:class:`AccessBatch` lists, the columnar engine pre-built
:class:`ColumnarChunk` arrays with their grouped projection
pre-computed — the projection is a pure trace transform cached on the
chunk and shared across techniques (see
:meth:`repro.engine.columnar.ColumnarChunk.grouped`), so it belongs to
the decode stage the benchmark deliberately excludes.

Entry points: ``repro-8t bench`` (CLI) and
``benchmarks/bench_hotpath.py`` (writes ``BENCH_hotpath.json`` for the
CI perf-smoke job).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.core.registry import CONTROLLER_NAMES, make_controller
from repro.engine.batch import iter_batches
from repro.errors import ReproError, ValidationError
from repro.trace.record import MemoryAccess
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.cache import SetAssociativeCache
    from repro.sram.events import SRAMEventLog

__all__ = ["BENCH_ENGINES", "BenchResult", "run_hotpath_bench", "bench_report"]


@dataclass(frozen=True)
class BenchResult:
    """Throughput of one technique under the measured engines.

    ``columnar_seconds`` is ``None`` when the columnar engine was not
    measured (not requested, or NumPy absent); ``to_dict`` omits the
    columnar keys in that case so existing snapshot consumers see the
    exact historical shape.
    """

    technique: str
    accesses: int
    scalar_seconds: float
    batched_seconds: float
    columnar_seconds: Optional[float] = None

    @property
    def scalar_aps(self) -> float:
        """Scalar accesses/second."""
        return self.accesses / self.scalar_seconds if self.scalar_seconds else 0.0

    @property
    def batched_aps(self) -> float:
        """Batched accesses/second."""
        return self.accesses / self.batched_seconds if self.batched_seconds else 0.0

    @property
    def speedup(self) -> float:
        """Batched over scalar throughput."""
        return self.scalar_seconds / self.batched_seconds if self.batched_seconds else 0.0

    @property
    def columnar_aps(self) -> float:
        """Columnar accesses/second (0.0 when not measured)."""
        if not self.columnar_seconds:
            return 0.0
        return self.accesses / self.columnar_seconds

    @property
    def columnar_speedup(self) -> float:
        """Columnar over *batched* throughput (0.0 when not measured)."""
        if not self.columnar_seconds:
            return 0.0
        return self.batched_seconds / self.columnar_seconds

    def to_dict(self) -> dict:
        doc = {
            "technique": self.technique,
            "accesses": self.accesses,
            "scalar_seconds": self.scalar_seconds,
            "batched_seconds": self.batched_seconds,
            "scalar_accesses_per_second": self.scalar_aps,
            "batched_accesses_per_second": self.batched_aps,
            "speedup": self.speedup,
        }
        if self.columnar_seconds is not None:
            doc["columnar_seconds"] = self.columnar_seconds
            doc["columnar_accesses_per_second"] = self.columnar_aps
            doc["columnar_speedup"] = self.columnar_speedup
        return doc


def _time_scalar(
    technique: str, trace: Sequence[MemoryAccess], geometry: CacheGeometry
) -> Tuple[float, "SRAMEventLog"]:
    controller = make_controller(technique, _fresh_cache(geometry))
    process = controller.process
    start = time.perf_counter()
    for access in trace:
        process(access)
    elapsed = time.perf_counter() - start
    controller.finalize()
    return elapsed, controller.events


def _time_batched(
    technique: str,
    trace: Sequence[MemoryAccess],
    geometry: CacheGeometry,
    batch_size: Optional[int],
) -> Tuple[float, "SRAMEventLog"]:
    controller = make_controller(technique, _fresh_cache(geometry))
    batches = list(iter_batches(trace, geometry, batch_size))
    process_batch = controller.process_batch
    start = time.perf_counter()
    for batch in batches:
        process_batch(batch)
    elapsed = time.perf_counter() - start
    controller.finalize()
    return elapsed, controller.events


def _time_columnar(
    technique: str,
    trace: Sequence[MemoryAccess],
    geometry: CacheGeometry,
    batch_size: Optional[int],
) -> Tuple[float, "SRAMEventLog"]:
    from repro.engine.columnar import iter_chunks, process_chunk

    controller = make_controller(technique, _fresh_cache(geometry))
    chunks = list(iter_chunks(trace, geometry, batch_size))
    for chunk in chunks:
        chunk.grouped()  # decode-stage projection (see module docstring)
    start = time.perf_counter()
    for chunk in chunks:
        process_chunk(controller, chunk)
    elapsed = time.perf_counter() - start
    controller.finalize()
    return elapsed, controller.events


def _fresh_cache(geometry: CacheGeometry) -> "SetAssociativeCache":
    from repro.cache.cache import SetAssociativeCache

    return SetAssociativeCache(geometry)


#: Engines ``run_hotpath_bench`` can time; scalar and batched are always
#: measured (they anchor the speedup baselines), columnar is opt-in.
BENCH_ENGINES = ("scalar", "batched", "columnar")


def run_hotpath_bench(
    techniques: Optional[Sequence[str]] = None,
    accesses: int = 200_000,
    geometry: CacheGeometry = BASELINE_GEOMETRY,
    benchmark: str = "bwaves",
    seed: int = 2012,
    batch_size: Optional[int] = None,
    repeats: int = 3,
    engines: Optional[Sequence[str]] = None,
) -> List[BenchResult]:
    """Measure per-engine throughput for each technique.

    ``engines`` selects which engines to time (default scalar +
    batched; add ``"columnar"`` for the second-generation engine —
    requires NumPy).  Scalar and batched are always measured: they
    anchor the recorded speedup baselines.  ``repeats`` runs of each
    engine are timed and the *fastest* kept (standard microbenchmark
    practice: the minimum is the least noisy estimator of the true
    cost).  Raises :class:`ReproError` if any two engines ever disagree
    on the resulting event log.
    """
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    engine_names = set(engines) if engines is not None else {"scalar", "batched"}
    unknown = engine_names.difference(BENCH_ENGINES)
    if unknown:
        raise ValidationError(
            f"unknown engine(s) {sorted(unknown)}; known: {BENCH_ENGINES}"
        )
    want_columnar = "columnar" in engine_names
    if want_columnar:
        from repro.engine.columnar import require_numpy

        require_numpy()
    names = list(techniques) if techniques is not None else list(CONTROLLER_NAMES)
    trace = generate_trace(get_profile(benchmark), accesses, seed=seed)
    results: List[BenchResult] = []
    for technique in names:
        scalar_best = batched_best = columnar_best = float("inf")
        scalar_events = batched_events = columnar_events = None
        for _ in range(repeats):
            elapsed, events = _time_scalar(technique, trace, geometry)
            if elapsed < scalar_best:
                scalar_best = elapsed
            scalar_events = events
            elapsed, events = _time_batched(technique, trace, geometry, batch_size)
            if elapsed < batched_best:
                batched_best = elapsed
            batched_events = events
            if want_columnar:
                elapsed, events = _time_columnar(
                    technique, trace, geometry, batch_size
                )
                if elapsed < columnar_best:
                    columnar_best = elapsed
                columnar_events = events
        if scalar_events != batched_events:
            raise ReproError(
                f"engine mismatch for {technique!r}: scalar and batched "
                "event logs differ — the batched fast path is broken"
            )
        if want_columnar and scalar_events != columnar_events:
            raise ReproError(
                f"engine mismatch for {technique!r}: scalar and columnar "
                "event logs differ — the columnar fast path is broken"
            )
        results.append(
            BenchResult(
                technique=technique,
                accesses=len(trace),
                scalar_seconds=scalar_best,
                batched_seconds=batched_best,
                columnar_seconds=columnar_best if want_columnar else None,
            )
        )
    return results


def bench_report(
    results: Sequence[BenchResult],
    benchmark: str,
    geometry: CacheGeometry,
    floors: Optional[Dict[str, float]] = None,
    environment: Optional[Dict[str, object]] = None,
    timestamp: Optional[str] = None,
) -> dict:
    """The ``BENCH_hotpath.json`` document.

    ``floors`` maps technique -> minimum acceptable speedup; techniques
    below their floor are listed under ``"regressions"`` (CI fails when
    that list is non-empty).  ``environment`` and ``timestamp`` are
    taken as parameters (this module is determinism-fenced and must not
    read the wall clock itself); callers pass
    ``repro.obs.perf.environment_fingerprint()`` / a UTC timestamp so
    snapshots stay interpretable across machines.
    """
    regressions = []
    if floors:
        for result in results:
            floor = floors.get(result.technique)
            if floor is not None and result.speedup < floor:
                regressions.append(
                    {
                        "technique": result.technique,
                        "speedup": result.speedup,
                        "floor": floor,
                    }
                )
    report: dict = {
        "benchmark": benchmark,
        "geometry": geometry.describe(),
        "results": [result.to_dict() for result in results],
        "regressions": regressions,
    }
    if environment is not None:
        report["environment"] = dict(environment)
    if timestamp is not None:
        report["timestamp_utc"] = timestamp
    return report
