"""Hot-path throughput benchmark: scalar vs batched engine.

Replays one synthetic workload through every requested technique twice
— once through the scalar ``process()`` loop, once through the batched
``process_batch()`` engine — and reports accesses/second for each.  As
a side effect every run cross-checks the two engines' event logs, so a
benchmark run doubles as an end-to-end equivalence check on a real
workload.

Entry points: ``repro-8t bench`` (CLI) and
``benchmarks/bench_hotpath.py`` (writes ``BENCH_hotpath.json`` for the
CI perf-smoke job).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.core.registry import CONTROLLER_NAMES, make_controller
from repro.engine.batch import iter_batches
from repro.errors import ReproError, ValidationError
from repro.trace.record import MemoryAccess
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.cache import SetAssociativeCache
    from repro.sram.events import SRAMEventLog

__all__ = ["BenchResult", "run_hotpath_bench", "bench_report"]


@dataclass(frozen=True)
class BenchResult:
    """Throughput of one technique under both engines."""

    technique: str
    accesses: int
    scalar_seconds: float
    batched_seconds: float

    @property
    def scalar_aps(self) -> float:
        """Scalar accesses/second."""
        return self.accesses / self.scalar_seconds if self.scalar_seconds else 0.0

    @property
    def batched_aps(self) -> float:
        """Batched accesses/second."""
        return self.accesses / self.batched_seconds if self.batched_seconds else 0.0

    @property
    def speedup(self) -> float:
        """Batched over scalar throughput."""
        return self.scalar_seconds / self.batched_seconds if self.batched_seconds else 0.0

    def to_dict(self) -> dict:
        return {
            "technique": self.technique,
            "accesses": self.accesses,
            "scalar_seconds": self.scalar_seconds,
            "batched_seconds": self.batched_seconds,
            "scalar_accesses_per_second": self.scalar_aps,
            "batched_accesses_per_second": self.batched_aps,
            "speedup": self.speedup,
        }


def _time_scalar(
    technique: str, trace: Sequence[MemoryAccess], geometry: CacheGeometry
) -> Tuple[float, "SRAMEventLog"]:
    controller = make_controller(technique, _fresh_cache(geometry))
    process = controller.process
    start = time.perf_counter()
    for access in trace:
        process(access)
    elapsed = time.perf_counter() - start
    controller.finalize()
    return elapsed, controller.events


def _time_batched(
    technique: str,
    trace: Sequence[MemoryAccess],
    geometry: CacheGeometry,
    batch_size: Optional[int],
) -> Tuple[float, "SRAMEventLog"]:
    controller = make_controller(technique, _fresh_cache(geometry))
    batches = list(iter_batches(trace, geometry, batch_size))
    process_batch = controller.process_batch
    start = time.perf_counter()
    for batch in batches:
        process_batch(batch)
    elapsed = time.perf_counter() - start
    controller.finalize()
    return elapsed, controller.events


def _fresh_cache(geometry: CacheGeometry) -> "SetAssociativeCache":
    from repro.cache.cache import SetAssociativeCache

    return SetAssociativeCache(geometry)


def run_hotpath_bench(
    techniques: Optional[Sequence[str]] = None,
    accesses: int = 200_000,
    geometry: CacheGeometry = BASELINE_GEOMETRY,
    benchmark: str = "bwaves",
    seed: int = 2012,
    batch_size: Optional[int] = None,
    repeats: int = 3,
) -> List[BenchResult]:
    """Measure scalar vs batched throughput for each technique.

    ``repeats`` runs of each engine are timed and the *fastest* kept
    (standard microbenchmark practice: the minimum is the least noisy
    estimator of the true cost).  Raises :class:`ReproError` if the two
    engines ever disagree on the resulting event log.
    """
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    names = list(techniques) if techniques is not None else list(CONTROLLER_NAMES)
    trace = generate_trace(get_profile(benchmark), accesses, seed=seed)
    results: List[BenchResult] = []
    for technique in names:
        scalar_best = batched_best = float("inf")
        scalar_events = batched_events = None
        for _ in range(repeats):
            elapsed, events = _time_scalar(technique, trace, geometry)
            if elapsed < scalar_best:
                scalar_best = elapsed
            scalar_events = events
            elapsed, events = _time_batched(technique, trace, geometry, batch_size)
            if elapsed < batched_best:
                batched_best = elapsed
            batched_events = events
        if scalar_events != batched_events:
            raise ReproError(
                f"engine mismatch for {technique!r}: scalar and batched "
                "event logs differ — the batched fast path is broken"
            )
        results.append(
            BenchResult(
                technique=technique,
                accesses=len(trace),
                scalar_seconds=scalar_best,
                batched_seconds=batched_best,
            )
        )
    return results


def bench_report(
    results: Sequence[BenchResult],
    benchmark: str,
    geometry: CacheGeometry,
    floors: Optional[Dict[str, float]] = None,
    environment: Optional[Dict[str, object]] = None,
    timestamp: Optional[str] = None,
) -> dict:
    """The ``BENCH_hotpath.json`` document.

    ``floors`` maps technique -> minimum acceptable speedup; techniques
    below their floor are listed under ``"regressions"`` (CI fails when
    that list is non-empty).  ``environment`` and ``timestamp`` are
    taken as parameters (this module is determinism-fenced and must not
    read the wall clock itself); callers pass
    ``repro.obs.perf.environment_fingerprint()`` / a UTC timestamp so
    snapshots stay interpretable across machines.
    """
    regressions = []
    if floors:
        for result in results:
            floor = floors.get(result.technique)
            if floor is not None and result.speedup < floor:
                regressions.append(
                    {
                        "technique": result.technique,
                        "speedup": result.speedup,
                        "floor": floor,
                    }
                )
    report: dict = {
        "benchmark": benchmark,
        "geometry": geometry.describe(),
        "results": [result.to_dict() for result in results],
        "regressions": regressions,
    }
    if environment is not None:
        report["environment"] = dict(environment)
    if timestamp is not None:
        report["timestamp_utc"] = timestamp
    return report
