"""Struct-of-arrays access batches.

The scalar hot path pays four layers of per-access Python calls (trace
decode → address split → residency → controller template methods).  An
:class:`AccessBatch` amortises the first two: a chunk of N records is
decoded once into parallel lists, with the set/tag/word address fields
pre-split using the shift/mask constants cached on
:class:`repro.cache.config.CacheGeometry` (``geometry.codec``).  The
batched controller fast paths (:meth:`CacheController.process_batch`)
then iterate plain ints instead of constructing a :class:`MemoryAccess`
object per record.

Invariants
----------
* Batching never changes results: every batched path is bit-identical
  to replaying the same records through ``process()`` one at a time
  (enforced by ``tests/engine/test_differential.py``).
* ``kinds`` uses ``0`` for reads and ``1`` for writes — the same
  encoding as the binary trace format.
* A batch is tied to the geometry whose codec decoded it; feeding it to
  a controller with a different geometry is a usage error (checked by
  ``process_batch``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.cache.config import CacheGeometry
from repro.trace.record import AccessType, MemoryAccess
from repro.errors import ValidationError

__all__ = ["AccessBatch", "DEFAULT_BATCH_SIZE", "iter_batches"]

DEFAULT_BATCH_SIZE = 4096
"""Default records per batch.

Large enough to amortise per-batch overhead (local rebinds, aggregate
flushes), small enough that a batch of parallel int lists stays cache-
resident and interactive runs keep their progress granularity.
"""

_READ = AccessType.READ
_WRITE = AccessType.WRITE


@dataclass
class AccessBatch:
    """One chunk of a trace in struct-of-arrays form.

    All lists have identical length.  ``set_indices``/``tags``/
    ``word_offsets`` are the pre-split address fields under the batch's
    geometry codec.
    """

    geometry: CacheGeometry
    icounts: List[int] = field(default_factory=list)
    kinds: List[int] = field(default_factory=list)
    addresses: List[int] = field(default_factory=list)
    values: List[int] = field(default_factory=list)
    set_indices: List[int] = field(default_factory=list)
    tags: List[int] = field(default_factory=list)
    word_offsets: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.icounts)

    def access(self, i: int) -> MemoryAccess:
        """Reconstruct record ``i`` as a scalar :class:`MemoryAccess`."""
        return MemoryAccess(
            icount=self.icounts[i],
            kind=_WRITE if self.kinds[i] else _READ,
            address=self.addresses[i],
            value=self.values[i],
        )

    def accesses(self) -> Iterator[MemoryAccess]:
        """Iterate the batch as scalar records (the fallback path)."""
        for i in range(len(self.icounts)):
            yield self.access(i)

    @classmethod
    def from_accesses(
        cls, accesses: Iterable[MemoryAccess], geometry: CacheGeometry
    ) -> "AccessBatch":
        """Decode already-parsed records into SoA form."""
        batch = cls(geometry=geometry)
        append = _BatchAppender(batch)
        for access in accesses:
            append(
                access.icount,
                1 if access.kind is _WRITE else 0,
                access.address,
                access.value,
            )
        return batch


class _BatchAppender:
    """Bound-method bundle appending one decoded record to a batch.

    Pulls the codec constants and the seven ``list.append`` bound
    methods into one callable so decoders (here and in
    ``repro.trace.binio``/``textio``) share the exact same split logic.
    """

    __slots__ = (
        "_icounts", "_kinds", "_addresses", "_values",
        "_sets", "_tags", "_words",
        "_index_shift", "_index_mask", "_tag_shift", "_tag_mask",
        "_offset_mask", "_word_shift",
    )

    def __init__(self, batch: AccessBatch) -> None:
        self._icounts = batch.icounts.append
        self._kinds = batch.kinds.append
        self._addresses = batch.addresses.append
        self._values = batch.values.append
        self._sets = batch.set_indices.append
        self._tags = batch.tags.append
        self._words = batch.word_offsets.append
        codec = batch.geometry.codec
        self._index_shift = codec.index_shift
        self._index_mask = codec.index_mask
        self._tag_shift = codec.tag_shift
        self._tag_mask = codec.tag_mask
        self._offset_mask = codec.offset_mask
        self._word_shift = codec.word_shift

    def __call__(self, icount: int, kind: int, address: int, value: int) -> None:
        self._icounts(icount)
        self._kinds(kind)
        self._addresses(address)
        self._values(value)
        self._sets((address >> self._index_shift) & self._index_mask)
        self._tags((address >> self._tag_shift) & self._tag_mask)
        self._words((address & self._offset_mask) >> self._word_shift)


def iter_batches(
    trace: Iterable[MemoryAccess],
    geometry: CacheGeometry,
    batch_size: Optional[int] = None,
) -> Iterator[AccessBatch]:
    """Chunk a scalar trace into :class:`AccessBatch` objects.

    Streaming: holds at most one batch of records at a time, so long
    campaign traces never materialise in memory.
    """
    size = batch_size if batch_size is not None else DEFAULT_BATCH_SIZE
    if size <= 0:
        raise ValidationError(f"batch_size must be positive, got {size}")
    batch = AccessBatch(geometry=geometry)
    append = _BatchAppender(batch)
    count = 0
    for access in trace:
        append(
            access.icount,
            1 if access.kind is _WRITE else 0,
            access.address,
            access.value,
        )
        count += 1
        if count == size:
            yield batch
            batch = AccessBatch(geometry=geometry)
            append = _BatchAppender(batch)
            count = 0
    if count:
        yield batch
