"""Execution engines.

The throughput layers of the simulator.  Tier one is the batched
engine: struct-of-arrays trace batches (:mod:`repro.engine.batch`)
feed the controllers' ``process_batch()`` fast paths, several times
faster than the scalar ``process()`` loop and bit-identical to it (see
``docs/performance.md`` and the differential suite in
``tests/engine/``).  Tier two is the columnar engine
(:mod:`repro.engine.columnar`): chunks become NumPy arrays — zero-copy
views when read from ``RPCOL1`` mmap traces (:mod:`repro.trace.colio`)
— and vectorized kernels replace the per-record Python loop for the
common case.  :mod:`repro.engine.bench` measures all tiers.
"""

from repro.engine.batch import AccessBatch, DEFAULT_BATCH_SIZE, iter_batches
from repro.engine.bench import (
    BenchResult,
    bench_report,
    run_hotpath_bench,
)
from repro.engine.columnar import (
    HAVE_NUMPY,
    ColumnarChunk,
    iter_chunks,
    process_chunk,
    require_numpy,
)

__all__ = [
    "AccessBatch",
    "DEFAULT_BATCH_SIZE",
    "iter_batches",
    "BenchResult",
    "bench_report",
    "run_hotpath_bench",
    "HAVE_NUMPY",
    "ColumnarChunk",
    "iter_chunks",
    "process_chunk",
    "require_numpy",
]
