"""Batched execution engine.

The throughput layer of the simulator: struct-of-arrays trace batches
(:mod:`repro.engine.batch`) feed the controllers'
``process_batch()`` fast paths, several times faster than the scalar
``process()`` loop and bit-identical to it (see
``docs/performance.md`` and the differential suite in
``tests/engine/``).  :mod:`repro.engine.bench` measures the speedup.
"""

from repro.engine.batch import AccessBatch, DEFAULT_BATCH_SIZE, iter_batches
from repro.engine.bench import (
    BenchResult,
    bench_report,
    run_hotpath_bench,
)

__all__ = [
    "AccessBatch",
    "DEFAULT_BATCH_SIZE",
    "iter_batches",
    "BenchResult",
    "bench_report",
    "run_hotpath_bench",
]
