"""Lazy trace-stream transformers.

All transformers accept and return iterables of :class:`MemoryAccess`
and never materialise the stream, so multi-million-access campaigns run
in constant memory.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.trace.record import MemoryAccess
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["skip_warmup", "limit_accesses", "sample_accesses", "materialize"]


def skip_warmup(
    trace: Iterable[MemoryAccess], warmup_accesses: int
) -> Iterator[MemoryAccess]:
    """Drop the first ``warmup_accesses`` records.

    Mirrors the paper's 1-billion-instruction fast-forward: statistics
    are collected only after the cache has warmed.  (The simulator still
    *processes* warm-up accesses when warming state matters; this filter
    is for pure trace statistics.)
    """
    check_non_negative("warmup_accesses", warmup_accesses)
    iterator = iter(trace)
    for _ in range(warmup_accesses):
        next(iterator, None)
    yield from iterator


def limit_accesses(
    trace: Iterable[MemoryAccess], max_accesses: int
) -> Iterator[MemoryAccess]:
    """Truncate the stream after ``max_accesses`` records.

    Pulls exactly ``max_accesses`` records from ``trace`` — the count is
    checked *after* each yield, so a shared/stateful iterator keeps its
    next element instead of losing one to limiter look-ahead.
    """
    check_non_negative("max_accesses", max_accesses)
    if max_accesses == 0:
        return
    count = 0
    for access in trace:
        yield access
        count += 1
        if count >= max_accesses:
            return


def sample_accesses(
    trace: Iterable[MemoryAccess], period: int
) -> Iterator[MemoryAccess]:
    """Keep every ``period``-th record (period 1 keeps everything).

    Note sampling breaks consecutive-pair statistics; it exists for quick
    footprint inspection, not for reproducing Figure 4.
    """
    check_positive("period", period)
    for index, access in enumerate(trace):
        if index % period == 0:
            yield access


def materialize(trace: Iterable[MemoryAccess]) -> List[MemoryAccess]:
    """Fully realise a stream into a list (for reuse across techniques).

    The paper evaluated all techniques in one Pin run because Pin is not
    repeatable; we instead materialise a trace once and replay it through
    every controller so comparisons are exact.
    """
    return list(trace)
