"""Memory-trace substrate (the reproduction's stand-in for Pin).

The paper drives its L1-D cache simulator with traces produced by a Pin
tool over SPEC CPU2006.  This package provides the trace plumbing:

``record``
    The :class:`MemoryAccess` record and :class:`AccessType` enum.
``stream``
    Lazy stream transformers — warm-up skipping (the paper fast-forwards
    1 B instructions), length limits and sampling.
``textio`` / ``binio``
    Human-readable and packed binary trace file formats.
``colio``
    Columnar ``RPCOL1`` trace format — mmap-backed, zero-copy column
    views for the columnar engine; workers share one mapping.
``stats``
    :class:`TraceStatistics` — computes exactly the quantities behind the
    paper's Figures 3 (read/write frequency), 4 (consecutive same-set
    scenario breakdown) and 5 (silent-write frequency).
"""

from repro.trace.record import AccessType, MemoryAccess, WORD_BYTES, word_address
from repro.trace.stream import (
    limit_accesses,
    materialize,
    sample_accesses,
    skip_warmup,
)
from repro.trace.stats import ScenarioBreakdown, TraceStatistics, collect_statistics
from repro.trace.textio import (
    read_text_trace,
    read_text_trace_batches,
    write_text_trace,
)
from repro.trace.binio import (
    read_binary_trace,
    read_binary_trace_batches,
    write_binary_trace,
)
from repro.trace.colio import (
    ColumnarTrace,
    convert_trace_to_columnar,
    open_columnar_trace,
    write_columnar_trace,
)

__all__ = [
    "AccessType",
    "MemoryAccess",
    "WORD_BYTES",
    "word_address",
    "skip_warmup",
    "limit_accesses",
    "sample_accesses",
    "materialize",
    "TraceStatistics",
    "ScenarioBreakdown",
    "collect_statistics",
    "read_text_trace",
    "read_text_trace_batches",
    "write_text_trace",
    "read_binary_trace",
    "read_binary_trace_batches",
    "write_binary_trace",
    "ColumnarTrace",
    "convert_trace_to_columnar",
    "open_columnar_trace",
    "write_columnar_trace",
]
