"""Trace statistics behind the paper's motivation figures.

:class:`TraceStatistics` computes, in one pass over a trace:

* read/write access counts and their frequency per executed instruction
  (Figure 3);
* the breakdown of *consecutive accesses to the same cache set* into the
  four scenarios Read-Read, Read-Write, Write-Write and Write-Read
  (Figure 4) — a pair is classified by ``(previous kind, current kind)``
  and counted only when both accesses map to the same set;
* silent-write frequency (Figure 5) — a write is silent when the value
  it stores equals the value already held at that word, judged against a
  functional memory that starts zero-filled, exactly like the silent
  stores of Lepak & Lipasti that the paper cites.

The set mapping is supplied as a callable so this module stays
independent of the cache package; :mod:`repro.analysis` wires in the
real :class:`repro.cache.AddressMapper`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.trace.record import AccessType, MemoryAccess
from repro.errors import ValidationError

__all__ = ["ScenarioBreakdown", "TraceStatistics", "collect_statistics"]

SetIndexFn = Callable[[int], int]


@dataclass
class ScenarioBreakdown:
    """Counts of consecutive same-set access pairs, by scenario.

    Pair names follow the paper: the first letter is the *earlier*
    access.  ``total_pairs`` counts every consecutive pair (same set or
    not) so the shares can be expressed as the paper's "% of accesses".
    """

    read_read: int = 0
    read_write: int = 0
    write_write: int = 0
    write_read: int = 0
    total_pairs: int = 0

    @property
    def same_set_pairs(self) -> int:
        return self.read_read + self.read_write + self.write_write + self.write_read

    def share(self, scenario: str) -> float:
        """Share of all consecutive pairs falling in ``scenario``.

        ``scenario`` is one of ``"RR"``, ``"RW"``, ``"WW"``, ``"WR"``.
        """
        counts = {
            "RR": self.read_read,
            "RW": self.read_write,
            "WW": self.write_write,
            "WR": self.write_read,
        }
        if scenario not in counts:
            raise ValidationError(f"unknown scenario {scenario!r}")
        if self.total_pairs == 0:
            return 0.0
        return counts[scenario] / self.total_pairs

    @property
    def same_set_share(self) -> float:
        """Share of all consecutive pairs made to the same set."""
        if self.total_pairs == 0:
            return 0.0
        return self.same_set_pairs / self.total_pairs


@dataclass
class TraceStatistics:
    """Aggregate statistics for one trace.

    Build incrementally via :meth:`observe`, or in one shot with
    :func:`collect_statistics`.
    """

    set_index_fn: Optional[SetIndexFn] = None
    reads: int = 0
    writes: int = 0
    silent_writes: int = 0
    first_icount: Optional[int] = None
    last_icount: Optional[int] = None
    scenarios: ScenarioBreakdown = field(default_factory=ScenarioBreakdown)
    _memory: Dict[int, int] = field(default_factory=dict, repr=False)
    _previous: Optional[MemoryAccess] = field(default=None, repr=False)

    def observe(self, access: MemoryAccess) -> None:
        """Fold one access into the statistics."""
        if self.first_icount is None:
            self.first_icount = access.icount
        self.last_icount = access.icount

        if access.kind is AccessType.READ:
            self.reads += 1
        else:
            self.writes += 1
            if self._memory.get(access.word, 0) == access.value:
                self.silent_writes += 1
            else:
                self._memory[access.word] = access.value

        if self._previous is not None:
            self.scenarios.total_pairs += 1
            if self.set_index_fn is not None:
                previous_set = self.set_index_fn(self._previous.address)
                current_set = self.set_index_fn(access.address)
                if previous_set == current_set:
                    self._classify_pair(self._previous.kind, access.kind)
        self._previous = access

    def _classify_pair(self, first: AccessType, second: AccessType) -> None:
        if first.is_read and second.is_read:
            self.scenarios.read_read += 1
        elif first.is_read and second.is_write:
            self.scenarios.read_write += 1
        elif first.is_write and second.is_write:
            self.scenarios.write_write += 1
        else:
            self.scenarios.write_read += 1

    # -- derived quantities -------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def instructions(self) -> int:
        """Number of executed instructions spanned by the trace."""
        if self.first_icount is None or self.last_icount is None:
            return 0
        return self.last_icount - self.first_icount + 1

    @property
    def read_frequency(self) -> float:
        """Reads per executed instruction (Figure 3, left series)."""
        instructions = self.instructions
        return self.reads / instructions if instructions else 0.0

    @property
    def write_frequency(self) -> float:
        """Writes per executed instruction (Figure 3, right series)."""
        instructions = self.instructions
        return self.writes / instructions if instructions else 0.0

    @property
    def memory_access_frequency(self) -> float:
        """Memory accesses per executed instruction."""
        return self.read_frequency + self.write_frequency

    @property
    def silent_write_fraction(self) -> float:
        """Fraction of writes that are silent (Figure 5)."""
        return self.silent_writes / self.writes if self.writes else 0.0

    @property
    def write_share_of_accesses(self) -> float:
        """Writes as a fraction of all memory accesses."""
        return self.writes / self.accesses if self.accesses else 0.0


def collect_statistics(
    trace: Iterable[MemoryAccess], set_index_fn: Optional[SetIndexFn] = None
) -> TraceStatistics:
    """Run a whole trace through :class:`TraceStatistics`."""
    stats = TraceStatistics(set_index_fn=set_index_fn)
    for access in trace:
        stats.observe(access)
    return stats
