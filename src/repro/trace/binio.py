"""Packed binary trace file format.

Layout: an 8-byte magic header followed by fixed-size records.  Two
on-disk variants share the record body::

    icount   u64 little-endian
    kind     u8  (0 = read, 1 = write)
    address  u64 little-endian
    value    u64 little-endian

``b"RPTRACE1"`` files carry the 25-byte body alone.  ``b"RPTRACE2"``
files (written with ``crc=True``) append a CRC-32 of the body to every
record (29 bytes total), so bit rot in cached campaign traces is
*detected* — a corrupt record raises :class:`TraceFormatError` naming
the record index and byte offset instead of replaying garbage into
hours of simulation.  The reader dispatches on the magic, so both
variants read through the same function.

The binary format is ~4x smaller and ~10x faster to parse than the text
format; campaign runs that cache traces on disk use it.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Union

from repro.errors import TraceFormatError, ValidationError
from repro.trace.record import AccessType, MemoryAccess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.config import CacheGeometry
    from repro.engine.batch import AccessBatch

__all__ = [
    "read_binary_trace",
    "read_binary_trace_batches",
    "write_binary_trace",
    "MAGIC",
    "MAGIC_CRC",
]

MAGIC = b"RPTRACE1"
MAGIC_CRC = b"RPTRACE2"
_RECORD = struct.Struct("<QBQQ")
_CRC = struct.Struct("<I")

PathLike = Union[str, Path]


def _check_kind_byte(
    path: PathLike, kind_code: int, record_index: int, byte_offset: int
) -> None:
    """Reject kind bytes other than 0 (read) / 1 (write).

    The single source of truth for kind validation: the scalar and
    batched readers both call this, so a corrupt file raises
    :class:`TraceFormatError` with identical record-index/byte-offset
    text regardless of which reader hit it first.
    """
    if kind_code not in (0, 1):
        raise TraceFormatError(
            f"{path}: record #{record_index} at byte offset "
            f"{byte_offset} has bad kind byte {kind_code}"
        )


def write_binary_trace(
    path: PathLike, trace: Iterable[MemoryAccess], crc: bool = False
) -> int:
    """Write ``trace`` to ``path`` in binary form; returns the record count.

    ``crc=True`` selects the integrity-checked ``RPTRACE2`` variant
    with a per-record CRC-32 (4 bytes/record, ~16 % size cost).
    """
    count = 0
    with open(path, "wb") as handle:
        handle.write(MAGIC_CRC if crc else MAGIC)
        for access in trace:
            body = _RECORD.pack(
                access.icount,
                1 if access.is_write else 0,
                access.address,
                access.value,
            )
            if crc:
                body += _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)
            handle.write(body)
            count += 1
    return count


def read_binary_trace(path: PathLike) -> Iterator[MemoryAccess]:
    """Lazily parse a binary trace file (either variant).

    Raises :class:`TraceFormatError` — always naming the record index
    and byte offset — for truncated headers/records, unknown kind
    bytes and (``RPTRACE2``) CRC mismatches.
    """
    with open(path, "rb") as handle:
        header = handle.read(len(MAGIC))
        if len(header) != len(MAGIC):
            raise TraceFormatError(
                f"{path}: truncated header ({len(header)} of "
                f"{len(MAGIC)} bytes)"
            )
        if header == MAGIC:
            with_crc = False
        elif header == MAGIC_CRC:
            with_crc = True
        else:
            raise TraceFormatError(
                f"{path}: bad magic {header!r}, expected {MAGIC!r} "
                f"or {MAGIC_CRC!r}"
            )
        record_size = _RECORD.size + (_CRC.size if with_crc else 0)
        record_index = 0
        offset = len(MAGIC)
        while True:
            blob = handle.read(record_size)
            if not blob:
                return
            if len(blob) != record_size:
                raise TraceFormatError(
                    f"{path}: truncated record #{record_index} at byte "
                    f"offset {offset} ({len(blob)} of {record_size} bytes)"
                )
            body = blob[: _RECORD.size]
            if with_crc:
                (stored_crc,) = _CRC.unpack(blob[_RECORD.size :])
                computed_crc = zlib.crc32(body) & 0xFFFFFFFF
                if stored_crc != computed_crc:
                    raise TraceFormatError(
                        f"{path}: CRC mismatch in record #{record_index} "
                        f"at byte offset {offset}: stored 0x{stored_crc:08x}, "
                        f"computed 0x{computed_crc:08x}"
                    )
            icount, kind_code, address, value = _RECORD.unpack(body)
            _check_kind_byte(path, kind_code, record_index, offset)
            kind = AccessType.WRITE if kind_code else AccessType.READ
            yield MemoryAccess(icount=icount, kind=kind, address=address, value=value)
            record_index += 1
            offset += record_size


def read_binary_trace_batches(
    path: PathLike,
    geometry: "CacheGeometry",
    batch_size: Optional[int] = None,
) -> Iterator["AccessBatch"]:
    """Parse a binary trace straight into struct-of-arrays batches.

    The batched-engine counterpart of :func:`read_binary_trace`: whole
    chunks of records are unpacked at once and the address fields are
    pre-split with ``geometry``'s cached shift/mask codec, skipping the
    per-record :class:`MemoryAccess` construction entirely.  Raises the
    same :class:`TraceFormatError`\\ s (bad magic, truncation, bad kind
    byte, CRC mismatch) with the same record-index/byte-offset naming.
    """
    from repro.engine.batch import AccessBatch, DEFAULT_BATCH_SIZE

    size = batch_size if batch_size is not None else DEFAULT_BATCH_SIZE
    if size <= 0:
        raise ValidationError(f"batch_size must be positive, got {size}")
    codec = geometry.codec
    index_shift = codec.index_shift
    index_mask = codec.index_mask
    tag_shift = codec.tag_shift
    tag_mask = codec.tag_mask
    offset_mask = codec.offset_mask
    word_shift = codec.word_shift

    with open(path, "rb") as handle:
        header = handle.read(len(MAGIC))
        if len(header) != len(MAGIC):
            raise TraceFormatError(
                f"{path}: truncated header ({len(header)} of "
                f"{len(MAGIC)} bytes)"
            )
        if header == MAGIC:
            with_crc = False
        elif header == MAGIC_CRC:
            with_crc = True
        else:
            raise TraceFormatError(
                f"{path}: bad magic {header!r}, expected {MAGIC!r} "
                f"or {MAGIC_CRC!r}"
            )
        record_size = _RECORD.size + (_CRC.size if with_crc else 0)
        record_index = 0
        offset = len(MAGIC)
        while True:
            blob = handle.read(record_size * size)
            if not blob:
                return
            if len(blob) % record_size:
                whole = len(blob) // record_size
                raise TraceFormatError(
                    f"{path}: truncated record #{record_index + whole} at "
                    f"byte offset {offset + whole * record_size} "
                    f"({len(blob) - whole * record_size} of {record_size} "
                    f"bytes)"
                )
            batch = AccessBatch(geometry=geometry)
            icounts = batch.icounts
            kinds = batch.kinds
            addresses = batch.addresses
            values = batch.values
            set_indices = batch.set_indices
            tags = batch.tags
            word_offsets = batch.word_offsets
            if with_crc:
                # Single pass: each record body is sliced exactly once,
                # CRC-verified, and collected for one bulk unpack.  All
                # CRC checks for the chunk still run before any kind
                # check, preserving which error a doubly-corrupt chunk
                # reports first.
                body_parts = []
                for base in range(0, len(blob), record_size):
                    body = blob[base : base + _RECORD.size]
                    (stored_crc,) = _CRC.unpack(
                        blob[base + _RECORD.size : base + record_size]
                    )
                    computed_crc = zlib.crc32(body) & 0xFFFFFFFF
                    if stored_crc != computed_crc:
                        bad = record_index + base // record_size
                        raise TraceFormatError(
                            f"{path}: CRC mismatch in record #{bad} "
                            f"at byte offset {offset + base}: stored "
                            f"0x{stored_crc:08x}, computed "
                            f"0x{computed_crc:08x}"
                        )
                    body_parts.append(body)
                records = _RECORD.iter_unpack(b"".join(body_parts))
            else:
                records = _RECORD.iter_unpack(blob)
            for icount, kind_code, address, value in records:
                _check_kind_byte(
                    path,
                    kind_code,
                    record_index + len(icounts),
                    offset + len(icounts) * record_size,
                )
                icounts.append(icount)
                kinds.append(kind_code)
                addresses.append(address)
                values.append(value)
                set_indices.append((address >> index_shift) & index_mask)
                tags.append((address >> tag_shift) & tag_mask)
                word_offsets.append((address & offset_mask) >> word_shift)
            record_index += len(icounts)
            offset += len(blob)
            yield batch
