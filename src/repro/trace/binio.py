"""Packed binary trace file format.

Layout: an 8-byte magic header (``b"RPTRACE1"``) followed by fixed-size
records of 25 bytes each::

    icount   u64 little-endian
    kind     u8  (0 = read, 1 = write)
    address  u64 little-endian
    value    u64 little-endian

The binary format is ~4x smaller and ~10x faster to parse than the text
format; campaign runs that cache traces on disk use it.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.errors import TraceFormatError
from repro.trace.record import AccessType, MemoryAccess

__all__ = ["read_binary_trace", "write_binary_trace", "MAGIC"]

MAGIC = b"RPTRACE1"
_RECORD = struct.Struct("<QBQQ")

PathLike = Union[str, Path]


def write_binary_trace(path: PathLike, trace: Iterable[MemoryAccess]) -> int:
    """Write ``trace`` to ``path`` in binary form; returns the record count."""
    count = 0
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        for access in trace:
            handle.write(
                _RECORD.pack(
                    access.icount,
                    1 if access.is_write else 0,
                    access.address,
                    access.value,
                )
            )
            count += 1
    return count


def read_binary_trace(path: PathLike) -> Iterator[MemoryAccess]:
    """Lazily parse a binary trace file."""
    with open(path, "rb") as handle:
        header = handle.read(len(MAGIC))
        if header != MAGIC:
            raise TraceFormatError(
                f"{path}: bad magic {header!r}, expected {MAGIC!r}"
            )
        record_index = 0
        while True:
            blob = handle.read(_RECORD.size)
            if not blob:
                return
            if len(blob) != _RECORD.size:
                raise TraceFormatError(
                    f"{path}: truncated record #{record_index} "
                    f"({len(blob)} of {_RECORD.size} bytes)"
                )
            icount, kind_code, address, value = _RECORD.unpack(blob)
            if kind_code not in (0, 1):
                raise TraceFormatError(
                    f"{path}: record #{record_index} has bad kind byte {kind_code}"
                )
            kind = AccessType.WRITE if kind_code else AccessType.READ
            yield MemoryAccess(icount=icount, kind=kind, address=address, value=value)
            record_index += 1
