"""Memory-mapped columnar trace format (``RPCOL1``).

The third trace format, built for the columnar execution engine
(:mod:`repro.engine.columnar`) and for multiprocess campaigns: a
``RPCOL1`` file stores the trace as seven contiguous *column* arrays
instead of interleaved records, so a reader can hand the engine
zero-copy NumPy views straight over an ``mmap`` — no per-record
parsing, and worker processes mapping the same file share one page
cache copy of the trace with no per-worker deserialization.

Layout (all integers little-endian)::

    magic        8 bytes   b"RPCOL1\\x00\\x00"
    count        u64       number of records (n)
    size_bytes   u64       geometry the address columns were split with
    assoc        u32
    block_bytes  u32
    address_bits u32
    reserved     u32       zero
    icount       u64 * n
    kind         u8  * n   (zero-padded to an 8-byte boundary)
    address      u64 * n
    value        u64 * n
    set_index    u64 * n   pre-split with ``geometry.codec``
    tag          u64 * n
    word_offset  u64 * n
    crc          u32       CRC-32 of every byte before it

Each column starts 8-byte aligned, so ``np.frombuffer`` views are
naturally aligned.  The ``set``/``tag``/``word`` columns are split at
*write* time with the geometry codec; opening the file under a
different geometry re-splits the address column in bulk (vectorized
shift/mask) instead of failing.

The whole-file CRC means corruption is detected once at ``open`` time
— a classified :class:`TraceFormatError` — rather than surfacing as
garbage mid-campaign.  Writing and converting need only the standard
library; *reading* requires NumPy (the ``columnar`` extra) because the
whole point of the format is zero-copy array views.
"""

from __future__ import annotations

import mmap
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, List, Optional, Union

from repro.errors import TraceFormatError, ValidationError
from repro.trace.record import AccessType, MemoryAccess

try:  # NumPy is the optional `columnar` extra; the writer works without it.
    import numpy
except ImportError:  # pragma: no cover - exercised on CI without numpy
    numpy = None  # type: ignore[assignment]

np: Any = numpy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.config import CacheGeometry
    from repro.engine.batch import AccessBatch
    from repro.engine.columnar import ColumnarChunk

__all__ = [
    "COLUMNAR_MAGIC",
    "ColumnarTrace",
    "write_columnar_trace",
    "convert_trace_to_columnar",
    "open_columnar_trace",
]

COLUMNAR_MAGIC = b"RPCOL1\x00\x00"
_HEADER = struct.Struct("<8sQQIIII")
_CRC = struct.Struct("<I")
_PACK_CHUNK = 16384

PathLike = Union[str, Path]


def _require_numpy() -> None:
    if np is None:
        raise ValidationError(
            "reading RPCOL1 traces requires NumPy; install the "
            "'columnar' extra (pip install repro-8t[columnar])"
        )


def _pad8(size: int) -> int:
    return (size + 7) & ~7


class _ChecksumWriter:
    """File writer that folds every byte into a running CRC-32."""

    __slots__ = ("_handle", "crc")

    def __init__(self, handle: Any) -> None:
        self._handle = handle
        self.crc = 0

    def write(self, data: bytes) -> None:
        self._handle.write(data)
        self.crc = zlib.crc32(data, self.crc)


def _write_u64_column(writer: _ChecksumWriter, values: List[int]) -> None:
    for start in range(0, len(values), _PACK_CHUNK):
        chunk = values[start : start + _PACK_CHUNK]
        writer.write(struct.pack(f"<{len(chunk)}Q", *chunk))


def _write_columns(
    path: PathLike,
    geometry: "CacheGeometry",
    icounts: List[int],
    kinds: List[int],
    addresses: List[int],
    values: List[int],
    set_indices: List[int],
    tags: List[int],
    word_offsets: List[int],
) -> int:
    count = len(icounts)
    with open(path, "wb") as handle:
        writer = _ChecksumWriter(handle)
        writer.write(
            _HEADER.pack(
                COLUMNAR_MAGIC,
                count,
                geometry.size_bytes,
                geometry.associativity,
                geometry.block_bytes,
                geometry.address_bits,
                0,
            )
        )
        _write_u64_column(writer, icounts)
        writer.write(bytes(kinds))
        writer.write(b"\x00" * (_pad8(count) - count))
        _write_u64_column(writer, addresses)
        _write_u64_column(writer, values)
        _write_u64_column(writer, set_indices)
        _write_u64_column(writer, tags)
        _write_u64_column(writer, word_offsets)
        handle.write(_CRC.pack(writer.crc & 0xFFFFFFFF))
    return count


def write_columnar_trace(
    path: PathLike, trace: Iterable[MemoryAccess], geometry: "CacheGeometry"
) -> int:
    """Write ``trace`` to ``path`` as ``RPCOL1``; returns the record count.

    Address fields are pre-split with ``geometry.codec`` at write time,
    exactly as the batch decoders split them.  Column storage means the
    record count heads the file, so the trace is materialised as column
    lists before writing (fine at campaign scale — columns of plain
    ints, not record objects).
    """
    codec = geometry.codec
    index_shift = codec.index_shift
    index_mask = codec.index_mask
    tag_shift = codec.tag_shift
    tag_mask = codec.tag_mask
    offset_mask = codec.offset_mask
    word_shift = codec.word_shift
    icounts: List[int] = []
    kinds: List[int] = []
    addresses: List[int] = []
    values: List[int] = []
    set_indices: List[int] = []
    tags: List[int] = []
    word_offsets: List[int] = []
    for access in trace:
        address = access.address
        icounts.append(access.icount)
        kinds.append(1 if access.is_write else 0)
        addresses.append(address)
        values.append(access.value)
        set_indices.append((address >> index_shift) & index_mask)
        tags.append((address >> tag_shift) & tag_mask)
        word_offsets.append((address & offset_mask) >> word_shift)
    return _write_columns(
        path, geometry, icounts, kinds, addresses, values,
        set_indices, tags, word_offsets,
    )


def convert_trace_to_columnar(
    source: PathLike, destination: PathLike, geometry: "CacheGeometry"
) -> int:
    """Convert an ``RPTRACE1``/``RPTRACE2`` or text trace to ``RPCOL1``.

    Dispatches on the source file's magic bytes; any corruption the
    source readers detect (CRC mismatch, truncation, bad kind byte)
    propagates unchanged, so a corrupt binary trace never silently
    becomes a "clean" columnar one.  Returns the record count.
    """
    from repro.trace.binio import MAGIC, MAGIC_CRC, read_binary_trace_batches
    from repro.trace.textio import read_text_trace_batches

    with open(source, "rb") as handle:
        head = handle.read(len(MAGIC))
    if head in (MAGIC, MAGIC_CRC):
        batches = read_binary_trace_batches(source, geometry)
    else:
        batches = read_text_trace_batches(source, geometry)
    icounts: List[int] = []
    kinds: List[int] = []
    addresses: List[int] = []
    values: List[int] = []
    set_indices: List[int] = []
    tags: List[int] = []
    word_offsets: List[int] = []
    for batch in batches:
        icounts.extend(batch.icounts)
        kinds.extend(batch.kinds)
        addresses.extend(batch.addresses)
        values.extend(batch.values)
        set_indices.extend(batch.set_indices)
        tags.extend(batch.tags)
        word_offsets.extend(batch.word_offsets)
    return _write_columns(
        destination, geometry, icounts, kinds, addresses, values,
        set_indices, tags, word_offsets,
    )


class ColumnarTrace:
    """An open, CRC-verified ``RPCOL1`` mapping with zero-copy columns.

    Column attributes (``icounts``/``kinds``/``addresses``/``values``/
    ``set_indices``/``tags``/``word_offsets``) are NumPy views directly
    over the ``mmap`` — nothing is copied until a consumer asks for
    Python objects.  Use :func:`open_columnar_trace` to construct.
    """

    def __init__(self, path: PathLike, geometry: Optional["CacheGeometry"] = None):
        _require_numpy()
        from repro.cache.config import CacheGeometry

        self.path = Path(path)
        self._handle = open(path, "rb")
        try:
            self._mmap = mmap.mmap(self._handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            self._handle.close()
            raise TraceFormatError(f"{path}: empty columnar trace file") from None
        try:
            buffer = self._mmap
            if len(buffer) < _HEADER.size + _CRC.size:
                raise TraceFormatError(
                    f"{path}: truncated columnar header "
                    f"({len(buffer)} of {_HEADER.size + _CRC.size} bytes)"
                )
            (magic, count, size_bytes, assoc, block, addr_bits, _reserved) = (
                _HEADER.unpack_from(buffer, 0)
            )
            if magic != COLUMNAR_MAGIC:
                raise TraceFormatError(
                    f"{path}: bad magic {bytes(magic)!r}, "
                    f"expected {COLUMNAR_MAGIC!r}"
                )
            expected = _HEADER.size + 48 * count + _pad8(count) + _CRC.size
            if len(buffer) != expected:
                raise TraceFormatError(
                    f"{path}: truncated columnar trace: {len(buffer)} of "
                    f"{expected} bytes for {count} record(s)"
                )
            (stored_crc,) = _CRC.unpack_from(buffer, expected - _CRC.size)
            # A scoped memoryview keeps the CRC pass copy-free without
            # pinning the mapping open past this constructor.
            with memoryview(buffer) as view:
                computed_crc = (
                    zlib.crc32(view[: expected - _CRC.size]) & 0xFFFFFFFF
                )
            if stored_crc != computed_crc:
                raise TraceFormatError(
                    f"{path}: whole-file CRC mismatch: stored "
                    f"0x{stored_crc:08x}, computed 0x{computed_crc:08x}"
                )
            self.stored_geometry = CacheGeometry(
                size_bytes=size_bytes,
                associativity=assoc,
                block_bytes=block,
                address_bits=addr_bits,
            )
            self._count = count
            offset = _HEADER.size
            self.icounts = np.frombuffer(buffer, "<u8", count, offset)
            offset += 8 * count
            self.kinds = np.frombuffer(buffer, "<u1", count, offset)
            offset += _pad8(count)
            self.addresses = np.frombuffer(buffer, "<u8", count, offset)
            offset += 8 * count
            self.values = np.frombuffer(buffer, "<u8", count, offset)
            offset += 8 * count
            # Signed views (zero-copy): set/tag/word always fit i64, and
            # the engine compares them against signed slot-array tags.
            self.set_indices = np.frombuffer(buffer, "<i8", count, offset)
            offset += 8 * count
            self.tags = np.frombuffer(buffer, "<i8", count, offset)
            offset += 8 * count
            self.word_offsets = np.frombuffer(buffer, "<i8", count, offset)
            self.geometry = (
                geometry if geometry is not None else self.stored_geometry
            )
            if self.geometry != self.stored_geometry:
                self._resplit(self.geometry)
        except Exception:
            self.close()
            raise

    def _resplit(self, geometry: "CacheGeometry") -> None:
        """Bulk-resplit the address column under a different geometry."""
        codec = geometry.codec
        addresses = self.addresses
        self.set_indices = (
            (addresses >> codec.index_shift) & codec.index_mask
        ).astype("<i8")
        self.tags = ((addresses >> codec.tag_shift) & codec.tag_mask).astype(
            "<i8"
        )
        self.word_offsets = (
            (addresses & codec.offset_mask) >> codec.word_shift
        ).astype("<i8")

    def __len__(self) -> int:
        return self._count

    def __enter__(self) -> "ColumnarTrace":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Release the column views and the underlying mapping."""
        for name in (
            "icounts", "kinds", "addresses", "values",
            "set_indices", "tags", "word_offsets",
        ):
            if hasattr(self, name):
                delattr(self, name)
        if hasattr(self, "_mmap"):
            try:
                self._mmap.close()
            except BufferError:
                # A zero-copy view escaped this scope; the OS mapping
                # stays valid until the last view dies, at which point
                # the mmap object is garbage-collected normally.  The
                # alternative — raising from close()/__exit__ — would
                # punish exactly the zero-copy usage the format exists
                # for.
                pass
        self._handle.close()

    def chunks(
        self, batch_size: Optional[int] = None
    ) -> Iterator["ColumnarChunk"]:
        """Zero-copy :class:`ColumnarChunk` slices for the columnar engine."""
        from repro.engine.batch import DEFAULT_BATCH_SIZE
        from repro.engine.columnar import ColumnarChunk

        size = batch_size if batch_size is not None else DEFAULT_BATCH_SIZE
        if size <= 0:
            raise ValidationError(f"batch_size must be positive, got {size}")
        for start in range(0, self._count, size):
            stop = min(start + size, self._count)
            yield ColumnarChunk(
                geometry=self.geometry,
                icounts=self.icounts[start:stop],
                kinds=self.kinds[start:stop],
                addresses=self.addresses[start:stop],
                values=self.values[start:stop],
                set_indices=self.set_indices[start:stop],
                tags=self.tags[start:stop],
                word_offsets=self.word_offsets[start:stop],
            )

    def batches(
        self, batch_size: Optional[int] = None
    ) -> Iterator["AccessBatch"]:
        """Decode into :class:`AccessBatch` chunks (for the batched engine)."""
        for chunk in self.chunks(batch_size):
            yield chunk.to_access_batch()

    def accesses(self) -> Iterator[MemoryAccess]:
        """Iterate the mapping as scalar :class:`MemoryAccess` records."""
        for icount, kind, address, value in zip(
            self.icounts.tolist(),
            self.kinds.tolist(),
            self.addresses.tolist(),
            self.values.tolist(),
        ):
            yield MemoryAccess(
                icount=icount,
                kind=AccessType.WRITE if kind else AccessType.READ,
                address=address,
                value=value,
            )


def open_columnar_trace(
    path: PathLike, geometry: Optional["CacheGeometry"] = None
) -> ColumnarTrace:
    """Open and CRC-verify an ``RPCOL1`` file as a :class:`ColumnarTrace`.

    With ``geometry`` omitted, the geometry the file was split with is
    used; passing a different one re-splits the address column in bulk.
    Raises :class:`TraceFormatError` for truncated/corrupt files and
    :class:`ValidationError` when NumPy is unavailable.
    """
    return ColumnarTrace(path, geometry)
