"""Human-readable trace file format.

One record per line::

    <icount> <R|W> <hex address> [<hex value>]

Lines starting with ``#`` and blank lines are ignored.  The value column
is mandatory for writes and optional (defaulting to 0) for reads.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Union

from repro.errors import TraceFormatError
from repro.trace.record import AccessType, MemoryAccess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.config import CacheGeometry
    from repro.engine.batch import AccessBatch

__all__ = ["read_text_trace", "read_text_trace_batches", "write_text_trace"]

PathLike = Union[str, Path]


def write_text_trace(path: PathLike, trace: Iterable[MemoryAccess]) -> int:
    """Write ``trace`` to ``path``; returns the number of records written."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        handle.write("# repro trace v1: icount kind address value\n")
        for access in trace:
            handle.write(
                f"{access.icount} {access.kind.value} "
                f"{access.address:#x} {access.value:#x}\n"
            )
            count += 1
    return count


def _parse_line(line: str, line_number: int) -> MemoryAccess:
    fields = line.split()
    if len(fields) not in (3, 4):
        raise TraceFormatError(
            f"line {line_number}: expected 3 or 4 fields, got {len(fields)}: {line!r}"
        )
    try:
        icount = int(fields[0])
        kind = AccessType.from_letter(fields[1])
        address = int(fields[2], 0)
        value = int(fields[3], 0) if len(fields) == 4 else 0
    except ValueError as exc:
        raise TraceFormatError(f"line {line_number}: {exc}") from exc
    if kind.is_write and len(fields) != 4:
        raise TraceFormatError(
            f"line {line_number}: write record is missing its value field"
        )
    try:
        return MemoryAccess(icount=icount, kind=kind, address=address, value=value)
    except ValueError as exc:
        raise TraceFormatError(f"line {line_number}: {exc}") from exc


def read_text_trace(path: PathLike) -> Iterator[MemoryAccess]:
    """Lazily parse a text trace file."""
    with open(path, "r", encoding="ascii") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield _parse_line(line, line_number)


def read_text_trace_batches(
    path: PathLike,
    geometry: "CacheGeometry",
    batch_size: Optional[int] = None,
) -> Iterator["AccessBatch"]:
    """Parse a text trace into struct-of-arrays batches.

    The text format is validation-heavy, so this simply chunks
    :func:`read_text_trace` through
    :func:`repro.engine.batch.iter_batches`; the speedup comes from the
    batched controller paths downstream (for fast decode too, convert
    to the binary format and use
    :func:`repro.trace.read_binary_trace_batches`).
    """
    from repro.engine.batch import iter_batches

    return iter_batches(read_text_trace(path), geometry, batch_size)
