"""Trace records.

A trace is an iterable of :class:`MemoryAccess` records ordered by
program order.  Accesses are word-granular: the paper's silent-store
detection compares the written word against the stored word, so every
record carries the data value involved.

Address convention
------------------
Addresses are byte addresses.  All accesses are aligned to the 8-byte
word (``WORD_BYTES``); the value of an access applies to that whole
word.  The functional-memory oracle and the cache both store data at
word granularity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from repro.errors import ValidationError

__all__ = ["AccessType", "MemoryAccess", "WORD_BYTES", "word_address"]

WORD_BYTES = 8
"""Size of the data word carried by one access, in bytes."""


class AccessType(enum.Enum):
    """Kind of memory access issued by the processor."""

    READ = "R"
    WRITE = "W"

    @property
    def is_read(self) -> bool:
        return self is AccessType.READ

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE

    @classmethod
    def from_letter(cls, letter: str) -> "AccessType":
        """Parse ``"R"``/``"W"`` (case-insensitive)."""
        normalized = letter.strip().upper()
        for member in cls:
            if member.value == normalized:
                return member
        raise ValidationError(f"unknown access type letter {letter!r}")


def word_address(byte_address: int) -> int:
    """Return the word index containing ``byte_address``."""
    return byte_address // WORD_BYTES


@dataclass(frozen=True)
class MemoryAccess:
    """One dynamic memory access.

    Attributes:
        icount: index of the instruction that issued the access, counting
            every executed instruction (memory and non-memory).  Used to
            express access counts as frequencies per instruction, as the
            paper's Figure 3 does.
        kind: read or write.
        address: byte address, word aligned.
        value: for writes, the word value being stored; for reads the
            field is unused by the simulator and conventionally 0.
    """

    icount: int
    kind: AccessType
    address: int
    value: int = 0

    def __post_init__(self) -> None:
        if self.icount < 0:
            raise ValidationError(f"icount must be non-negative, got {self.icount}")
        if self.address < 0:
            raise ValidationError(f"address must be non-negative, got {self.address}")
        if self.address % WORD_BYTES != 0:
            raise ValidationError(
                f"address must be {WORD_BYTES}-byte aligned, got {self.address:#x}"
            )

    @property
    def is_read(self) -> bool:
        return self.kind.is_read

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    @property
    def word(self) -> int:
        """Word index of this access."""
        return word_address(self.address)

    def describe(self) -> str:
        """One-line human readable rendering (used by examples)."""
        verb = "read " if self.is_read else "write"
        suffix = f" <- {self.value:#x}" if self.is_write else ""
        return f"[i={self.icount}] {verb} {self.address:#010x}{suffix}"
