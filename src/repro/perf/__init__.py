"""Performance (timing) model.

Quantifies the paper's Section 5.5 expectations: RMW occupies the read
port on behalf of writes (stalling reads), WG frees the read port by
eliminating most RMW read phases, and WG+RB shortens read latency by
serving Tag-Buffer hits from the fast Set-Buffer.
"""

from repro.perf.timing import PerfResult, TimingSimulator, evaluate_performance

__all__ = ["TimingSimulator", "PerfResult", "evaluate_performance"]
