"""Port-contention timing model.

A lightweight in-order model: requests arrive at the cache at their
instruction count (1 IPC front end), the 8T array exposes one read port
and one write port (:class:`PortTracker`), and each array operation
holds its port for the :class:`PhaseTiming` durations.

What each technique schedules per request:

===============  ==========================================  =================
technique        read request                                 write request
===============  ==========================================  =================
conventional     R-port, read latency                         W-port
rmw              R-port, read latency                         R-port then W-port (serial)
wg               [W-port premature write-back] then R-port    [W-port evict] + R-port fill on
                                                              Tag-Buffer miss; buffer merge
wg_rb            Set-Buffer hit: buffer latency, no port      same as wg
===============  ==========================================  =================

Reads are on the critical path; the headline metric is mean read
latency (arrival to data), plus read-port conflict counts showing the
1R/1W parallelism RMW destroys and WG restores.

This model deliberately drives the controller through the scalar
``process()`` path: it consumes the per-access :class:`AccessOutcome`
(which operations fired, in what order) that the batched engine
(:mod:`repro.engine`) skips building.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.cache.config import CacheGeometry
from repro.core.outcomes import AccessOutcome
from repro.core.registry import make_controller
from repro.cache.cache import SetAssociativeCache
from repro.sram.ports import PortKind, PortTracker
from repro.sram.timing import PhaseTiming
from repro.trace.record import MemoryAccess
from repro.errors import TypeContractError

__all__ = ["PerfResult", "TimingSimulator", "evaluate_performance"]


@dataclass(frozen=True)
class PerfResult:
    """Timing metrics of one run."""

    technique: str
    reads: int
    writes: int
    total_read_latency: int
    read_port_conflicts: int
    write_port_conflicts: int
    read_port_busy: int
    write_port_busy: int
    elapsed_cycles: int
    bypassed_reads: int

    @property
    def mean_read_latency(self) -> float:
        return self.total_read_latency / self.reads if self.reads else 0.0

    @property
    def read_port_utilisation(self) -> float:
        if self.elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.read_port_busy / self.elapsed_cycles)


class TimingSimulator:
    """Runs a trace through a controller while scheduling array ports."""

    def __init__(
        self,
        technique: str,
        geometry: CacheGeometry,
        timing: Optional[PhaseTiming] = None,
        **controller_kwargs,
    ) -> None:
        timing = PhaseTiming() if timing is None else timing
        self.cache = SetAssociativeCache(geometry)
        self.controller = make_controller(
            technique, self.cache, **controller_kwargs
        )
        self.timing = timing
        # Park et al.'s local RMW confines port occupancy to one
        # sub-array: give such controllers one tracker per sub-array so
        # requests to other banks proceed concurrently.
        subarrays = getattr(self.controller, "subarrays", 1)
        self._trackers = [PortTracker() for _ in range(subarrays)]
        self.ports = self._trackers[0]
        # Kim et al.'s pulse assist stretches every write pulse.
        self._write_cycles = timing.array_write_cycles * getattr(
            self.controller, "write_cycle_factor", 1
        )
        self._reads = 0
        self._writes = 0
        self._total_read_latency = 0
        self._bypassed = 0
        self._last_cycle = 0

    def _tracker_for(self, access: MemoryAccess) -> PortTracker:
        if len(self._trackers) == 1:
            return self._trackers[0]
        set_index = self.cache.mapper.set_index(access.address)
        return self._trackers[self.controller.subarray_of(set_index)]

    def run(self, trace: Iterable[MemoryAccess]) -> PerfResult:
        timing = self.timing
        for access in trace:
            arrival = access.icount
            tracker = self._tracker_for(access)
            outcome = self.controller.process(access)
            if access.is_read:
                self._reads += 1
                self._total_read_latency += self._schedule_read(
                    tracker, arrival, outcome, timing
                )
            else:
                self._writes += 1
                self._schedule_write(tracker, arrival, outcome, timing)
            self._last_cycle = max(
                self._last_cycle,
                tracker.free_at[PortKind.READ],
                tracker.free_at[PortKind.WRITE],
                arrival,
            )
        self.controller.finalize()
        return PerfResult(
            technique=self.controller.name,
            reads=self._reads,
            writes=self._writes,
            total_read_latency=self._total_read_latency,
            read_port_conflicts=self._sum(PortKind.READ, "conflicts"),
            write_port_conflicts=self._sum(PortKind.WRITE, "conflicts"),
            read_port_busy=self._sum(PortKind.READ, "busy_cycles"),
            write_port_busy=self._sum(PortKind.WRITE, "busy_cycles"),
            elapsed_cycles=self._last_cycle,
            bypassed_reads=self._bypassed,
        )

    def _sum(self, port: PortKind, field: str) -> int:
        return sum(getattr(tracker, field)[port] for tracker in self._trackers)

    # -- scheduling ---------------------------------------------------------------

    def _schedule_read(
        self,
        tracker: PortTracker,
        arrival: int,
        outcome: AccessOutcome,
        timing: PhaseTiming,
    ) -> int:
        if outcome.bypassed:
            # Served from the Set-Buffer: short fixed latency, no port.
            self._bypassed += 1
            return timing.set_buffer_cycles
        start = arrival
        if outcome.forced_writeback:
            # The premature write-back must land before the array read.
            writeback_start = tracker.acquire(
                PortKind.WRITE, arrival, self._write_cycles
            )
            start = writeback_start + self._write_cycles
        read_start = tracker.acquire(
            PortKind.READ, start, timing.array_read_cycles
        )
        finish = read_start + timing.array_read_cycles
        return finish - arrival

    def _schedule_write(
        self,
        tracker: PortTracker,
        arrival: int,
        outcome: AccessOutcome,
        timing: PhaseTiming,
    ) -> None:
        # Writes are off the critical path; they only occupy ports.
        start = arrival
        if outcome.forced_writeback:
            writeback_start = tracker.acquire(
                PortKind.WRITE, start, self._write_cycles
            )
            start = writeback_start + self._write_cycles
        if outcome.array_reads:
            # RMW read phase / Set-Buffer fill occupies the read port.
            read_start = tracker.acquire(
                PortKind.READ, start, timing.array_read_cycles
            )
            start = read_start + timing.array_read_cycles
        if outcome.array_writes and not outcome.forced_writeback:
            # RMW write-back phase (grouped writes never get here).
            tracker.acquire(PortKind.WRITE, start, self._write_cycles)


def evaluate_performance(
    trace: Sequence[MemoryAccess],
    geometry: CacheGeometry,
    techniques: Sequence[str] = ("conventional", "rmw", "wg", "wg_rb"),
    timing: Optional[PhaseTiming] = None,
) -> dict:
    """Run the timing model for several techniques on one trace."""
    if iter(trace) is trace:
        raise TypeContractError("trace must be a reusable sequence")
    return {
        technique: TimingSimulator(technique, geometry, timing).run(trace)
        for technique in techniques
    }
