"""Kim et al.'s write-assist alternative (paper Section 2, ref [5]).

"Kim et al. proposed adaptive pulse width and voltage modulation to
address dynamic write failure.  They modulated pulse width and voltage
level to ensure that all cells are written."

The idea: instead of avoiding half-selection (RMW) or removing
interleaving (Chang), make the write pulse itself safe — stretch the
WWL pulse and/or boost the write voltage so selected cells flip
reliably while half-selected cells retain state.  At the architecture
level this looks like a conventional cache (one array access per
write), but each write pays a circuit premium:

* energy: write drivers run longer/harder
  (``WRITE_ENERGY_FACTOR`` x the normal row-write energy);
* latency: the stretched pulse occupies the write port longer
  (``WRITE_CYCLE_FACTOR`` x), which the timing model charges.

The related-work benchmark places this on the same axes as WG: similar
access counts to ``word_write``/``conventional``, but with write
energy/latency premiums instead of ECC or buffer costs.
"""

from __future__ import annotations

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.core.controller import CacheController
from repro.core.outcomes import AccessOutcome, ServedFrom
from repro.trace.record import MemoryAccess

__all__ = ["PulseAssistController", "WRITE_ENERGY_FACTOR", "WRITE_CYCLE_FACTOR"]

#: Energy premium per assisted write vs a plain row write, modelled as
#: a multiple of driver activity.  Boosted-WWL / stretched-pulse
#: schemes pay substantially more write energy (longer pulse at equal
#: or higher voltage); 2x is the behavioural constant used here.
WRITE_ENERGY_FACTOR = 2

#: Pulse-stretch factor: assisted writes hold the write port twice as
#: long as a nominal write pulse.
WRITE_CYCLE_FACTOR = 2


class PulseAssistController(CacheController):
    """Writes via modulated pulses: no RMW, but premium writes.

    The event log records the stretched pulse as extra ``words_driven``
    so the energy model's driver term scales, and the controller tracks
    ``assisted_writes`` explicitly for reporting.
    """

    name = "pulse_assist"

    def __init__(
        self, cache: SetAssociativeCache, count_miss_traffic: bool = False
    ) -> None:
        super().__init__(cache, count_miss_traffic=count_miss_traffic)
        self.assisted_writes = 0

    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        self.events.record_row_read(words_routed=1)
        value = self.cache.read_word(
            result.set_index, result.way, result.word_offset
        )
        return AccessOutcome(
            value=value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
        )

    def _handle_write(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        # One row activation; the stretched/boosted pulse drives only
        # the selected word's columns but at an energy premium, modelled
        # as proportionally more driver activity.
        self.assisted_writes += 1
        self.events.record_row_write(words_driven=WRITE_ENERGY_FACTOR)
        self.cache.write_word(
            result.set_index, result.way, result.word_offset, access.value
        )
        return AccessOutcome(
            value=access.value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_writes=1,
        )

    @property
    def write_cycle_factor(self) -> int:
        """Exposed for the timing model's pulse-stretch accounting."""
        return WRITE_CYCLE_FACTOR
