"""The paper's primary contribution: cache write-policy controllers.

Four controllers translate L1-D requests into 8T SRAM array operations:

* :class:`ConventionalController` — a 6T-style cache with no column
  selection issue (writes touch only the selected columns).  This is the
  pre-RMW reference point the ">32 % access increase" claim compares to.
* :class:`RMWController` — Morita et al.'s Read-Modify-Write baseline:
  every write costs a full-row read plus a full-row write.
* :class:`WriteGroupingController` (WG) — the paper's Section 4.1:
  a one-set Set-Buffer + Tag-Buffer groups consecutive writes to the
  same set into a single write-back and drops silent writes entirely.
* :class:`WGRBController` (WG+RB) — Section 4.2: additionally serves
  reads that hit the Tag-Buffer straight from the Set-Buffer.

All controllers are value-accurate and interchangeable: for the same
request stream they must (and, property-tested, do) return identical
read values and leave identical final memory state.
"""

from repro.core.outcomes import AccessOutcome, OperationCounts, ServedFrom
from repro.core.set_buffer import SetBuffer
from repro.core.tag_buffer import TagBuffer
from repro.core.controller import CacheController
from repro.core.conventional import ConventionalController
from repro.core.rmw import RMWController
from repro.core.write_grouping import WriteGroupingController
from repro.core.wg_rb import WGRBController
from repro.core.related_work import LocalRMWController, WordWriteController
from repro.core.write_buffer import WriteBufferController
from repro.core.pulse_assist import PulseAssistController
from repro.core.registry import (
    ALL_CONTROLLER_NAMES,
    CONTROLLER_NAMES,
    make_controller,
)

__all__ = [
    "AccessOutcome",
    "OperationCounts",
    "ServedFrom",
    "SetBuffer",
    "TagBuffer",
    "CacheController",
    "ConventionalController",
    "RMWController",
    "WriteGroupingController",
    "WGRBController",
    "WordWriteController",
    "LocalRMWController",
    "WriteBufferController",
    "PulseAssistController",
    "CONTROLLER_NAMES",
    "ALL_CONTROLLER_NAMES",
    "make_controller",
]
