"""Write Grouping + Read Bypassing (WG+RB) — the paper's Section 4.2.

Adds an output multiplexer (the RB signal in Figure 7) that routes read
data from the Set-Buffer instead of the RBLs when the read hits the
Tag-Buffer.  Such reads cost no array access *and* no premature
write-back — the two effects that make WG+RB strictly better than WG,
especially on read-read-heavy benchmarks like gamess and cactusADM.
"""

from __future__ import annotations

from repro.cache.cache import AccessResult
from repro.core.outcomes import AccessOutcome, ServedFrom
from repro.core.write_grouping import WriteGroupingController
from repro.trace.record import MemoryAccess

__all__ = ["WGRBController"]


class WGRBController(WriteGroupingController):
    """WG plus Set-Buffer read bypassing."""

    name = "wg_rb"
    _fast_path_name = "wg_rb"
    _rb_bypass = True  # the batched fast path serves probe-hit reads
    # from the Set-Buffer, mirroring _handle_read below

    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        tag = self.cache.mapper.tag(access.address)
        entry = self._entry_for_set(result.set_index)
        if entry is not None and entry.tag_buffer.probe(result.set_index, tag):
            # Bypass: serve from the Set-Buffer; no write-back needed
            # because the cache is not consulted at all.
            self._touch(entry)
            value = entry.set_buffer.read(result.way, result.word_offset)
            self.events.record_set_buffer_read(1)
            self.counts.bypassed_reads += 1
            if self._obs:
                self._emit_point("read_bypass", set_index=result.set_index)
            return AccessOutcome(
                value=value,
                cache_hit=result.hit,
                served_from=ServedFrom.SET_BUFFER,
                bypassed=True,
            )
        return super()._handle_read(access, result)
