"""The Set-Buffer (paper Figure 6a).

A latch array sized to one cache set, sitting between the column mux and
the write drivers.  It is filled by an array 'read row', absorbs the
word-granular writes WG groups, detects silent writes by comparing the
incoming word with the word it already holds, and is drained back into
the array as a single full-row write.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple
from repro.errors import ValidationError

__all__ = ["SetBuffer"]


class SetBuffer:
    """Data plane of WG/WG+RB: one buffered cache set.

    Data is organised as ``data[way][word_offset]``; ``modified`` tracks
    exactly which words differ from what the cache currently holds, so a
    write-back applies the minimal functional update (the hardware
    writes the full row, which the controller accounts separately).
    """

    def __init__(self) -> None:
        self.valid: bool = False
        self.set_index: Optional[int] = None
        self._data: List[List[int]] = []
        self._modified: Set[Tuple[int, int]] = set()

    def fill(self, set_index: int, set_data: List[List[int]]) -> None:
        """Load a whole set, as read from the array row."""
        if not set_data or any(len(way) != len(set_data[0]) for way in set_data):
            raise ValidationError("set data must be a non-empty rectangular array")
        self.valid = True
        self.set_index = set_index
        self._data = [list(way) for way in set_data]
        self._modified = set()

    def invalidate(self) -> None:
        """Drop the buffered set (after a flush forced by a cache fill)."""
        self.valid = False
        self.set_index = None
        self._data = []
        self._modified = set()

    def holds(self, set_index: int) -> bool:
        """True when the buffer currently holds ``set_index``."""
        return self.valid and self.set_index == set_index

    def read(self, way: int, word_offset: int) -> int:
        """Serve a word from the buffer (the WG+RB bypass path)."""
        self._check_valid()
        return self._data[way][word_offset]

    def write(self, way: int, word_offset: int, value: int) -> bool:
        """Merge one word; returns True when the write was *silent*.

        A silent write stores the value already present (Lepak &
        Lipasti); the comparators next to the latches detect it and the
        buffer is left untouched, so it does not need a write-back.
        """
        self._check_valid()
        if self._data[way][word_offset] == value:
            return True
        self._data[way][word_offset] = value
        self._modified.add((way, word_offset))
        return False

    def engine_views(self) -> Tuple[List[List[int]], Set[Tuple[int, int]]]:
        """``(data, modified)`` internals for the batched engine.

        The fast paths in :mod:`repro.core.write_grouping` mutate these
        in place, replicating :meth:`write` without the per-word method
        call.  The views go stale when the buffer is refilled or
        drained (:meth:`fill`/:meth:`take_modified` rebind the set), so
        callers must re-fetch them after any scalar fallback.
        """
        self._check_valid()
        return self._data, self._modified

    def take_modified(self) -> Dict[Tuple[int, int], int]:
        """Return and clear the modified words (the write-back payload)."""
        self._check_valid()
        payload = {
            (way, word): self._data[way][word] for way, word in self._modified
        }
        self._modified = set()
        return payload

    @property
    def has_modifications(self) -> bool:
        return bool(self._modified)

    @property
    def modified_words(self) -> int:
        """How many words currently differ from the array's copy."""
        return len(self._modified)

    @property
    def ways(self) -> int:
        return len(self._data)

    @property
    def words_per_way(self) -> int:
        return len(self._data[0]) if self._data else 0

    def row_snapshot(self) -> List[int]:
        """The full row as the write drivers would see it (way-major)."""
        self._check_valid()
        return [word for way in self._data for word in way]

    def _check_valid(self) -> None:
        if not self.valid:
            raise ValidationError("Set-Buffer is empty")
