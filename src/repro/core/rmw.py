"""Read-Modify-Write baseline controller (Morita et al.).

Every write to a bit-interleaved 8T array must read the addressed row
into the write-back latches, merge the selected words from Data-in, and
write the full row back (paper Section 2, Figure 2 steps 1-5).  Reads
are a single row activation with column muxing.

Consequences the paper highlights, all visible in this model's event
log: +1 array read per write, the read port busy during write handling,
and extra read energy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.cache import AccessResult
from repro.core.controller import CacheController
from repro.core.outcomes import AccessOutcome, ServedFrom
from repro.trace.record import MemoryAccess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.batch import AccessBatch

__all__ = ["RMWController"]


class RMWController(CacheController):
    """Reads: 1 array access.  Writes: RMW = 2 array accesses."""

    name = "rmw"
    _fast_path_name = "rmw"

    def _process_batch_fast(self, batch: "AccessBatch") -> None:
        """Batched hot loop, fully inline: hits run on the cache's slot
        arrays, misses through the shared ``cache._fill``; reads
        aggregate to one row read each, writes to one RMW each."""
        cache = self.cache
        tags_by_set = cache._tags  # noqa: SLF001 - engine contract
        dirty_by_set = cache._dirty  # noqa: SLF001
        data_by_set = cache._data  # noqa: SLF001
        stamps_by_set = cache._stamps  # noqa: SLF001
        tick = cache._tick  # noqa: SLF001
        fill = cache._fill  # noqa: SLF001
        wpb = cache.geometry.words_per_block
        count_mt = self.count_miss_traffic
        kinds = batch.kinds
        addresses = batch.addresses
        values = batch.values
        set_indices = batch.set_indices
        req_tags = batch.tags
        word_offsets = batch.word_offsets

        reads = writes = read_hits = write_hits = 0
        mt_fills = mt_dirty = 0  # count_miss_traffic charges
        for i in range(len(kinds)):
            s = set_indices[i]
            t = req_tags[i]
            kind = kinds[i]
            tags = tags_by_set[s]
            if t in tags:
                way = tags.index(t)
                stamps_by_set[s][way] = tick
                tick += 1
                if kind:
                    write_hits += 1
                else:
                    read_hits += 1
            else:
                cache._tick = tick  # noqa: SLF001
                way, _, evicted_dirty = fill(s, t, addresses[i], not kind)
                tick = cache._tick  # noqa: SLF001
                if count_mt:
                    mt_fills += 1
                    if evicted_dirty:
                        mt_dirty += 1
            if kind:
                writes += 1
                data_by_set[s][way * wpb + word_offsets[i]] = values[i]
                dirty_by_set[s][way] = True
            else:
                reads += 1

        cache._tick = tick  # noqa: SLF001
        self._current_icount = batch.icounts[-1]
        counts = self.counts
        counts.read_requests += reads
        counts.write_requests += writes
        counts.rmw_operations += writes
        stats = cache.stats
        stats.read_hits += read_hits
        stats.write_hits += write_hits
        row_words = self._row_words
        events = self.events
        events.rmw_operations += writes
        # Reads: one row read each, one word routed.  Writes: one RMW
        # each = row read (full row routed) + row write (full row
        # driven).
        events.precharges += reads + writes
        events.rwl_pulses += reads + writes
        events.row_reads += reads + writes
        events.words_routed += reads + writes * row_words
        events.wwl_pulses += writes
        events.row_writes += writes
        events.words_driven += writes * row_words
        if count_mt and mt_fills:
            # Per dirty eviction: a row read of the victim block; per
            # fill: an RMW over the full row (see _account_miss_traffic).
            events.rmw_operations += mt_fills
            events.precharges += mt_dirty + mt_fills
            events.rwl_pulses += mt_dirty + mt_fills
            events.row_reads += mt_dirty + mt_fills
            events.words_routed += mt_dirty * wpb + mt_fills * row_words
            events.wwl_pulses += mt_fills
            events.row_writes += mt_fills
            events.words_driven += mt_fills * row_words
            counts.rmw_operations += mt_fills

    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        self.events.record_row_read(words_routed=1)
        value = self.cache.read_word(
            result.set_index, result.way, result.word_offset
        )
        return AccessOutcome(
            value=value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
        )

    def _handle_write(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        # Read row into latches + write merged row back.
        self.events.record_rmw(row_words=self._row_words)
        self.counts.rmw_operations += 1
        if self._obs:
            self._emit_point("rmw_issued", set_index=result.set_index)
        self.cache.write_word(
            result.set_index, result.way, result.word_offset, access.value
        )
        return AccessOutcome(
            value=access.value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
            array_writes=1,
        )
