"""Read-Modify-Write baseline controller (Morita et al.).

Every write to a bit-interleaved 8T array must read the addressed row
into the write-back latches, merge the selected words from Data-in, and
write the full row back (paper Section 2, Figure 2 steps 1-5).  Reads
are a single row activation with column muxing.

Consequences the paper highlights, all visible in this model's event
log: +1 array read per write, the read port busy during write handling,
and extra read energy.
"""

from __future__ import annotations

from repro.cache.cache import AccessResult
from repro.core.controller import CacheController
from repro.core.outcomes import AccessOutcome, ServedFrom
from repro.trace.record import MemoryAccess

__all__ = ["RMWController"]


class RMWController(CacheController):
    """Reads: 1 array access.  Writes: RMW = 2 array accesses."""

    name = "rmw"

    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        self.events.record_row_read(words_routed=1)
        value = self.cache.read_word(
            result.set_index, result.way, result.word_offset
        )
        return AccessOutcome(
            value=value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
        )

    def _handle_write(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        # Read row into latches + write merged row back.
        self.events.record_rmw(row_words=self._row_words)
        self.counts.rmw_operations += 1
        if self._obs:
            self._emit_point("rmw_issued", set_index=result.set_index)
        self.cache.write_word(
            result.set_index, result.way, result.word_offset, access.value
        )
        return AccessOutcome(
            value=access.value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
            array_writes=1,
        )
