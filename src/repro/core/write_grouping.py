"""Write Grouping (WG) — the paper's Section 4.1, Algorithm 1.

One Set-Buffer (sized to a cache set) plus a Tag-Buffer with a Dirty
bit.  Writes to the buffered set are merged in the buffer; the single
RMW that would have accompanied each of them is deferred until the
buffer must be written back, and silent writes never dirty the buffer
at all.  The write-back itself is a *full-row write only* — the read
half of the RMW already happened when the buffer was filled.

Algorithm 1 verbatim:

* Read request — on a Tag-Buffer hit, write back the Set-Buffer if
  Dirty (a *premature* write-back) and clear Dirty; then read from the
  array.
* Write request — on a Tag-Buffer miss, write back the Set-Buffer if
  Dirty and refill it by reading the row; then update the Set-Buffer,
  setting Dirty only for non-silent writes.

Beyond Algorithm 1 the paper leaves miss handling implicit; this
implementation adds one rule needed for correctness: when a cache fill
is about to change the *buffered* set (replacing a block whose newest
data may exist only in the buffer), the buffer is flushed and
invalidated first.  See ``_before_residency``.

The ``entries`` parameter generalises the single Set-Buffer to a small
fully-associative pool (kept in LRU order) — the paper's implicit
extension, measured by the multi-entry ablation benchmark.  ``entries=1``
is the paper's design.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.core.controller import CacheController
from repro.core.outcomes import AccessOutcome, ServedFrom
from repro.core.set_buffer import SetBuffer
from repro.core.tag_buffer import TagBuffer
from repro.trace.record import MemoryAccess
from repro.utils.validation import check_positive
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.batch import AccessBatch

__all__ = ["WriteGroupingController", "BufferEntry"]


class BufferEntry:
    """One (Tag-Buffer, Set-Buffer) pair."""

    __slots__ = ("tag_buffer", "set_buffer", "dirty_since")

    def __init__(self) -> None:
        self.tag_buffer = TagBuffer()
        self.set_buffer = SetBuffer()
        # icount at which the buffer last turned dirty; None when clean.
        # Dirty buffer data lives outside the ECC-protected array, so
        # this window is the design's soft-error exposure.
        self.dirty_since: Optional[int] = None

    @property
    def valid(self) -> bool:
        return self.tag_buffer.valid

    @property
    def dirty(self) -> bool:
        return self.tag_buffer.dirty

    @property
    def set_index(self) -> Optional[int]:
        return self.tag_buffer.set_index

    def invalidate(self) -> None:
        self.tag_buffer.invalidate()
        self.set_buffer.invalidate()


class WriteGroupingController(CacheController):
    """WG: group same-set writes, drop silent ones."""

    name = "wg"
    _fast_path_name = "wg"

    #: WG+RB flips this: reads hitting the Tag-Buffer are served from
    #: the Set-Buffer instead of forcing a premature write-back.
    _rb_bypass = False

    def __init__(
        self,
        cache: SetAssociativeCache,
        count_miss_traffic: bool = False,
        detect_silent_writes: bool = True,
        entries: int = 1,
    ) -> None:
        super().__init__(cache, count_miss_traffic=count_miss_traffic)
        check_positive("entries", entries)
        self.detect_silent_writes = detect_silent_writes
        # LRU order: index 0 is least recently used, last is most recent.
        self._entries: List[BufferEntry] = [BufferEntry() for _ in range(entries)]

    # -- buffer pool management -------------------------------------------------

    def _entry_for_set(self, set_index: int) -> Optional[BufferEntry]:
        for entry in self._entries:
            if entry.tag_buffer.matches_set(set_index):
                return entry
        return None

    def _touch(self, entry: BufferEntry) -> None:
        self._entries.remove(entry)
        self._entries.append(entry)

    def _victim_entry(self) -> BufferEntry:
        for entry in self._entries:
            if not entry.valid:
                return entry
        return self._entries[0]

    # -- write-back --------------------------------------------------------------

    def _write_back(self, entry: BufferEntry, reason: str) -> bool:
        """Drain a dirty entry into the array; no-op when clean.

        The cache controller checks the Dirty bit first and eliminates
        the write-back when it is clear (Section 4.1).  Returns True
        when a row write actually happened.
        """
        if not entry.dirty:
            return False
        for (way, word_offset), value in entry.set_buffer.take_modified().items():
            self.cache.write_word(entry.set_index, way, word_offset, value)
        self.events.record_row_write(words_driven=self._row_words)
        entry.tag_buffer.clear_dirty()
        if entry.dirty_since is not None:
            residency = max(0, self._current_icount - entry.dirty_since)
            self.counts.dirty_residency_total += residency
            self.counts.dirty_residency_max = max(
                self.counts.dirty_residency_max, residency
            )
            self.counts.dirty_windows += 1
            entry.dirty_since = None
        if reason == "premature":
            self.counts.premature_writebacks += 1
        elif reason == "eviction":
            self.counts.eviction_writebacks += 1
        elif reason == "fill_flush":
            self.counts.fill_flush_writebacks += 1
        elif reason == "final":
            self.counts.final_writebacks += 1
        else:
            raise ValidationError(f"unknown write-back reason {reason!r}")
        if self._obs:
            self._emit_point(
                f"sb_writeback_{reason}", set_index=entry.set_index
            )
        return True

    def _fill_entry(self, entry: BufferEntry, set_index: int) -> None:
        """Fill the Set-Buffer by reading the row (one array read)."""
        set_data = self.cache.read_set_data(set_index)
        tags = self.cache.set_tags(set_index)
        entry.set_buffer.fill(set_index, set_data)
        entry.tag_buffer.load(set_index, tags)
        self.events.record_row_read(words_routed=self._row_words)
        self.counts.set_buffer_fills += 1
        if self._obs:
            self._emit_point("sb_fill", set_index=set_index)

    # -- residency hook ------------------------------------------------------------

    def _before_residency(self, access: MemoryAccess) -> None:
        """Flush the buffer before a fill mutates the buffered set.

        A miss to the buffered set is about to replace one of its
        blocks; the buffer may hold newer data for that set than the
        cache does and its tags are about to go stale, so it must be
        drained and dropped first.
        """
        if self.cache.lookup(access.address) is not None:
            return
        set_index = self.cache.mapper.set_index(access.address)
        entry = self._entry_for_set(set_index)
        if entry is not None:
            self._write_back(entry, "fill_flush")
            entry.invalidate()

    # -- batched fast path -------------------------------------------------------

    def _process_batch_fast(self, batch: "AccessBatch") -> None:
        """Batched WG hot loop with same-set write-run pre-grouping.

        A maximal run of consecutive same-set writes resolves its
        buffer entry, pool-LRU position and Set-Buffer views *once*;
        each write in the run then costs a tag probe, a stamp, and an
        in-place word merge with inline silent detection — the software
        mirror of the single Set-Buffer transaction the paper's
        hardware performs.  Everything slow (cache misses, Tag-Buffer
        misses, premature write-backs) replays through the scalar
        ``process()`` at its exact trace position, so write-back and
        fill ordering — and therefore memory contents — stay
        bit-identical.
        """
        cache = self.cache
        tags_by_set = cache._tags  # noqa: SLF001 - engine contract
        stamps_by_set = cache._stamps  # noqa: SLF001
        tick = cache._tick  # noqa: SLF001
        fill = cache._fill  # noqa: SLF001
        wpb = cache.geometry.words_per_block
        row_words = self._row_words
        count_mt = self.count_miss_traffic
        detect = self.detect_silent_writes
        bypass_reads = self._rb_bypass
        kinds = batch.kinds
        icounts = batch.icounts
        addresses = batch.addresses
        values = batch.values
        set_indices = batch.set_indices
        req_tags = batch.tags
        word_offsets = batch.word_offsets
        entries = self._entries

        n = len(kinds)
        reads = 0  # read requests
        read_hits = 0  # of which cache hits
        row_reads = 0  # reads served by an array row read (1 word routed)
        bypassed = 0  # reads served from the Set-Buffer (WG+RB only)
        writes = 0  # write requests
        write_hits = 0  # of which cache hits
        grouped = 0  # writes merged on a Tag-Buffer hit
        silent = 0  # of which silent (when detection is on)
        mt_fills = mt_dirty = 0  # count_miss_traffic charges

        i = 0
        while i < n:
            s = set_indices[i]
            t = req_tags[i]
            if not kinds[i]:
                # Read request.
                reads += 1
                row_reads += 1
                tags = tags_by_set[s]
                if t in tags:
                    read_hits += 1
                    way = tags.index(t)
                    stamps_by_set[s][way] = tick
                    tick += 1
                    entry = None
                    for candidate in entries:
                        tb = candidate.tag_buffer
                        if tb.valid and tb.set_index == s:
                            entry = candidate
                            break
                    if entry is not None and t in entry.tag_buffer.tags:
                        # Tag-Buffer hit on a read.
                        if bypass_reads:
                            # WG+RB: serve from the Set-Buffer — no
                            # array access, no write-back.
                            row_reads -= 1
                            bypassed += 1
                        else:
                            # WG: premature write-back so the array
                            # holds the newest data.
                            self._current_icount = icounts[i]
                            self._write_back(entry, "premature")
                        if entries[-1] is not entry:
                            entries.remove(entry)
                            entries.append(entry)
                else:
                    # Cache miss: flush-and-drop the buffer if the fill
                    # is about to mutate the buffered set, then fill.
                    # The probe afterwards always misses (the flush
                    # invalidated any entry for this set), so the read
                    # is a plain row read.
                    self._current_icount = icounts[i]
                    entry = None
                    for candidate in entries:
                        tb = candidate.tag_buffer
                        if tb.valid and tb.set_index == s:
                            entry = candidate
                            break
                    if entry is not None:
                        self._write_back(entry, "fill_flush")
                        entry.invalidate()
                    cache._tick = tick  # noqa: SLF001
                    _, _, evicted_dirty = fill(s, t, addresses[i], True)
                    tick = cache._tick  # noqa: SLF001
                    if count_mt:
                        mt_fills += 1
                        if evicted_dirty:
                            mt_dirty += 1
                i += 1
                continue

            # Write request: pre-group the maximal run of consecutive
            # writes to the same set, resolving the buffer entry, pool
            # position and Set-Buffer views once per run.
            j = i + 1
            while j < n and kinds[j] and set_indices[j] == s:
                j += 1
            entry = None
            for candidate in entries:
                tb = candidate.tag_buffer
                if tb.valid and tb.set_index == s:
                    entry = candidate
                    break
            tb = sb_data = sb_modified = None
            k = i
            while k < j:
                t = req_tags[k]
                tags = tags_by_set[s]
                writes += 1
                if t in tags:
                    write_hits += 1
                    way = tags.index(t)
                    stamps_by_set[s][way] = tick
                    tick += 1
                else:
                    # Cache miss mid-run: fill (flushing the buffer
                    # first when it holds this set), then re-resolve
                    # the entry — the flush invalidated it.
                    self._current_icount = icounts[k]
                    if entry is not None:
                        self._write_back(entry, "fill_flush")
                        entry.invalidate()
                        entry = tb = None
                    cache._tick = tick  # noqa: SLF001
                    way, _, evicted_dirty = fill(s, t, addresses[k], False)
                    tick = cache._tick  # noqa: SLF001
                    if count_mt:
                        mt_fills += 1
                        if evicted_dirty:
                            mt_dirty += 1
                if entry is None:
                    # Tag-Buffer miss: drain the victim entry, refill
                    # with this set (Algorithm 1's write path).
                    self._current_icount = icounts[k]
                    entry = self._victim_entry()
                    self._write_back(entry, "eviction")
                    self._fill_entry(entry, s)
                    tb = None
                else:
                    grouped += 1
                if tb is None:
                    tb = entry.tag_buffer
                    sb_data, sb_modified = entry.set_buffer.engine_views()
                    # One pool-LRU touch covers the rest of the run
                    # (touching the same entry again is idempotent on
                    # pool order).
                    if entries[-1] is not entry:
                        entries.remove(entry)
                        entries.append(entry)
                row = sb_data[way]
                w = word_offsets[k]
                v = values[k]
                if row[w] == v:
                    # Silent write: the buffer is left untouched when
                    # detection is on; dirties it like any other write
                    # otherwise.
                    if detect:
                        silent += 1
                        k += 1
                        continue
                else:
                    row[w] = v
                    sb_modified.add((way, w))
                if not tb.dirty:
                    entry.dirty_since = icounts[k]
                    tb.dirty = True
                k += 1
            i = j

        cache._tick = tick  # noqa: SLF001
        self._current_icount = icounts[-1]
        counts = self.counts
        counts.read_requests += reads
        counts.write_requests += writes
        counts.grouped_writes += grouped
        counts.silent_writes_detected += silent
        counts.bypassed_reads += bypassed
        stats = cache.stats
        stats.read_hits += read_hits
        stats.write_hits += write_hits
        events = self.events
        events.precharges += row_reads
        events.rwl_pulses += row_reads
        events.row_reads += row_reads
        events.words_routed += row_reads
        events.set_buffer_reads += bypassed
        events.set_buffer_writes += writes
        if count_mt and mt_fills:
            # Per dirty eviction: a row read of the victim block; per
            # fill: an RMW over the full row (see _account_miss_traffic).
            events.rmw_operations += mt_fills
            events.precharges += mt_dirty + mt_fills
            events.rwl_pulses += mt_dirty + mt_fills
            events.row_reads += mt_dirty + mt_fills
            events.words_routed += mt_dirty * wpb + mt_fills * row_words
            events.wwl_pulses += mt_fills
            events.row_writes += mt_fills
            events.words_driven += mt_fills * row_words
            counts.rmw_operations += mt_fills

    # -- Algorithm 1 ----------------------------------------------------------------

    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        tag = self.cache.mapper.tag(access.address)
        entry = self._entry_for_set(result.set_index)
        hit_in_tag_buffer = (
            entry is not None and entry.tag_buffer.probe(result.set_index, tag)
        )
        forced = False
        if hit_in_tag_buffer:
            # Premature write-back so the array holds the newest data.
            forced = self._write_back(entry, "premature")
            self._touch(entry)
        self.events.record_row_read(words_routed=1)
        value = self.cache.read_word(
            result.set_index, result.way, result.word_offset
        )
        return AccessOutcome(
            value=value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
            array_writes=1 if forced else 0,
            forced_writeback=forced,
        )

    def _handle_write(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        entry = self._entry_for_set(result.set_index)
        array_reads = 0
        array_writes = 0
        forced = False
        grouped = False

        if entry is None:
            # Tag-Buffer miss: drain the victim entry, refill with this set.
            entry = self._victim_entry()
            if self._write_back(entry, "eviction"):
                array_writes += 1
                forced = True
            self._fill_entry(entry, result.set_index)
            array_reads += 1
        else:
            # Tag-Buffer hit: the whole RMW is elided.
            grouped = True
            self.counts.grouped_writes += 1
            if self._obs:
                self._emit_point("sb_hit", set_index=result.set_index)
        self._touch(entry)

        silent = entry.set_buffer.write(
            result.way, result.word_offset, access.value
        )
        self.events.record_set_buffer_write(1)
        if self.detect_silent_writes and silent:
            self.counts.silent_writes_detected += 1
            if self._obs:
                self._emit_point("sb_silent_write", set_index=result.set_index)
        else:
            if not entry.tag_buffer.dirty:
                entry.dirty_since = access.icount
            entry.tag_buffer.set_dirty()

        return AccessOutcome(
            value=access.value,
            cache_hit=result.hit,
            served_from=ServedFrom.SET_BUFFER,
            array_reads=array_reads,
            array_writes=array_writes,
            grouped=grouped,
            silent=silent,
            forced_writeback=forced,
        )

    # -- end of run -------------------------------------------------------------------

    def _drain(self) -> None:
        for entry in self._entries:
            if entry.valid:
                self._write_back(entry, "final")

    # -- introspection (examples / tests) ----------------------------------------------

    @property
    def buffer_entries(self) -> List[BufferEntry]:
        return list(self._entries)

    def set_buffer_occupancy(self) -> int:
        """Words whose newest value lives only in Set-Buffers right now
        (the interval sampler's occupancy series)."""
        return sum(
            entry.set_buffer.modified_words
            for entry in self._entries
            if entry.valid
        )
