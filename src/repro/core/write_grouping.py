"""Write Grouping (WG) — the paper's Section 4.1, Algorithm 1.

One Set-Buffer (sized to a cache set) plus a Tag-Buffer with a Dirty
bit.  Writes to the buffered set are merged in the buffer; the single
RMW that would have accompanied each of them is deferred until the
buffer must be written back, and silent writes never dirty the buffer
at all.  The write-back itself is a *full-row write only* — the read
half of the RMW already happened when the buffer was filled.

Algorithm 1 verbatim:

* Read request — on a Tag-Buffer hit, write back the Set-Buffer if
  Dirty (a *premature* write-back) and clear Dirty; then read from the
  array.
* Write request — on a Tag-Buffer miss, write back the Set-Buffer if
  Dirty and refill it by reading the row; then update the Set-Buffer,
  setting Dirty only for non-silent writes.

Beyond Algorithm 1 the paper leaves miss handling implicit; this
implementation adds one rule needed for correctness: when a cache fill
is about to change the *buffered* set (replacing a block whose newest
data may exist only in the buffer), the buffer is flushed and
invalidated first.  See ``_before_residency``.

The ``entries`` parameter generalises the single Set-Buffer to a small
fully-associative pool (kept in LRU order) — the paper's implicit
extension, measured by the multi-entry ablation benchmark.  ``entries=1``
is the paper's design.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.core.controller import CacheController
from repro.core.outcomes import AccessOutcome, ServedFrom
from repro.core.set_buffer import SetBuffer
from repro.core.tag_buffer import TagBuffer
from repro.trace.record import MemoryAccess
from repro.utils.validation import check_positive

__all__ = ["WriteGroupingController", "BufferEntry"]


class BufferEntry:
    """One (Tag-Buffer, Set-Buffer) pair."""

    __slots__ = ("tag_buffer", "set_buffer", "dirty_since")

    def __init__(self) -> None:
        self.tag_buffer = TagBuffer()
        self.set_buffer = SetBuffer()
        # icount at which the buffer last turned dirty; None when clean.
        # Dirty buffer data lives outside the ECC-protected array, so
        # this window is the design's soft-error exposure.
        self.dirty_since: Optional[int] = None

    @property
    def valid(self) -> bool:
        return self.tag_buffer.valid

    @property
    def dirty(self) -> bool:
        return self.tag_buffer.dirty

    @property
    def set_index(self) -> Optional[int]:
        return self.tag_buffer.set_index

    def invalidate(self) -> None:
        self.tag_buffer.invalidate()
        self.set_buffer.invalidate()


class WriteGroupingController(CacheController):
    """WG: group same-set writes, drop silent ones."""

    name = "wg"

    def __init__(
        self,
        cache: SetAssociativeCache,
        count_miss_traffic: bool = False,
        detect_silent_writes: bool = True,
        entries: int = 1,
    ) -> None:
        super().__init__(cache, count_miss_traffic=count_miss_traffic)
        check_positive("entries", entries)
        self.detect_silent_writes = detect_silent_writes
        # LRU order: index 0 is least recently used, last is most recent.
        self._entries: List[BufferEntry] = [BufferEntry() for _ in range(entries)]

    # -- buffer pool management -------------------------------------------------

    def _entry_for_set(self, set_index: int) -> Optional[BufferEntry]:
        for entry in self._entries:
            if entry.tag_buffer.matches_set(set_index):
                return entry
        return None

    def _touch(self, entry: BufferEntry) -> None:
        self._entries.remove(entry)
        self._entries.append(entry)

    def _victim_entry(self) -> BufferEntry:
        for entry in self._entries:
            if not entry.valid:
                return entry
        return self._entries[0]

    # -- write-back --------------------------------------------------------------

    def _write_back(self, entry: BufferEntry, reason: str) -> bool:
        """Drain a dirty entry into the array; no-op when clean.

        The cache controller checks the Dirty bit first and eliminates
        the write-back when it is clear (Section 4.1).  Returns True
        when a row write actually happened.
        """
        if not entry.dirty:
            return False
        for (way, word_offset), value in entry.set_buffer.take_modified().items():
            self.cache.write_word(entry.set_index, way, word_offset, value)
        self.events.record_row_write(words_driven=self._row_words)
        entry.tag_buffer.clear_dirty()
        if entry.dirty_since is not None:
            residency = max(0, self._current_icount - entry.dirty_since)
            self.counts.dirty_residency_total += residency
            self.counts.dirty_residency_max = max(
                self.counts.dirty_residency_max, residency
            )
            self.counts.dirty_windows += 1
            entry.dirty_since = None
        if reason == "premature":
            self.counts.premature_writebacks += 1
        elif reason == "eviction":
            self.counts.eviction_writebacks += 1
        elif reason == "fill_flush":
            self.counts.fill_flush_writebacks += 1
        elif reason == "final":
            self.counts.final_writebacks += 1
        else:
            raise ValueError(f"unknown write-back reason {reason!r}")
        if self._obs:
            self._emit_point(
                f"sb_writeback_{reason}", set_index=entry.set_index
            )
        return True

    def _fill_entry(self, entry: BufferEntry, set_index: int) -> None:
        """Fill the Set-Buffer by reading the row (one array read)."""
        set_data = self.cache.read_set_data(set_index)
        tags = self.cache.set_tags(set_index)
        entry.set_buffer.fill(set_index, set_data)
        entry.tag_buffer.load(set_index, tags)
        self.events.record_row_read(words_routed=self._row_words)
        self.counts.set_buffer_fills += 1
        if self._obs:
            self._emit_point("sb_fill", set_index=set_index)

    # -- residency hook ------------------------------------------------------------

    def _before_residency(self, access: MemoryAccess) -> None:
        """Flush the buffer before a fill mutates the buffered set.

        A miss to the buffered set is about to replace one of its
        blocks; the buffer may hold newer data for that set than the
        cache does and its tags are about to go stale, so it must be
        drained and dropped first.
        """
        if self.cache.lookup(access.address) is not None:
            return
        set_index = self.cache.mapper.set_index(access.address)
        entry = self._entry_for_set(set_index)
        if entry is not None:
            self._write_back(entry, "fill_flush")
            entry.invalidate()

    # -- Algorithm 1 ----------------------------------------------------------------

    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        tag = self.cache.mapper.tag(access.address)
        entry = self._entry_for_set(result.set_index)
        hit_in_tag_buffer = (
            entry is not None and entry.tag_buffer.probe(result.set_index, tag)
        )
        forced = False
        if hit_in_tag_buffer:
            # Premature write-back so the array holds the newest data.
            forced = self._write_back(entry, "premature")
            self._touch(entry)
        self.events.record_row_read(words_routed=1)
        value = self.cache.read_word(
            result.set_index, result.way, result.word_offset
        )
        return AccessOutcome(
            value=value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
            array_writes=1 if forced else 0,
            forced_writeback=forced,
        )

    def _handle_write(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        entry = self._entry_for_set(result.set_index)
        array_reads = 0
        array_writes = 0
        forced = False
        grouped = False

        if entry is None:
            # Tag-Buffer miss: drain the victim entry, refill with this set.
            entry = self._victim_entry()
            if self._write_back(entry, "eviction"):
                array_writes += 1
                forced = True
            self._fill_entry(entry, result.set_index)
            array_reads += 1
        else:
            # Tag-Buffer hit: the whole RMW is elided.
            grouped = True
            self.counts.grouped_writes += 1
            if self._obs:
                self._emit_point("sb_hit", set_index=result.set_index)
        self._touch(entry)

        silent = entry.set_buffer.write(
            result.way, result.word_offset, access.value
        )
        self.events.record_set_buffer_write(1)
        if self.detect_silent_writes and silent:
            self.counts.silent_writes_detected += 1
            if self._obs:
                self._emit_point("sb_silent_write", set_index=result.set_index)
        else:
            if not entry.tag_buffer.dirty:
                entry.dirty_since = access.icount
            entry.tag_buffer.set_dirty()

        return AccessOutcome(
            value=access.value,
            cache_hit=result.hit,
            served_from=ServedFrom.SET_BUFFER,
            array_reads=array_reads,
            array_writes=array_writes,
            grouped=grouped,
            silent=silent,
            forced_writeback=forced,
        )

    # -- end of run -------------------------------------------------------------------

    def _drain(self) -> None:
        for entry in self._entries:
            if entry.valid:
                self._write_back(entry, "final")

    # -- introspection (examples / tests) ----------------------------------------------

    @property
    def buffer_entries(self) -> List[BufferEntry]:
        return list(self._entries)

    def set_buffer_occupancy(self) -> int:
        """Words whose newest value lives only in Set-Buffers right now
        (the interval sampler's occupancy series)."""
        return sum(
            entry.set_buffer.modified_words
            for entry in self._entries
            if entry.valid
        )
