"""Related-work comparator controllers (paper Section 2).

The paper discusses two prior alternatives to wholesale RMW; both are
implemented here so the benchmark harness can put WG/WG+RB in context:

* **Chang et al. [2]** — abandon bit interleaving and drive word lines
  at word granularity (:class:`WordWriteController`).  Writes then touch
  only the selected word: one array access, like a 6T cache.  The cost
  moves elsewhere: without interleaving an adjacent multi-bit upset
  lands in one word, so SEC-DED no longer suffices — the scheme "requires
  multi-bit correction techniques and larger write word line drivers,
  which could increase area and power".  Those costs are modelled by
  :meth:`repro.power.area.AreaModel.ecc_bits` and the energy model's
  word-line factors; the ``bench_related_work`` benchmark combines them.
* **Park et al. [11]** — keep RMW but exploit the hierarchical read bit
  lines to perform it *locally* inside one sub-array
  (:class:`LocalRMWController`).  Array-access counts are identical to
  plain RMW (every write still reads and rewrites its row); the benefit
  is concurrency — only requests to the busy sub-array stall, which the
  timing model in :mod:`repro.perf` captures via per-sub-array ports.
  The paper's criticism ("the sub-array performing write-back is not
  available to any other cache access") is visible there too.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.core.controller import CacheController
from repro.core.outcomes import AccessOutcome, ServedFrom
from repro.core.rmw import RMWController
from repro.trace.record import MemoryAccess
from repro.utils.validation import check_power_of_two
from repro.errors import ValidationError

__all__ = ["WordWriteController", "LocalRMWController"]


class WordWriteController(CacheController):
    """Chang et al.: non-interleaved array, word-granularity writes.

    Reads and writes each cost a single row activation.  The array
    behind this controller is ``ArrayGeometry(interleaved=False)``;
    partial writes are legal there, so no RMW is ever issued.
    """

    name = "word_write"

    #: ECC scheme this layout forces (see AreaModel.ecc_bits).
    ecc_scheme = "multi_bit"

    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        self.events.record_row_read(words_routed=1)
        value = self.cache.read_word(
            result.set_index, result.way, result.word_offset
        )
        return AccessOutcome(
            value=value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
        )

    def _handle_write(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        # Word-granular WWL: only the selected word's drivers fire.
        self.events.record_row_write(words_driven=1)
        self.cache.write_word(
            result.set_index, result.way, result.word_offset, access.value
        )
        return AccessOutcome(
            value=access.value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_writes=1,
        )


class LocalRMWController(RMWController):
    """Park et al.: RMW confined to one sub-array.

    Identical data-plane behaviour and access counts to
    :class:`RMWController`; exposes the sub-array mapping the timing
    model needs to localise port occupancy.
    """

    name = "rmw_local"

    def __init__(
        self,
        cache: SetAssociativeCache,
        count_miss_traffic: bool = False,
        subarrays: Optional[int] = None,
    ) -> None:
        super().__init__(cache, count_miss_traffic=count_miss_traffic)
        if subarrays is None:
            # Default: 8 banks, clamped for tiny caches.
            subarrays = min(8, cache.geometry.num_sets)
        check_power_of_two("subarrays", subarrays)
        if subarrays > cache.geometry.num_sets:
            raise ValidationError(
                f"subarrays ({subarrays}) cannot exceed the number of "
                f"sets ({cache.geometry.num_sets})"
            )
        self.subarrays = subarrays

    def subarray_of(self, set_index: int) -> int:
        """Sub-array servicing ``set_index`` (rows striped across banks)."""
        return set_index % self.subarrays
