"""Controller base class.

A controller owns a :class:`SetAssociativeCache` and translates each
:class:`MemoryAccess` into SRAM array operations, recording them in an
:class:`SRAMEventLog`.  Residency (miss handling) is common to all
controllers; the array-level read/write behaviour is what the concrete
subclasses implement — that is where the paper's techniques live.

Miss-traffic accounting
-----------------------
The paper's evaluation counts *request-level* array accesses and does
not discuss fills or dirty evictions (reasonable for a 64 KB L1 over
SPEC, where miss rates are small).  We follow that by default; setting
``count_miss_traffic=True`` additionally charges each fill as an RMW
(a block write is a partial-row write) and each dirty eviction as a row
read, which the ablation benchmark uses to show the conclusions are
unchanged.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.core.outcomes import AccessOutcome, OperationCounts
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sram.events import SRAMEventLog
from repro.trace.record import MemoryAccess
from repro.errors import StateError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.check.invariants import InvariantChecker
    from repro.engine.batch import AccessBatch

__all__ = ["CacheController"]


class CacheController(abc.ABC):
    """Base for all array-access policies."""

    #: Short registry name, set by subclasses.
    name: str = "abstract"

    #: Registry name whose semantics the class's ``_process_batch_fast``
    #: implements, or None when there is no batched fast path.  The gate
    #: in :meth:`process_batch` requires ``self.name`` to match, so a
    #: subclass that changes behaviour (and therefore ``name``) falls
    #: back to the scalar loop instead of inheriting a fast path that no
    #: longer matches its ``process()``.
    _fast_path_name: Optional[str] = None

    def __init__(
        self,
        cache: SetAssociativeCache,
        count_miss_traffic: bool = False,
    ) -> None:
        self.cache = cache
        self.events = SRAMEventLog()
        self.counts = OperationCounts()
        self.count_miss_traffic = count_miss_traffic
        self._row_words = cache.geometry.words_per_set
        self._finalized = False
        self._current_icount = 0
        # Observability plane: off by default (one boolean test per
        # request); Simulator/make_controller attach a live one.
        self.telemetry: Telemetry = NULL_TELEMETRY
        self._obs = False
        # Debug plane: structural invariant checks after each access
        # (repro.check.invariants); None keeps the hot path at a single
        # is-None test per request.
        self._invariant_checker = None

    # -- observability ---------------------------------------------------------

    def attach_telemetry(self, telemetry: Optional[Telemetry]) -> None:
        """Point this controller's instrumentation at ``telemetry``.

        Pre-binds the per-request counters so the hot loop pays one
        bound-method call per increment, never a registry lookup.
        Passing None (or a disabled telemetry) turns instrumentation
        back off.
        """
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._obs = self.telemetry.enabled
        if self._obs:
            # Spelled as whole f-strings (not prefix + tail) so the
            # RPR131 metric-name cross-reference can resolve each name
            # statically against repro/obs/names.py.
            registry = self.telemetry.registry
            self._c_reads = registry.counter(f"ctrl.{self.name}.read_requests")
            self._c_writes = registry.counter(f"ctrl.{self.name}.write_requests")
            self._c_hits = registry.counter(f"ctrl.{self.name}.hits")
            self._c_misses = registry.counter(f"ctrl.{self.name}.misses")

    def reset_telemetry_counters(self) -> None:
        """Zero this controller's pre-bound registry counters.

        ``Simulator.reset_measurements`` calls this so warm-up requests
        never leak into the measured slice on the metrics plane (the
        event/count objects are *replaced* there, but registry counters
        are shared live objects and must be reset in place).
        """
        if not self._obs:
            return
        prefix = f"ctrl.{self.name}."
        for counter in self.telemetry.registry.counters():
            if counter.name.startswith(prefix):
                counter.value = 0

    def _emit_point(self, name: str, **args: object) -> None:
        """One named instrumentation point: counter + trace instant.

        Call sites guard with ``if self._obs`` so the uninstrumented
        path never even builds the arguments.
        """
        self.telemetry.registry.inc(f"ctrl.{self.name}.{name}")
        sink = self.telemetry.sink
        if sink.enabled:
            args["icount"] = self._current_icount
            sink.instant(f"{self.name}.{name}", category="controller", args=args)

    def _observe(self, access: MemoryAccess, result: AccessResult) -> None:
        """Per-request accounting on the metrics plane (obs on only)."""
        if access.is_read:
            self._c_reads.inc()
        else:
            self._c_writes.inc()
        if result.hit:
            self._c_hits.inc()
        else:
            self._c_misses.inc()
        sampler = self.telemetry.sampler
        if sampler is not None:
            sampler.tick(self)

    def set_buffer_occupancy(self) -> int:
        """Modified words currently held outside the array (0 unless a
        buffering controller overrides this)."""
        return 0

    # -- debug mode ------------------------------------------------------------

    def enable_invariant_checks(self, every: int = 1) -> "InvariantChecker":
        """Audit structural invariants after every ``every``-th access.

        Debug mode for the correctness tooling (``docs/correctness.md``):
        each :meth:`process` call is followed by a full structural check
        of the cache slot arrays and any WG-family buffers, raising
        :class:`repro.errors.InvariantViolation` at the first access
        that breaks one.  Checks are read-only — results are unchanged,
        only slower: :meth:`process_batch` falls back to the scalar
        loop so every access is audited individually.  Returns the
        installed :class:`repro.check.invariants.InvariantChecker`.
        """
        from repro.check.invariants import InvariantChecker

        self._invariant_checker = InvariantChecker(every=every)
        return self._invariant_checker

    def disable_invariant_checks(self) -> None:
        """Turn debug-mode invariant checking back off."""
        self._invariant_checker = None

    # -- public API -----------------------------------------------------------

    def process(self, access: MemoryAccess) -> AccessOutcome:
        """Handle one request end-to-end and return its outcome."""
        if self._finalized:
            raise StateError("controller already finalized")
        if access.is_read:
            self.counts.read_requests += 1
        else:
            self.counts.write_requests += 1
        self._current_icount = access.icount

        self._before_residency(access)
        result = self.cache.ensure_resident(access)
        if result.filled:
            self._account_miss_traffic(result)

        if access.is_read:
            outcome = self._handle_read(access, result)
        else:
            outcome = self._handle_write(access, result)
        if self._obs:
            self._observe(access, result)
        if self._invariant_checker is not None:
            self._invariant_checker.after_access(self)
        return outcome

    def process_batch(self, batch: "AccessBatch") -> int:
        """Handle one :class:`AccessBatch`; returns records consumed.

        Bit-identical to replaying the batch through :meth:`process`
        one record at a time — the differential suite in
        ``tests/engine/`` enforces this.  Outcome objects are not
        built, which is most of the speedup.

        The specialised fast path engages only when *all* of these
        hold; otherwise every record replays through the scalar path:

        * the concrete class implements the semantics it advertises
          (``name == _fast_path_name`` — subclasses that change
          behaviour fall back automatically);
        * the cache uses stamp-LRU (:attr:`SetAssociativeCache.
          engine_fast_ok`);
        * telemetry is off (``_obs``): per-request sampler ticks and
          trace instants cannot be aggregated per batch without
          changing observable output;
        * debug-mode invariant checks are off (:meth:`enable_invariant_
          checks`): the checker audits state after *every* access, so
          each record must replay through :meth:`process`.
        """
        if self._finalized:
            raise StateError("controller already finalized")
        if batch.geometry != self.cache.geometry:
            raise ValidationError(
                f"batch decoded for {batch.geometry.describe()} fed to a "
                f"{self.cache.geometry.describe()} cache"
            )
        n = len(batch)
        if n == 0:
            return 0
        if (
            self.name == self._fast_path_name
            and not self._obs
            and self._invariant_checker is None
            and self.cache.engine_fast_ok
        ):
            self._process_batch_fast(batch)
        else:
            process = self.process
            for access in batch.accesses():
                process(access)
        return n

    def _process_batch_fast(self, batch: "AccessBatch") -> None:
        """Batched fast path; only reached when the gate in
        :meth:`process_batch` passed.  Base implementation replays the
        scalar path (concrete techniques override)."""
        process = self.process
        for access in batch.accesses():
            process(access)

    def run(
        self,
        trace: Iterable[MemoryAccess],
        collect_outcomes: bool = True,
    ) -> Optional[List[AccessOutcome]]:
        """Process a whole trace, finalize, and return per-access outcomes.

        ``collect_outcomes=False`` streams instead: outcomes are
        discarded as they are produced and the call returns None, so a
        campaign-length trace costs O(1) memory here instead of one
        retained :class:`AccessOutcome` per access.
        """
        if collect_outcomes:
            outcomes: Optional[List[AccessOutcome]] = [
                self.process(access) for access in trace
            ]
        else:
            outcomes = None
            process = self.process
            for access in trace:
                process(access)
        self.finalize()
        return outcomes

    def finalize(self) -> None:
        """Drain any controller-private state (e.g. a dirty Set-Buffer).

        Idempotent; must be called before comparing memory contents
        against an oracle.
        """
        if not self._finalized:
            self._drain()
            self._finalized = True

    # -- template methods -------------------------------------------------------

    @abc.abstractmethod
    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        """Array-level behaviour of a read request."""

    @abc.abstractmethod
    def _handle_write(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        """Array-level behaviour of a write request."""

    def _before_residency(self, access: MemoryAccess) -> None:
        """Hook before miss handling; WG flushes its buffer here when a
        fill is about to change the buffered set."""

    def _drain(self) -> None:
        """Hook to flush controller-private state at end of run."""

    # -- shared helpers -----------------------------------------------------------

    def _word_in_row(self, result: AccessResult) -> int:
        """Column (word) position of the access within its array row."""
        return result.way * self.cache.geometry.words_per_block + result.word_offset

    def _account_miss_traffic(self, result: AccessResult) -> None:
        if not self.count_miss_traffic:
            return
        if result.evicted_dirty:
            # Reading the victim block out of the array for write-back.
            self.events.record_row_read(
                words_routed=self.cache.geometry.words_per_block
            )
        # Installing the fill is a partial-row write => RMW on an
        # interleaved array.
        self.events.record_rmw(row_words=self._row_words)
        self.counts.rmw_operations += 1

    @property
    def array_accesses(self) -> int:
        """Row activations so far — the paper's cache-access count."""
        return self.events.array_accesses
