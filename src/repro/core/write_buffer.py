"""Coalescing write buffer — the obvious alternative WG must beat.

A reviewer's first question about Write Grouping is "why not a plain
coalescing write buffer?"  This controller implements that design point
so the question has a quantitative answer
(``benchmarks/bench_write_buffer.py``):

* N block-granularity entries in front of the array (matching WG's
  storage budget: 4 x 32 B entries = one 128 B Set-Buffer at the
  baseline geometry);
* writes coalesce into a matching entry (no array access) or allocate
  one, draining the LRU entry when full;
* reads are forwarded from the buffer when they hit a buffered word.

The structural difference from WG is what the comparison exposes:

1. a write-buffer entry holds only the *stores* (a word mask), not the
   row pre-image, so a drain must be a full RMW — read-merge-write,
   two array accesses — where WG's write-back is a single row write
   (its read happened once, at fill);
2. without the pre-image, silent stores cannot be detected, so every
   dirtied entry eventually costs a drain; WG elides ~42 % of them.

WG is, in effect, a write buffer that pre-reads the row — paying one
read up front to make the drain single-access and silent-detectable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.core.controller import CacheController
from repro.core.outcomes import AccessOutcome, ServedFrom
from repro.trace.record import MemoryAccess
from repro.utils.validation import check_positive
from repro.errors import ValidationError

__all__ = ["WriteBufferController"]


class _BufferSlot:
    """One block-granularity coalescing entry."""

    __slots__ = ("valid", "set_index", "way", "tag", "words")

    def __init__(self) -> None:
        self.valid = False
        self.set_index: Optional[int] = None
        self.way: Optional[int] = None
        self.tag: Optional[int] = None
        #: word_offset -> value for the stores coalesced so far.
        self.words: Dict[int, int] = {}

    def matches(self, set_index: int, tag: int) -> bool:
        return self.valid and self.set_index == set_index and self.tag == tag

    def open(self, set_index: int, way: int, tag: int) -> None:
        self.valid = True
        self.set_index = set_index
        self.way = way
        self.tag = tag
        self.words = {}

    def close(self) -> None:
        self.valid = False
        self.set_index = None
        self.way = None
        self.tag = None
        self.words = {}


class WriteBufferController(CacheController):
    """Conventional coalescing write buffer over an RMW array."""

    name = "write_buffer"

    def __init__(
        self,
        cache: SetAssociativeCache,
        count_miss_traffic: bool = False,
        entries: int = 4,
    ) -> None:
        super().__init__(cache, count_miss_traffic=count_miss_traffic)
        check_positive("entries", entries)
        # LRU order: index 0 least recently used.
        self._slots: List[_BufferSlot] = [_BufferSlot() for _ in range(entries)]

    # -- slot management --------------------------------------------------------

    def _find_slot(self, set_index: int, tag: int) -> Optional[_BufferSlot]:
        for slot in self._slots:
            if slot.matches(set_index, tag):
                return slot
        return None

    def _touch(self, slot: _BufferSlot) -> None:
        self._slots.remove(slot)
        self._slots.append(slot)

    def _victim_slot(self) -> _BufferSlot:
        for slot in self._slots:
            if not slot.valid:
                return slot
        return self._slots[0]

    def _drain_slot(self, slot: _BufferSlot, reason: str) -> int:
        """Write a slot's coalesced stores into the array.

        Costs one RMW (two array accesses): without the row pre-image
        the half-selected columns must be read before the row write.
        Returns the number of array accesses spent.
        """
        if not slot.valid:
            return 0
        for word_offset, value in slot.words.items():
            self.cache.write_word(slot.set_index, slot.way, word_offset, value)
        self.events.record_rmw(row_words=self._row_words)
        self.counts.rmw_operations += 1
        if reason == "eviction":
            self.counts.eviction_writebacks += 1
        elif reason == "fill_flush":
            self.counts.fill_flush_writebacks += 1
        elif reason == "final":
            self.counts.final_writebacks += 1
        else:
            raise ValidationError(f"unknown drain reason {reason!r}")
        slot.close()
        return 2

    # -- residency hook -----------------------------------------------------------

    def _before_residency(self, access: MemoryAccess) -> None:
        """Drain buffered blocks of a set that is about to take a fill.

        Same correctness rule as WG: a fill may evict a block whose
        newest words exist only here, and way bindings go stale.
        """
        if self.cache.lookup(access.address) is not None:
            return
        set_index = self.cache.mapper.set_index(access.address)
        for slot in self._slots:
            if slot.valid and slot.set_index == set_index:
                self._drain_slot(slot, "fill_flush")

    # -- request handling -----------------------------------------------------------

    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        tag = self.cache.mapper.tag(access.address)
        slot = self._find_slot(result.set_index, tag)
        if slot is not None and result.word_offset in slot.words:
            # Store-to-load forwarding from the buffer.
            self._touch(slot)
            self.events.record_set_buffer_read(1)
            self.counts.bypassed_reads += 1
            return AccessOutcome(
                value=slot.words[result.word_offset],
                cache_hit=result.hit,
                served_from=ServedFrom.SET_BUFFER,
                bypassed=True,
            )
        # Words not covered by the buffer are current in the array.
        self.events.record_row_read(words_routed=1)
        value = self.cache.read_word(
            result.set_index, result.way, result.word_offset
        )
        return AccessOutcome(
            value=value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
        )

    def _handle_write(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        tag = self.cache.mapper.tag(access.address)
        slot = self._find_slot(result.set_index, tag)
        drained = 0
        grouped = False
        if slot is None:
            slot = self._victim_slot()
            drained = self._drain_slot(slot, "eviction")
            slot.open(result.set_index, result.way, tag)
        else:
            grouped = True
            self.counts.grouped_writes += 1
        self._touch(slot)
        slot.words[result.word_offset] = access.value
        self.events.record_set_buffer_write(1)
        return AccessOutcome(
            value=access.value,
            cache_hit=result.hit,
            served_from=ServedFrom.SET_BUFFER,
            array_reads=drained // 2,
            array_writes=drained // 2,
            grouped=grouped,
            forced_writeback=drained > 0,
        )

    # -- end of run --------------------------------------------------------------------

    def _drain(self) -> None:
        for slot in self._slots:
            if slot.valid:
                self._drain_slot(slot, "final")
