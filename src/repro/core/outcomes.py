"""Per-access outcomes and per-run operation counters."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ServedFrom", "AccessOutcome", "OperationCounts"]


class ServedFrom(enum.Enum):
    """Where a request's data movement happened."""

    ARRAY = "array"
    SET_BUFFER = "set_buffer"


@dataclass(frozen=True)
class AccessOutcome:
    """What one request cost at the array level.

    Attributes:
        value: data returned (reads) or stored (writes).
        cache_hit: whether the block was resident before the request.
        served_from: array or Set-Buffer.
        array_reads / array_writes: row activations this request caused
            (including any premature or eviction write-back it forced).
        grouped: write merged into an already-buffered set (WG).
        silent: write detected as silent in the Set-Buffer.
        bypassed: read served from the Set-Buffer (WG+RB).
        forced_writeback: request triggered a Set-Buffer write-back.
    """

    value: int
    cache_hit: bool
    served_from: ServedFrom
    array_reads: int = 0
    array_writes: int = 0
    grouped: bool = False
    silent: bool = False
    bypassed: bool = False
    forced_writeback: bool = False

    @property
    def array_accesses(self) -> int:
        return self.array_reads + self.array_writes


@dataclass
class OperationCounts:
    """Aggregate controller activity over a run.

    The access-frequency comparisons in Section 5.2 are ratios of
    ``SRAMEventLog.array_accesses`` between techniques; these counters
    record *why* those accesses happened.
    """

    read_requests: int = 0
    write_requests: int = 0
    grouped_writes: int = 0
    silent_writes_detected: int = 0
    bypassed_reads: int = 0
    set_buffer_fills: int = 0
    premature_writebacks: int = 0
    eviction_writebacks: int = 0
    fill_flush_writebacks: int = 0
    final_writebacks: int = 0
    rmw_operations: int = 0
    #: Set-Buffer vulnerability accounting: instruction-count units
    #: during which the buffer held *dirty* (not-yet-written-back) data.
    #: Dirty buffer contents live in plain latches outside the ECC
    #: domain, so this window is the technique's soft-error exposure —
    #: a trade-off the paper does not discuss (see the vulnerability
    #: benchmark).
    dirty_residency_total: int = 0
    dirty_residency_max: int = 0
    dirty_windows: int = 0

    @property
    def requests(self) -> int:
        return self.read_requests + self.write_requests

    @property
    def writebacks(self) -> int:
        """All Set-Buffer write-backs, whatever forced them."""
        return (
            self.premature_writebacks
            + self.eviction_writebacks
            + self.fill_flush_writebacks
            + self.final_writebacks
        )

    @property
    def grouped_write_fraction(self) -> float:
        """Share of writes merged without their own RMW."""
        if self.write_requests == 0:
            return 0.0
        return self.grouped_writes / self.write_requests

    @property
    def silent_write_fraction(self) -> float:
        if self.write_requests == 0:
            return 0.0
        return self.silent_writes_detected / self.write_requests

    @property
    def bypassed_read_fraction(self) -> float:
        if self.read_requests == 0:
            return 0.0
        return self.bypassed_reads / self.read_requests

    @property
    def mean_dirty_residency(self) -> float:
        """Average instructions a dirty group waited for write-back."""
        if self.dirty_windows == 0:
            return 0.0
        return self.dirty_residency_total / self.dirty_windows
