"""Controller registry: build any technique by name."""

from __future__ import annotations

from typing import Callable, Dict

from repro.cache.cache import SetAssociativeCache
from repro.core.controller import CacheController
from repro.core.conventional import ConventionalController
from repro.core.related_work import LocalRMWController, WordWriteController
from repro.core.pulse_assist import PulseAssistController
from repro.core.rmw import RMWController
from repro.core.wg_rb import WGRBController
from repro.core.write_buffer import WriteBufferController
from repro.core.write_grouping import WriteGroupingController
from repro.errors import ValidationError

__all__ = ["CONTROLLER_NAMES", "ALL_CONTROLLER_NAMES", "make_controller"]

_FACTORIES: Dict[str, Callable[..., CacheController]] = {
    ConventionalController.name: ConventionalController,
    RMWController.name: RMWController,
    WriteGroupingController.name: WriteGroupingController,
    WGRBController.name: WGRBController,
    WordWriteController.name: WordWriteController,
    LocalRMWController.name: LocalRMWController,
    WriteBufferController.name: WriteBufferController,
    PulseAssistController.name: PulseAssistController,
}

CONTROLLER_NAMES = ("conventional", "rmw", "wg", "wg_rb")
"""The paper's four techniques (its Figures 9-11 comparison set)."""

ALL_CONTROLLER_NAMES = tuple(sorted(_FACTORIES))
"""Every registered technique, including the related-work comparators
``word_write`` (Chang et al.), ``rmw_local`` (Park et al.),
``pulse_assist`` (Kim et al.) and the ``write_buffer`` design-point
alternative."""


def make_controller(
    name: str, cache: SetAssociativeCache, **kwargs: object
) -> CacheController:
    """Instantiate a controller by registry name.

    Extra keyword arguments are forwarded to the controller constructor
    (e.g. ``detect_silent_writes=False`` or ``entries=4`` for WG-family
    controllers, ``count_miss_traffic=True`` for any).  ``telemetry=``
    is handled here and attached post-construction, so every registered
    controller is instrumentable without widening its signature.
    """
    telemetry = kwargs.pop("telemetry", None)
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValidationError(
            f"unknown controller {name!r}; known: {list(CONTROLLER_NAMES)}"
        ) from None
    controller = factory(cache, **kwargs)
    if telemetry is not None:
        controller.attach_telemetry(telemetry)
    return controller
