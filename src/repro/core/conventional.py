"""Conventional 6T-style controller (no column-selection issue).

In a 6T array, half-selected cells during a write are biased as reads
and survive, so a write activates the row once and drives only the
selected columns.  This is the pre-RMW reference point used by the
paper's ">32 % access-frequency increase" claim for RMW.
"""

from __future__ import annotations

from repro.cache.cache import AccessResult
from repro.core.controller import CacheController
from repro.core.outcomes import AccessOutcome, ServedFrom
from repro.trace.record import MemoryAccess

__all__ = ["ConventionalController"]


class ConventionalController(CacheController):
    """One row activation per request, read or write."""

    name = "conventional"

    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        self.events.record_row_read(words_routed=1)
        value = self.cache.read_word(
            result.set_index, result.way, result.word_offset
        )
        return AccessOutcome(
            value=value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
        )

    def _handle_write(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        self.events.record_row_write(words_driven=1)
        self.cache.write_word(
            result.set_index, result.way, result.word_offset, access.value
        )
        return AccessOutcome(
            value=access.value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_writes=1,
        )
