"""Conventional 6T-style controller (no column-selection issue).

In a 6T array, half-selected cells during a write are biased as reads
and survive, so a write activates the row once and drives only the
selected columns.  This is the pre-RMW reference point used by the
paper's ">32 % access-frequency increase" claim for RMW.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.cache import AccessResult
from repro.core.controller import CacheController
from repro.core.outcomes import AccessOutcome, ServedFrom
from repro.trace.record import MemoryAccess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.batch import AccessBatch

__all__ = ["ConventionalController"]


class ConventionalController(CacheController):
    """One row activation per request, read or write."""

    name = "conventional"
    _fast_path_name = "conventional"

    def _process_batch_fast(self, batch: "AccessBatch") -> None:
        """Batched hot loop, fully inline: hits run on the cache's slot
        arrays, misses through the shared ``cache._fill`` (the same
        code ``ensure_resident`` runs), with all counters aggregated
        locally and flushed once per batch."""
        cache = self.cache
        tags_by_set = cache._tags  # noqa: SLF001 - engine contract
        dirty_by_set = cache._dirty  # noqa: SLF001
        data_by_set = cache._data  # noqa: SLF001
        stamps_by_set = cache._stamps  # noqa: SLF001
        tick = cache._tick  # noqa: SLF001
        fill = cache._fill  # noqa: SLF001
        wpb = cache.geometry.words_per_block
        count_mt = self.count_miss_traffic
        kinds = batch.kinds
        addresses = batch.addresses
        values = batch.values
        set_indices = batch.set_indices
        req_tags = batch.tags
        word_offsets = batch.word_offsets

        reads = writes = read_hits = write_hits = 0
        mt_fills = mt_dirty = 0  # count_miss_traffic charges
        for i in range(len(kinds)):
            s = set_indices[i]
            t = req_tags[i]
            kind = kinds[i]
            tags = tags_by_set[s]
            if t in tags:
                way = tags.index(t)
                stamps_by_set[s][way] = tick
                tick += 1
                if kind:
                    write_hits += 1
                else:
                    read_hits += 1
            else:
                cache._tick = tick  # noqa: SLF001
                way, _, evicted_dirty = fill(s, t, addresses[i], not kind)
                tick = cache._tick  # noqa: SLF001
                if count_mt:
                    mt_fills += 1
                    if evicted_dirty:
                        mt_dirty += 1
            if kind:
                writes += 1
                data_by_set[s][way * wpb + word_offsets[i]] = values[i]
                dirty_by_set[s][way] = True
            else:
                reads += 1

        cache._tick = tick  # noqa: SLF001
        self._current_icount = batch.icounts[-1]
        counts = self.counts
        counts.read_requests += reads
        counts.write_requests += writes
        stats = cache.stats
        stats.read_hits += read_hits
        stats.write_hits += write_hits
        events = self.events
        # One row read per read request (1 word routed), one row write
        # per write request (1 word driven).
        events.precharges += reads
        events.rwl_pulses += reads
        events.row_reads += reads
        events.words_routed += reads
        events.wwl_pulses += writes
        events.row_writes += writes
        events.words_driven += writes
        if count_mt and mt_fills:
            # Per dirty eviction: a row read of the victim block; per
            # fill: an RMW over the full row (see _account_miss_traffic).
            row_words = self._row_words
            events.rmw_operations += mt_fills
            events.precharges += mt_dirty + mt_fills
            events.rwl_pulses += mt_dirty + mt_fills
            events.row_reads += mt_dirty + mt_fills
            events.words_routed += mt_dirty * wpb + mt_fills * row_words
            events.wwl_pulses += mt_fills
            events.row_writes += mt_fills
            events.words_driven += mt_fills * row_words
            counts.rmw_operations += mt_fills

    def _handle_read(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        self.events.record_row_read(words_routed=1)
        value = self.cache.read_word(
            result.set_index, result.way, result.word_offset
        )
        return AccessOutcome(
            value=value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_reads=1,
        )

    def _handle_write(
        self, access: MemoryAccess, result: AccessResult
    ) -> AccessOutcome:
        self.events.record_row_write(words_driven=1)
        self.cache.write_word(
            result.set_index, result.way, result.word_offset, access.value
        )
        return AccessOutcome(
            value=access.value,
            cache_hit=result.hit,
            served_from=ServedFrom.ARRAY,
            array_writes=1,
        )
