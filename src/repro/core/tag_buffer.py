"""The Tag-Buffer (paper Figure 6b).

Lives in the cache controller: the buffered set's index, one tag per
way, and the Dirty bit.  At the paper's baseline geometry it is under
150 bits (Section 5.4): 9 index bits + 4 x 35-bit tags + valid/dirty —
the area model in :mod:`repro.power` computes this exactly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple
from repro.errors import ValidationError

__all__ = ["TagBuffer"]


class TagBuffer:
    """Control plane of WG/WG+RB: which set is buffered, and is it dirty."""

    def __init__(self) -> None:
        self.valid: bool = False
        self.dirty: bool = False
        self.set_index: Optional[int] = None
        self._tags: Tuple[Optional[int], ...] = ()

    def load(self, set_index: int, tags: List[Optional[int]]) -> None:
        """Record the buffered set and its resident tags; clears Dirty."""
        self.valid = True
        self.dirty = False
        self.set_index = set_index
        self._tags = tuple(tags)

    def invalidate(self) -> None:
        self.valid = False
        self.dirty = False
        self.set_index = None
        self._tags = ()

    def probe(self, set_index: int, tag: int) -> bool:
        """The controller's per-request Tag-Buffer probe.

        Hits when the buffer holds ``set_index`` *and* the request's tag
        is among the buffered ways' tags.
        """
        return self.valid and self.set_index == set_index and tag in self._tags

    def matches_set(self, set_index: int) -> bool:
        """True when the buffered set is ``set_index`` (any tag)."""
        return self.valid and self.set_index == set_index

    def way_of(self, tag: int) -> int:
        """Way index whose tag is ``tag`` (must be present)."""
        if not self.valid:
            raise ValidationError("Tag-Buffer is empty")
        for way, stored in enumerate(self._tags):
            if stored == tag:
                return way
        raise ValidationError(f"tag {tag:#x} not in Tag-Buffer")

    def set_dirty(self) -> None:
        """Set by the controller upon a non-silent write (Figure 6b)."""
        if not self.valid:
            raise ValidationError("cannot dirty an empty Tag-Buffer")
        self.dirty = True

    def clear_dirty(self) -> None:
        """Cleared after a write-back: cache and Set-Buffer are consistent."""
        self.dirty = False

    @property
    def tags(self) -> Tuple[Optional[int], ...]:
        return self._tags

    def storage_bits(self, index_bits: int, tag_bits: int) -> int:
        """Exact storage this buffer needs (Section 5.4 accounting).

        index + one tag per way + valid bit per way + buffer valid +
        dirty.
        """
        ways = len(self._tags) if self._tags else 0
        return index_bits + ways * (tag_bits + 1) + 2
