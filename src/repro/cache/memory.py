"""Functional next-level memory.

A flat, word-granular memory that backs the cache simulator and doubles
as the *correctness oracle*: whatever controller sits in front (RMW, WG,
WG+RB), the values returned by reads must equal the values this memory
model would produce for the same program order.  Memory starts
zero-filled, matching the value model's assumption when classifying the
first write to a word as silent or not.
"""

from __future__ import annotations

from typing import Dict, List

from repro.trace.record import WORD_BYTES

__all__ = ["FunctionalMemory"]


class FunctionalMemory:
    """Sparse word-addressed memory with block transfer helpers."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}
        self.block_reads: int = 0
        self.block_writes: int = 0

    def read_word(self, byte_address: int) -> int:
        """Read the word containing ``byte_address`` (default 0)."""
        return self._words.get(byte_address // WORD_BYTES, 0)

    def write_word(self, byte_address: int, value: int) -> None:
        """Write the word containing ``byte_address``."""
        self._words[byte_address // WORD_BYTES] = value

    def read_block(self, block_address: int, words_per_block: int) -> List[int]:
        """Fetch a whole block (cache fill path)."""
        self.block_reads += 1
        first_word = block_address // WORD_BYTES
        return [self._words.get(first_word + i, 0) for i in range(words_per_block)]

    def write_block(self, block_address: int, data: List[int]) -> None:
        """Write back a whole block (dirty eviction path)."""
        self.block_writes += 1
        first_word = block_address // WORD_BYTES
        for i, value in enumerate(data):
            self._words[first_word + i] = value

    @property
    def footprint_words(self) -> int:
        """Number of distinct words ever written."""
        return len(self._words)

    def snapshot(self) -> Dict[int, int]:
        """Copy of the memory contents (word index -> value), for oracles."""
        return dict(self._words)
