"""Cache block (line) with data words."""

from __future__ import annotations

from typing import List, Optional
from repro.errors import ValidationError

__all__ = ["CacheBlock"]


class CacheBlock:
    """One cache line: valid/dirty bits, tag, and its data words.

    The simulator is value-accurate: silent-store detection in the
    Set-Buffer compares real data, so blocks carry their words.
    """

    __slots__ = ("valid", "dirty", "tag", "data")

    def __init__(self, words_per_block: int) -> None:
        self.valid: bool = False
        self.dirty: bool = False
        self.tag: Optional[int] = None
        self.data: List[int] = [0] * words_per_block

    def fill(self, tag: int, data: List[int]) -> None:
        """Install a block fetched from the next level."""
        if len(data) != len(self.data):
            raise ValidationError(
                f"fill data has {len(data)} words, block holds {len(self.data)}"
            )
        self.valid = True
        self.dirty = False
        self.tag = tag
        self.data = list(data)

    def invalidate(self) -> None:
        """Drop the block (used on eviction)."""
        self.valid = False
        self.dirty = False
        self.tag = None
        self.data = [0] * len(self.data)

    def read_word(self, word_offset: int) -> int:
        if not self.valid:
            raise ValidationError("read from an invalid block")
        return self.data[word_offset]

    def write_word(self, word_offset: int, value: int) -> None:
        if not self.valid:
            raise ValidationError("write to an invalid block")
        self.data[word_offset] = value
        self.dirty = True

    def matches(self, tag: int) -> bool:
        """True when the block is valid and holds ``tag``."""
        return self.valid and self.tag == tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "V" if self.valid else "-"
        state += "D" if self.dirty else "-"
        tag = f"{self.tag:#x}" if self.tag is not None else "None"
        return f"CacheBlock({state} tag={tag})"
