"""Set-associative cache substrate.

A value-accurate (data-holding) L1 data cache simulator equivalent in
scope to the Pin-tool cache the paper builds:

* :class:`CacheGeometry` — size / associativity / block-size triple with
  all derived address-decomposition parameters (paper baseline:
  64 KB, 4-way, 32 B blocks, LRU).
* :class:`AddressMapper` — tag/index/offset decomposition.
* Replacement policies — LRU (the paper's choice) plus FIFO, Random and
  tree-PLRU for sensitivity studies.
* :class:`SetAssociativeCache` — the cache model proper, backed by a
  :class:`FunctionalMemory` next level that also serves as the
  correctness oracle for the controllers in :mod:`repro.core`.
"""

from repro.cache.config import CacheGeometry, BASELINE_GEOMETRY
from repro.cache.address import AddressMapper
from repro.cache.block import CacheBlock
from repro.cache.memory import FunctionalMemory
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.cache.cache_set import CacheSet
from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.hierarchy import CacheBackedMemory, CacheHierarchy
from repro.cache.stats import CacheStats

__all__ = [
    "CacheGeometry",
    "BASELINE_GEOMETRY",
    "AddressMapper",
    "CacheBlock",
    "FunctionalMemory",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "CacheSet",
    "SetAssociativeCache",
    "AccessResult",
    "CacheStats",
    "CacheHierarchy",
    "CacheBackedMemory",
]
