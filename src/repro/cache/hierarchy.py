"""Two-level cache hierarchy.

The paper simulates the L1-D alone (its techniques live in the L1's
arrays).  A second level matters for one thing the paper leaves
implicit: L1 miss traffic.  :class:`CacheHierarchy` stacks an inclusive
L2 between the L1 and the functional memory so the miss-traffic
ablation can charge realistic fill latencies/energies, and so users can
study how an 8T L1's RMW interacts with an L2 of its own.

The L2 is a plain :class:`SetAssociativeCache`; adapters below make a
cache usable as another cache's next level (the `read_block` /
`write_block` protocol of :class:`FunctionalMemory`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.cache.memory import FunctionalMemory
from repro.errors import ConfigurationError
from repro.trace.record import AccessType, MemoryAccess

__all__ = ["CacheBackedMemory", "CacheHierarchy"]


class CacheBackedMemory:
    """Adapter: present a cache as the next-level 'memory' of another.

    Implements the block-transfer protocol the L1 uses
    (:meth:`read_block` / :meth:`write_block`) by converting each block
    transfer into word accesses of the underlying cache — counting L2
    hits/misses along the way.
    """

    def __init__(self, cache: SetAssociativeCache) -> None:
        self.cache = cache
        self.block_reads = 0
        self.block_writes = 0
        self._icount = 0
        # Byte stride between consecutive words of a block transfer,
        # derived from the cache's geometry rather than assuming 8-byte
        # words: a geometry with a different word size would otherwise
        # silently read/write the wrong L2 locations.
        geometry = cache.geometry
        self._word_stride = geometry.block_bytes // geometry.words_per_block

    def _access(self, kind: AccessType, address: int, value: int = 0):
        self._icount += 1
        access = MemoryAccess(
            icount=self._icount, kind=kind, address=address, value=value
        )
        return self.cache.ensure_resident(access)

    def read_word(self, byte_address: int) -> int:
        result = self._access(AccessType.READ, byte_address)
        return self.cache.read_word(
            result.set_index, result.way, result.word_offset
        )

    def write_word(self, byte_address: int, value: int) -> None:
        result = self._access(AccessType.WRITE, byte_address, value)
        self.cache.write_word(
            result.set_index, result.way, result.word_offset, value
        )

    def read_block(self, block_address: int, words_per_block: int) -> List[int]:
        self.block_reads += 1
        return [
            self.read_word(block_address + self._word_stride * offset)
            for offset in range(words_per_block)
        ]

    def write_block(self, block_address: int, data: List[int]) -> None:
        self.block_writes += 1
        for offset, value in enumerate(data):
            self.write_word(block_address + self._word_stride * offset, value)


class CacheHierarchy:
    """An L1 over an L2 over flat memory.

    Only geometric sanity is enforced (the L2 must be at least as large
    as the L1 and its blocks at least as big); replacement policies are
    per level.
    """

    def __init__(
        self,
        l1_geometry: CacheGeometry,
        l2_geometry: CacheGeometry,
        memory: Optional[FunctionalMemory] = None,
        l1_replacement: str = "lru",
        l2_replacement: str = "lru",
    ) -> None:
        if l2_geometry.size_bytes < l1_geometry.size_bytes:
            raise ConfigurationError(
                "L2 must be at least as large as L1: "
                f"{l2_geometry.size_bytes} < {l1_geometry.size_bytes}"
            )
        if l2_geometry.block_bytes < l1_geometry.block_bytes:
            raise ConfigurationError(
                "L2 blocks must be at least as large as L1 blocks"
            )
        self.memory = memory if memory is not None else FunctionalMemory()
        self.l2 = SetAssociativeCache(
            l2_geometry, self.memory, replacement=l2_replacement
        )
        self._l2_adapter = CacheBackedMemory(self.l2)
        self.l1 = SetAssociativeCache(
            l1_geometry, self._l2_adapter, replacement=l1_replacement
        )

    @property
    def l1_to_l2_transfers(self) -> int:
        """Block fills + write-backs the L1 pushed at the L2."""
        return self._l2_adapter.block_reads + self._l2_adapter.block_writes

    def drain(self) -> None:
        """Flush both levels so ``memory`` holds the architectural state."""
        self.l1.flush_all_dirty()
        self.l2.flush_all_dirty()

    def describe(self) -> str:
        return (
            f"L1 {self.l1.geometry.describe()} + "
            f"L2 {self.l2.geometry.describe()}"
        )
