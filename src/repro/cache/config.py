"""Cache geometry configuration.

The paper's baseline is a 64 KB, 4-way, 32 B-block L1 data cache with
LRU replacement and 48-bit physical addresses (Section 5.1 and 5.4);
sensitivity studies use 32 KB/64 B (Figure 10) and 32 KB & 128 KB with
32 B blocks (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import NamedTuple

from repro.errors import ConfigurationError
from repro.trace.record import WORD_BYTES
from repro.utils.bitops import is_power_of_two, log2_exact

__all__ = ["AddressCodec", "CacheGeometry", "BASELINE_GEOMETRY"]


class AddressCodec(NamedTuple):
    """Shift/mask constants for splitting a byte address in one pass.

    The batched execution engine decodes whole trace chunks with these
    (``repro.engine.batch``), so they are computed once per geometry and
    cached on the :class:`CacheGeometry` instance.  The decomposition is
    exactly :class:`repro.cache.address.AddressMapper`'s::

        set_index   = (address >> index_shift) & index_mask
        tag         = (address >> tag_shift) & tag_mask
        word_offset = (address & offset_mask) >> word_shift
    """

    index_shift: int
    index_mask: int
    tag_shift: int
    tag_mask: int
    offset_mask: int
    word_shift: int
    words_per_block: int


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/block-size triple plus derived parameters.

    Attributes:
        size_bytes: total data capacity.
        associativity: ways per set.
        block_bytes: cache block (line) size.
        address_bits: physical address width (paper assumes 48).
    """

    size_bytes: int
    associativity: int
    block_bytes: int
    address_bits: int = 48

    def __post_init__(self) -> None:
        for name in ("size_bytes", "associativity", "block_bytes"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"{name} must be a positive power of two, got {value!r}"
                )
        if self.block_bytes < WORD_BYTES:
            raise ConfigurationError(
                f"block_bytes must be at least the word size "
                f"({WORD_BYTES} B), got {self.block_bytes}"
            )
        if self.address_bits <= 0:
            raise ConfigurationError(
                f"address_bits must be positive, got {self.address_bits}"
            )
        if self.size_bytes < self.block_bytes * self.associativity:
            raise ConfigurationError(
                "cache must hold at least one set: size_bytes "
                f"{self.size_bytes} < block_bytes*associativity "
                f"{self.block_bytes * self.associativity}"
            )
        if self.offset_bits + self.index_bits >= self.address_bits:
            raise ConfigurationError(
                "address_bits too small: no bits left for the tag"
            )

    # -- derived address decomposition --------------------------------------

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity

    @property
    def words_per_block(self) -> int:
        return self.block_bytes // WORD_BYTES

    @property
    def words_per_set(self) -> int:
        return self.words_per_block * self.associativity

    @property
    def set_bytes(self) -> int:
        """Bytes held by one set — the Set-Buffer capacity (Section 5.4)."""
        return self.block_bytes * self.associativity

    @property
    def offset_bits(self) -> int:
        return log2_exact(self.block_bytes)

    @property
    def index_bits(self) -> int:
        return log2_exact(self.num_sets)

    @property
    def tag_bits(self) -> int:
        return self.address_bits - self.index_bits - self.offset_bits

    @cached_property
    def codec(self) -> AddressCodec:
        """Shift/mask constants for batched address decoding.

        Cached per geometry (the dataclass is frozen, so the derived
        bit layout never changes after construction); the batch decoder
        reads these once into locals before its inner loop.
        """
        return AddressCodec(
            index_shift=self.offset_bits,
            index_mask=self.num_sets - 1,
            tag_shift=self.offset_bits + self.index_bits,
            tag_mask=(1 << self.tag_bits) - 1,
            offset_mask=self.block_bytes - 1,
            word_shift=log2_exact(WORD_BYTES),
            words_per_block=self.words_per_block,
        )

    def describe(self) -> str:
        """Compact human-readable label, e.g. ``64KB/4-way/32B``."""
        if self.size_bytes >= 1024:
            size = f"{self.size_bytes // 1024}KB"
        else:
            size = f"{self.size_bytes}B"
        return f"{size}/{self.associativity}-way/{self.block_bytes}B"


BASELINE_GEOMETRY = CacheGeometry(
    size_bytes=64 * 1024, associativity=4, block_bytes=32
)
"""The paper's baseline L1-D geometry (Section 5.1)."""
