"""Replacement policies.

The paper uses LRU; FIFO, Random and tree-PLRU are provided for
sensitivity studies (replacement choice barely moves the WG/WG+RB
numbers, which the ablation benchmark demonstrates).

Each policy instance manages *one* set.  The protocol is:

* :meth:`on_access` — called on every hit or post-fill touch of a way;
* :meth:`victim` — called when a fill needs a way; invalid ways are
  chosen by the caller before the policy is consulted.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional

from repro.utils.rng import DeterministicRNG
from repro.utils.validation import check_positive
from repro.errors import ValidationError

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
    "make_policy",
]


class ReplacementPolicy(abc.ABC):
    """Per-set replacement state machine."""

    def __init__(self, associativity: int) -> None:
        check_positive("associativity", associativity)
        self.associativity = associativity

    @abc.abstractmethod
    def on_access(self, way: int) -> None:
        """Record a reference to ``way``."""

    @abc.abstractmethod
    def victim(self) -> int:
        """Choose the way to evict (all ways valid)."""

    def on_fill(self, way: int) -> None:
        """Record that ``way`` was just filled (defaults to an access)."""
        self.on_access(way)

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.associativity:
            raise ValidationError(
                f"way {way} out of range [0, {self.associativity})"
            )


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used (the paper's policy)."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        # Recency order: index 0 is LRU, last is MRU.
        self._order: List[int] = list(range(associativity))

    def on_access(self, way: int) -> None:
        self._check_way(way)
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]

    def recency_order(self) -> List[int]:
        """Current LRU→MRU order (exposed for tests)."""
        return list(self._order)


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: eviction order equals fill order."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._queue: List[int] = list(range(associativity))

    def on_access(self, way: int) -> None:
        self._check_way(way)  # hits do not update FIFO state

    def on_fill(self, way: int) -> None:
        self._check_way(way)
        if way in self._queue:
            self._queue.remove(way)
        self._queue.append(way)

    def victim(self) -> int:
        return self._queue[0]


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim from a deterministic stream."""

    def __init__(self, associativity: int, rng: Optional[DeterministicRNG] = None) -> None:
        super().__init__(associativity)
        self._rng = rng if rng is not None else DeterministicRNG(0)

    def on_access(self, way: int) -> None:
        self._check_way(way)

    def victim(self) -> int:
        return self._rng.randint(0, self.associativity - 1)


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU over a power-of-two number of ways."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        if associativity & (associativity - 1):
            raise ValidationError(
                f"tree-PLRU requires power-of-two associativity, got {associativity}"
            )
        # One bit per internal node of a complete binary tree; bit 0 means
        # "LRU side is the left subtree".
        self._bits: List[int] = [0] * max(associativity - 1, 1)

    def on_access(self, way: int) -> None:
        self._check_way(way)
        if self.associativity == 1:
            return
        node = 0
        low, high = 0, self.associativity
        while high - low > 1:
            mid = (low + high) // 2
            went_right = way >= mid
            # Point the bit away from the accessed side.
            self._bits[node] = 0 if went_right else 1
            node = 2 * node + (2 if went_right else 1)
            if went_right:
                low = mid
            else:
                high = mid

    def victim(self) -> int:
        if self.associativity == 1:
            return 0
        node = 0
        low, high = 0, self.associativity
        while high - low > 1:
            mid = (low + high) // 2
            go_right = self._bits[node] == 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                low = mid
            else:
                high = mid
        return low


PolicyFactory = Callable[[int], ReplacementPolicy]

_POLICIES: Dict[str, PolicyFactory] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "plru": TreePLRUPolicy,
}


def make_policy(name: str, associativity: int) -> ReplacementPolicy:
    """Build a replacement policy by name (``lru``/``fifo``/``random``/``plru``)."""
    try:
        factory = _POLICIES[name.lower()]
    except KeyError:
        raise ValidationError(
            f"unknown replacement policy {name!r}; "
            f"known: {sorted(_POLICIES)}"
        ) from None
    return factory(associativity)
