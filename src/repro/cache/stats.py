"""Cache hit/miss bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Elementwise sum (used when aggregating campaign runs)."""
        return CacheStats(
            read_hits=self.read_hits + other.read_hits,
            read_misses=self.read_misses + other.read_misses,
            write_hits=self.write_hits + other.write_hits,
            write_misses=self.write_misses + other.write_misses,
            evictions=self.evictions + other.evictions,
            dirty_evictions=self.dirty_evictions + other.dirty_evictions,
        )
