"""One cache set: ways plus replacement state."""

from __future__ import annotations

from typing import List, Optional

from repro.cache.block import CacheBlock
from repro.cache.replacement import ReplacementPolicy
from repro.errors import ValidationError

__all__ = ["CacheSet"]


class CacheSet:
    """A group of ways sharing one index, managed by a replacement policy."""

    __slots__ = ("ways", "policy")

    def __init__(
        self, associativity: int, words_per_block: int, policy: ReplacementPolicy
    ) -> None:
        if policy.associativity != associativity:
            raise ValidationError(
                f"policy built for {policy.associativity} ways, set has "
                f"{associativity}"
            )
        self.ways: List[CacheBlock] = [
            CacheBlock(words_per_block) for _ in range(associativity)
        ]
        self.policy = policy

    def find_way(self, tag: int) -> Optional[int]:
        """Way index holding ``tag``, or None on miss."""
        for way_index, block in enumerate(self.ways):
            if block.matches(tag):
                return way_index
        return None

    def find_invalid_way(self) -> Optional[int]:
        """First invalid way, or None when the set is full."""
        for way_index, block in enumerate(self.ways):
            if not block.valid:
                return way_index
        return None

    def choose_fill_way(self) -> int:
        """Way to fill: an invalid way if any, else the policy's victim."""
        invalid = self.find_invalid_way()
        if invalid is not None:
            return invalid
        return self.policy.victim()

    def touch(self, way: int) -> None:
        """Record a hit on ``way``."""
        self.policy.on_access(way)

    def record_fill(self, way: int) -> None:
        """Record that ``way`` was just filled."""
        self.policy.on_fill(way)

    def valid_tags(self) -> List[Optional[int]]:
        """Tags currently resident (None for invalid ways).

        The controller's Tag-Buffer snapshots these on a Set-Buffer fill.
        """
        return [block.tag if block.valid else None for block in self.ways]
