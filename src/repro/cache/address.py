"""Byte-address decomposition into tag / set index / offsets."""

from __future__ import annotations

from repro.cache.config import CacheGeometry
from repro.trace.record import WORD_BYTES
from repro.utils.bitops import extract_bits
from repro.errors import ValidationError

__all__ = ["AddressMapper"]


class AddressMapper:
    """Decomposes byte addresses for a given :class:`CacheGeometry`.

    The decomposition is the textbook one: low ``offset_bits`` select the
    byte within the block, the next ``index_bits`` select the set, the
    rest is the tag.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self._geometry = geometry
        self._offset_bits = geometry.offset_bits
        self._index_bits = geometry.index_bits
        self._tag_bits = geometry.tag_bits

    @property
    def geometry(self) -> CacheGeometry:
        return self._geometry

    def set_index(self, address: int) -> int:
        """Set selected by ``address``."""
        return extract_bits(address, self._offset_bits, self._index_bits)

    def tag(self, address: int) -> int:
        """Tag of ``address``."""
        return extract_bits(
            address, self._offset_bits + self._index_bits, self._tag_bits
        )

    def block_address(self, address: int) -> int:
        """Address of the first byte of the block containing ``address``."""
        return address & ~((1 << self._offset_bits) - 1)

    def word_offset(self, address: int) -> int:
        """Word position of ``address`` within its block."""
        return extract_bits(address, 0, self._offset_bits) // WORD_BYTES

    def compose(self, tag: int, set_index: int, word_offset: int = 0) -> int:
        """Rebuild a byte address from its components (inverse mapping)."""
        if not 0 <= set_index < self._geometry.num_sets:
            raise ValidationError(
                f"set_index {set_index} out of range "
                f"[0, {self._geometry.num_sets})"
            )
        if not 0 <= word_offset < self._geometry.words_per_block:
            raise ValidationError(
                f"word_offset {word_offset} out of range "
                f"[0, {self._geometry.words_per_block})"
            )
        return (
            (tag << (self._offset_bits + self._index_bits))
            | (set_index << self._offset_bits)
            | (word_offset * WORD_BYTES)
        )
