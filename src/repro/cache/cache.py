"""The set-associative, data-holding L1 cache model.

The cache owns block residency (lookups, fills, evictions, write-backs
to the next level) and the data words themselves.  It deliberately knows
nothing about 8T arrays or RMW: translating requests into SRAM array
operations is the job of the controllers in :mod:`repro.core`, which sit
on top of this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.address import AddressMapper
from repro.cache.cache_set import CacheSet
from repro.cache.config import CacheGeometry
from repro.cache.memory import FunctionalMemory
from repro.cache.replacement import make_policy
from repro.cache.stats import CacheStats
from repro.trace.record import MemoryAccess
from repro.utils.rng import DeterministicRNG

__all__ = ["SetAssociativeCache", "AccessResult"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of making one request resident in the cache.

    Attributes:
        hit: True when the block was already resident.
        set_index: set the request maps to.
        way: way holding the block after the call.
        word_offset: word position inside the block.
        filled: True when a fill from the next level happened.
        evicted_tag: tag of the victim block, when one was evicted.
        evicted_dirty: True when the victim was dirty (written back).
    """

    hit: bool
    set_index: int
    way: int
    word_offset: int
    filled: bool = False
    evicted_tag: Optional[int] = None
    evicted_dirty: bool = False


class SetAssociativeCache:
    """Value-accurate set-associative cache over a functional memory."""

    def __init__(
        self,
        geometry: CacheGeometry,
        memory: Optional[FunctionalMemory] = None,
        replacement: str = "lru",
        rng: Optional[DeterministicRNG] = None,
    ) -> None:
        self.geometry = geometry
        self.mapper = AddressMapper(geometry)
        self.memory = memory if memory is not None else FunctionalMemory()
        self.stats = CacheStats()
        self._replacement_name = replacement
        rng = rng if rng is not None else DeterministicRNG(0)
        self._sets: List[CacheSet] = []
        for set_index in range(geometry.num_sets):
            if replacement == "random":
                policy = make_policy(replacement, geometry.associativity)
                policy._rng = rng.fork("replacement", str(set_index))  # noqa: SLF001
            else:
                policy = make_policy(replacement, geometry.associativity)
            self._sets.append(
                CacheSet(geometry.associativity, geometry.words_per_block, policy)
            )

    # -- residency ----------------------------------------------------------

    def lookup(self, address: int) -> Optional[int]:
        """Way holding ``address``, or None on miss.  No side effects."""
        set_index = self.mapper.set_index(address)
        return self._sets[set_index].find_way(self.mapper.tag(address))

    def ensure_resident(self, access: MemoryAccess) -> AccessResult:
        """Make the block of ``access`` resident, filling on a miss.

        Updates hit/miss statistics and the replacement state.  Dirty
        victims are written back to the next level.
        """
        address = access.address
        set_index = self.mapper.set_index(address)
        tag = self.mapper.tag(address)
        word_offset = self.mapper.word_offset(address)
        cache_set = self._sets[set_index]

        way = cache_set.find_way(tag)
        if way is not None:
            self._record_hit(access)
            cache_set.touch(way)
            return AccessResult(
                hit=True, set_index=set_index, way=way, word_offset=word_offset
            )

        self._record_miss(access)
        way = cache_set.choose_fill_way()
        victim = cache_set.ways[way]
        evicted_tag: Optional[int] = None
        evicted_dirty = False
        if victim.valid:
            evicted_tag = victim.tag
            evicted_dirty = victim.dirty
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
                victim_address = self.mapper.compose(victim.tag, set_index)
                self.memory.write_block(victim_address, victim.data)

        block_address = self.mapper.block_address(address)
        fill_data = self.memory.read_block(
            block_address, self.geometry.words_per_block
        )
        victim.fill(tag, fill_data)
        cache_set.record_fill(way)
        return AccessResult(
            hit=False,
            set_index=set_index,
            way=way,
            word_offset=word_offset,
            filled=True,
            evicted_tag=evicted_tag,
            evicted_dirty=evicted_dirty,
        )

    def _record_hit(self, access: MemoryAccess) -> None:
        if access.is_read:
            self.stats.read_hits += 1
        else:
            self.stats.write_hits += 1

    def _record_miss(self, access: MemoryAccess) -> None:
        if access.is_read:
            self.stats.read_misses += 1
        else:
            self.stats.write_misses += 1

    # -- data plane ----------------------------------------------------------

    def read_word(self, set_index: int, way: int, word_offset: int) -> int:
        """Read a word from a resident block."""
        return self._sets[set_index].ways[way].read_word(word_offset)

    def write_word(
        self, set_index: int, way: int, word_offset: int, value: int
    ) -> None:
        """Write a word into a resident block (marks it dirty)."""
        self._sets[set_index].ways[way].write_word(word_offset, value)

    def read_set_data(self, set_index: int) -> List[List[int]]:
        """Copy of every way's data words — the Set-Buffer fill (read row)."""
        return [list(block.data) for block in self._sets[set_index].ways]

    def set_tags(self, set_index: int) -> List[Optional[int]]:
        """Tags resident in a set (None for invalid ways) — Tag-Buffer fill."""
        return self._sets[set_index].valid_tags()

    def flush_all_dirty(self) -> int:
        """Write every dirty block to memory (end-of-run drain for oracles).

        Returns the number of blocks written back.
        """
        written = 0
        for set_index, cache_set in enumerate(self._sets):
            for block in cache_set.ways:
                if block.valid and block.dirty:
                    address = self.mapper.compose(block.tag, set_index)
                    self.memory.write_block(address, block.data)
                    block.dirty = False
                    written += 1
        return written

    @property
    def replacement_name(self) -> str:
        return self._replacement_name
