"""The set-associative, data-holding L1 cache model.

The cache owns block residency (lookups, fills, evictions, write-backs
to the next level) and the data words themselves.  It deliberately knows
nothing about 8T arrays or RMW: translating requests into SRAM array
operations is the job of the controllers in :mod:`repro.core`, which sit
on top of this model.

Storage layout
--------------
Residency state lives in flat per-set arrays rather than per-block
objects — this is the hot data structure of the whole simulator, and
slot arrays keep the inner loops on C-level list primitives:

* ``_tags[set]``  — one int per way; ``-1`` marks an invalid way (real
  tags are non-negative, so ``list.index`` doubles as the lookup);
* ``_dirty[set]`` — one bool per way;
* ``_data[set]``  — the set's words, flat: ``way * words_per_block +
  word_offset``;
* ``_stamps[set]`` / ``_tick`` — monotonic last-touch stamps for LRU
  (victim = argmin stamp; ``victim()`` is only consulted once every way
  is valid, i.e. stamped, so this matches the list-based LRU exactly).

Non-LRU policies (fifo/random/plru) keep per-set policy objects; the
batched engine fast paths require stamp-LRU and check
:attr:`engine_fast_ok` before engaging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.address import AddressMapper
from repro.cache.config import CacheGeometry
from repro.cache.memory import FunctionalMemory
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats
from repro.trace.record import MemoryAccess
from repro.utils.rng import DeterministicRNG
from repro.errors import ValidationError

__all__ = ["SetAssociativeCache", "AccessResult"]

#: Invalid-way sentinel in the tag slots.  Tags are masked to
#: ``tag_bits`` bits and therefore never negative.
_NO_TAG = -1


@dataclass(frozen=True)
class AccessResult:
    """Outcome of making one request resident in the cache.

    Attributes:
        hit: True when the block was already resident.
        set_index: set the request maps to.
        way: way holding the block after the call.
        word_offset: word position inside the block.
        filled: True when a fill from the next level happened.
        evicted_tag: tag of the victim block, when one was evicted.
        evicted_dirty: True when the victim was dirty (written back).
    """

    hit: bool
    set_index: int
    way: int
    word_offset: int
    filled: bool = False
    evicted_tag: Optional[int] = None
    evicted_dirty: bool = False


class SetAssociativeCache:
    """Value-accurate set-associative cache over a functional memory."""

    def __init__(
        self,
        geometry: CacheGeometry,
        memory: Optional[FunctionalMemory] = None,
        replacement: str = "lru",
        rng: Optional[DeterministicRNG] = None,
    ) -> None:
        self.geometry = geometry
        self.mapper = AddressMapper(geometry)
        self.memory = memory if memory is not None else FunctionalMemory()
        self.stats = CacheStats()
        self._replacement_name = replacement
        rng = rng if rng is not None else DeterministicRNG(0)

        ways = geometry.associativity
        wpb = geometry.words_per_block
        num_sets = geometry.num_sets
        self._ways = ways
        self._wpb = wpb
        self._codec = geometry.codec
        self._tags: List[List[int]] = [[_NO_TAG] * ways for _ in range(num_sets)]
        self._dirty: List[List[bool]] = [[False] * ways for _ in range(num_sets)]
        self._data: List[List[int]] = [[0] * (ways * wpb) for _ in range(num_sets)]
        self._stamps: List[List[int]] = [[0] * ways for _ in range(num_sets)]
        self._tick = 1

        self._policies: Optional[List[ReplacementPolicy]]
        if replacement.lower() == "lru":
            # LRU is modelled by the stamps alone; no policy objects.
            self._policies = None
        else:
            self._policies = []
            for set_index in range(num_sets):
                policy = make_policy(replacement, ways)
                if replacement == "random":
                    policy._rng = rng.fork("replacement", str(set_index))  # noqa: SLF001
                self._policies.append(policy)

    # -- engine contract ----------------------------------------------------

    @property
    def engine_fast_ok(self) -> bool:
        """True when batched fast paths may drive the slot arrays directly.

        Fast paths replicate stamp-LRU inline; any other replacement
        policy forces the scalar path (which goes through the policy
        objects).
        """
        return self._policies is None

    # -- residency ----------------------------------------------------------

    def lookup(self, address: int) -> Optional[int]:
        """Way holding ``address``, or None on miss.  No side effects."""
        codec = self._codec
        set_index = (address >> codec.index_shift) & codec.index_mask
        tag = (address >> codec.tag_shift) & codec.tag_mask
        try:
            return self._tags[set_index].index(tag)
        except ValueError:
            return None

    def ensure_resident(self, access: MemoryAccess) -> AccessResult:
        """Make the block of ``access`` resident, filling on a miss.

        Updates hit/miss statistics and the replacement state.  Dirty
        victims are written back to the next level.
        """
        address = access.address
        codec = self._codec
        set_index = (address >> codec.index_shift) & codec.index_mask
        tag = (address >> codec.tag_shift) & codec.tag_mask
        word_offset = (address & codec.offset_mask) >> codec.word_shift
        stats = self.stats

        tags = self._tags[set_index]
        try:
            way = tags.index(tag)
        except ValueError:
            way = None
        if way is not None:
            if access.is_read:
                stats.read_hits += 1
            else:
                stats.write_hits += 1
            self._touch(set_index, way)
            return AccessResult(
                hit=True, set_index=set_index, way=way, word_offset=word_offset
            )

        way, evicted_tag, evicted_dirty = self._fill(
            set_index, tag, address, access.is_read
        )
        return AccessResult(
            hit=False,
            set_index=set_index,
            way=way,
            word_offset=word_offset,
            filled=True,
            evicted_tag=evicted_tag,
            evicted_dirty=evicted_dirty,
        )

    def _fill(
        self, set_index: int, tag: int, address: int, is_read: bool
    ):
        """Miss half of :meth:`ensure_resident`, shared with the batched
        engine fast paths (which probe the tag slots themselves and call
        this only on a verified miss).

        Records miss statistics, evicts the victim (writing a dirty one
        back), fills from the next level and stamps the way.  Returns
        ``(way, evicted_tag, evicted_dirty)``.
        """
        stats = self.stats
        if is_read:
            stats.read_misses += 1
        else:
            stats.write_misses += 1
        way = self._choose_fill_way(set_index)
        tags = self._tags[set_index]
        victim_tag = tags[way]
        evicted_tag: Optional[int] = None
        evicted_dirty = False
        wpb = self._wpb
        data = self._data[set_index]
        base = way * wpb
        if victim_tag != _NO_TAG:
            evicted_tag = victim_tag
            evicted_dirty = self._dirty[set_index][way]
            stats.evictions += 1
            if evicted_dirty:
                stats.dirty_evictions += 1
                victim_address = self.mapper.compose(victim_tag, set_index)
                self.memory.write_block(victim_address, data[base : base + wpb])

        block_address = self.mapper.block_address(address)
        fill_data = self.memory.read_block(block_address, wpb)
        data[base : base + wpb] = fill_data
        tags[way] = tag
        self._dirty[set_index][way] = False
        self._record_fill(set_index, way)
        return way, evicted_tag, evicted_dirty

    # -- replacement plumbing -----------------------------------------------

    def _touch(self, set_index: int, way: int) -> None:
        if self._policies is None:
            self._stamps[set_index][way] = self._tick
            self._tick += 1
        else:
            self._policies[set_index].on_access(way)

    def _record_fill(self, set_index: int, way: int) -> None:
        if self._policies is None:
            self._stamps[set_index][way] = self._tick
            self._tick += 1
        else:
            self._policies[set_index].on_fill(way)

    def _choose_fill_way(self, set_index: int) -> int:
        tags = self._tags[set_index]
        try:
            return tags.index(_NO_TAG)
        except ValueError:
            pass
        if self._policies is None:
            stamps = self._stamps[set_index]
            return stamps.index(min(stamps))
        return self._policies[set_index].victim()

    # -- data plane ----------------------------------------------------------

    def read_word(self, set_index: int, way: int, word_offset: int) -> int:
        """Read a word from a resident block."""
        if self._tags[set_index][way] == _NO_TAG:
            raise ValidationError("read from an invalid block")
        return self._data[set_index][way * self._wpb + word_offset]

    def write_word(
        self, set_index: int, way: int, word_offset: int, value: int
    ) -> None:
        """Write a word into a resident block (marks it dirty)."""
        if self._tags[set_index][way] == _NO_TAG:
            raise ValidationError("write to an invalid block")
        self._data[set_index][way * self._wpb + word_offset] = value
        self._dirty[set_index][way] = True

    def read_set_data(self, set_index: int) -> List[List[int]]:
        """Copy of every way's data words — the Set-Buffer fill (read row)."""
        data = self._data[set_index]
        wpb = self._wpb
        return [
            data[way * wpb : (way + 1) * wpb] for way in range(self._ways)
        ]

    def set_tags(self, set_index: int) -> List[Optional[int]]:
        """Tags resident in a set (None for invalid ways) — Tag-Buffer fill."""
        return [
            tag if tag != _NO_TAG else None for tag in self._tags[set_index]
        ]

    def flush_all_dirty(self) -> int:
        """Write every dirty block to memory (end-of-run drain for oracles).

        Returns the number of blocks written back.
        """
        written = 0
        wpb = self._wpb
        for set_index in range(self.geometry.num_sets):
            tags = self._tags[set_index]
            dirty = self._dirty[set_index]
            data = self._data[set_index]
            for way in range(self._ways):
                if tags[way] != _NO_TAG and dirty[way]:
                    address = self.mapper.compose(tags[way], set_index)
                    base = way * wpb
                    self.memory.write_block(address, data[base : base + wpb])
                    dirty[way] = False
                    written += 1
        return written

    # -- debug-mode structural audit -----------------------------------------

    def check_invariants(self) -> None:
        """Audit the slot arrays; raises :class:`InvariantViolation`.

        Part of the correctness tooling (see ``docs/correctness.md``):
        the inline invariant checker calls this after every access when
        a controller runs with ``enable_invariant_checks()``.  Checks
        are read-only and cover tag uniqueness and range, dirty bits
        only on valid ways, and stamp-LRU consistency (valid ways carry
        distinct stamps strictly below the tick; never-filled ways stay
        at stamp 0).
        """
        from repro.errors import InvariantViolation

        tag_limit = 1 << self.geometry.tag_bits
        check_stamps = self._policies is None
        for set_index in range(self.geometry.num_sets):
            tags = self._tags[set_index]
            dirty = self._dirty[set_index]
            valid_tags = [tag for tag in tags if tag != _NO_TAG]
            if len(valid_tags) != len(set(valid_tags)):
                raise InvariantViolation(
                    f"set {set_index}: duplicate tag among ways {tags}"
                )
            for way, tag in enumerate(tags):
                if tag != _NO_TAG and not 0 <= tag < tag_limit:
                    raise InvariantViolation(
                        f"set {set_index} way {way}: tag {tag:#x} outside "
                        f"the {self.geometry.tag_bits}-bit tag space"
                    )
                if dirty[way] and tag == _NO_TAG:
                    raise InvariantViolation(
                        f"set {set_index} way {way}: dirty but invalid"
                    )
            if len(self._data[set_index]) != self._ways * self._wpb:
                raise InvariantViolation(
                    f"set {set_index}: data slot length "
                    f"{len(self._data[set_index])} != ways*words "
                    f"{self._ways * self._wpb}"
                )
            if check_stamps:
                stamps = self._stamps[set_index]
                valid_stamps = [
                    stamps[way]
                    for way, tag in enumerate(tags)
                    if tag != _NO_TAG
                ]
                if any(
                    not 1 <= stamp < self._tick for stamp in valid_stamps
                ):
                    raise InvariantViolation(
                        f"set {set_index}: valid-way stamp outside "
                        f"[1, {self._tick}): {stamps}"
                    )
                if len(valid_stamps) != len(set(valid_stamps)):
                    raise InvariantViolation(
                        f"set {set_index}: duplicate LRU stamps {stamps} "
                        "(victim choice would be ambiguous)"
                    )
                if any(
                    stamps[way] != 0
                    for way, tag in enumerate(tags)
                    if tag == _NO_TAG
                ):
                    raise InvariantViolation(
                        f"set {set_index}: never-filled way carries a "
                        f"nonzero stamp: {stamps}"
                    )

    @property
    def replacement_name(self) -> str:
        return self._replacement_name
