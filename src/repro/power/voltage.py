"""DVFS levels and the 6T-vs-8T Vmin story.

The paper's introduction: DVFS switches between predefined voltage
levels; the minimum level assuring correct operation (Vmin) is limited
by the cache's SRAM cells, and 6T read stability sets a high Vmin.  8T
cells decouple the read port and keep working far lower — Verma &
Chandrakasan demonstrate sub-threshold 8T operation.

``vmin_mv`` derives each cell's Vmin from the behavioural SNM curve in
:mod:`repro.sram.cell`; :class:`DVFSController` picks operating levels
subject to that floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.power.params import TechnologyParams
from repro.sram.cell import SNM_FAILURE_THRESHOLD_MV, read_snm_mv
from repro.errors import ValidationError

__all__ = ["vmin_mv", "DVFSLevel", "DVFSController"]

_VDD_SEARCH_FLOOR_MV = 300.0
_VDD_SEARCH_CEIL_MV = 1500.0
_SEARCH_STEP_MV = 5.0


def vmin_mv(cell_kind: str) -> float:
    """Lowest supply at which the cell's read SNM is still safe."""
    vdd = _VDD_SEARCH_FLOOR_MV
    while vdd <= _VDD_SEARCH_CEIL_MV:
        if read_snm_mv(cell_kind, vdd) >= SNM_FAILURE_THRESHOLD_MV:
            return vdd
        vdd += _SEARCH_STEP_MV
    raise ValidationError(f"{cell_kind} never reaches a safe read SNM")


@dataclass(frozen=True)
class DVFSLevel:
    """One operating point: supply and the frequency it supports.

    Frequency follows the classic alpha-power law approximation
    f ∝ (Vdd - Vth) ** 1.3 / Vdd.
    """

    vdd_mv: float
    frequency_ghz: float

    @property
    def relative_dynamic_power(self) -> float:
        """P ∝ f * Vdd^2, normalised to Vdd in volts."""
        vdd_v = self.vdd_mv / 1000.0
        return self.frequency_ghz * vdd_v * vdd_v


def _frequency_ghz(vdd_mv: float, vth_mv: float = 320.0) -> float:
    if vdd_mv <= vth_mv:
        return 0.05  # deep subthreshold: slow but alive
    return 3.0 * ((vdd_mv - vth_mv) / 1000.0) ** 1.3 / (vdd_mv / 1000.0)


class DVFSController:
    """Picks operating levels for a cache built from a given cell."""

    def __init__(self, technology: TechnologyParams, cell_kind: str) -> None:
        self.technology = technology
        self.cell_kind = cell_kind
        self.vmin_mv = vmin_mv(cell_kind)

    def available_levels(self) -> List[DVFSLevel]:
        """Technology levels at or above this cell's Vmin."""
        return [
            DVFSLevel(vdd_mv=level, frequency_ghz=_frequency_ghz(level))
            for level in sorted(self.technology.vdd_levels_mv, reverse=True)
            if level >= self.vmin_mv
        ]

    def lowest_level(self) -> DVFSLevel:
        """The deepest legal operating point — what the cache's Vmin buys."""
        levels = self.available_levels()
        if not levels:
            raise ValidationError(
                f"no DVFS level satisfies Vmin={self.vmin_mv} mV for "
                f"{self.cell_kind}"
            )
        return levels[-1]

    def power_at_lowest_vs(self, other: "DVFSController") -> Tuple[float, float]:
        """(self, other) relative dynamic power at each one's floor level."""
        return (
            self.lowest_level().relative_dynamic_power,
            other.lowest_level().relative_dynamic_power,
        )
