"""Analytic power, energy, leakage, area and voltage models.

The paper's Section 5.4 (area overhead) and Section 5.5 (expected power
and performance effects) are qualitative; this package makes them
quantitative with CACTI-flavoured analytic models:

``params``
    Technology presets (45/32 nm class constants) and per-event energy
    coefficients.
``energy``
    Dynamic energy of a run from its :class:`SRAMEventLog`.
``leakage``
    Static power of 6T vs 8T arrays vs supply voltage.
``area``
    Cell/array/buffer area — reproduces the Section 5.4 numbers
    (Set-Buffer < 0.2 % of the cache, Tag-Buffer < 150 bits).
``voltage``
    DVFS level table and the Vmin story that motivates 8T cells.
``estimator``
    The pluggable backend layer over all of the above: capability-
    queried dispatch (analytical vs characterised-library backends)
    with durable, code-versioned estimation records.  Analysis code
    consumes energy/area through an
    :class:`~repro.power.estimator.EstimatorRegistry` rather than
    instantiating the models directly.
"""

from repro.power.params import TechnologyParams, TECH_45NM, TECH_32NM
from repro.power.energy import EnergyBreakdown, EnergyModel
from repro.power.leakage import LeakageModel
from repro.power.area import AreaModel, AreaReport
from repro.power.voltage import DVFSLevel, DVFSController, vmin_mv
from repro.power.estimator import (
    ESTIMATOR_CHOICES,
    AccuracyEstimation,
    AnalyticalEstimator,
    Estimation,
    EstimationQuery,
    EstimationRecordCache,
    Estimator,
    EstimatorRegistry,
    LibraryEstimator,
    default_registry,
)

__all__ = [
    "TechnologyParams",
    "TECH_45NM",
    "TECH_32NM",
    "EnergyBreakdown",
    "EnergyModel",
    "LeakageModel",
    "AreaModel",
    "AreaReport",
    "DVFSLevel",
    "DVFSController",
    "vmin_mv",
    "ESTIMATOR_CHOICES",
    "AccuracyEstimation",
    "AnalyticalEstimator",
    "Estimation",
    "EstimationQuery",
    "EstimationRecordCache",
    "Estimator",
    "EstimatorRegistry",
    "LibraryEstimator",
    "default_registry",
]
