"""Estimation queries — the one value object every backend consumes.

An :class:`EstimationQuery` names *what* to estimate (``action``), for
*which* macro (cell kind, process node, cache geometry, supply), and —
for dynamic energy — the circuit-event counts of the run being priced.
It is frozen and canonically serialisable, which buys three things:

* backends dispatch on a single structured value instead of positional
  argument soup (the Accelergy plug-in ``AccelergyQuery`` pattern);
* the query's :meth:`fingerprint` reuses the content-addressed key
  canonicalisation from :mod:`repro.store.keys`, so estimation records
  are cacheable under ``(backend, query, code-version)`` keys;
* two runs that ask the same physical question produce byte-identical
  keys, which is what makes the warm-run cache hit rate meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cache.config import CacheGeometry
from repro.errors import ValidationError
from repro.sram.events import SRAMEventLog
from repro.store.keys import digest

__all__ = ["ACTIONS", "CELL_KINDS", "EstimationQuery"]

#: The estimation actions the protocol defines.  ``dynamic_energy`` and
#: ``leakage_power`` are served by ``estimate_energy``; ``area`` by
#: ``estimate_area``.
ACTIONS = ("dynamic_energy", "leakage_power", "area")

#: Cell technologies a query may name.  ``9T`` is the near-threshold
#: cell from PAPERS.md's 256 kb 9T SRAM; only table-driven backends
#: characterise it.
CELL_KINDS = ("6T", "8T", "9T")


@dataclass(frozen=True)
class EstimationQuery:
    """One estimation request.

    Attributes:
        action: one of :data:`ACTIONS`.
        cell_kind: one of :data:`CELL_KINDS`.
        node_nm: process node (feature size in nm).
        geometry: the cache whose macro is being estimated.
        vdd_mv: supply voltage; ``None`` means the backend's nominal
            supply for the node.  Required for ``leakage_power``.
        events: circuit-event counts as a sorted ``(name, count)``
            tuple (see :meth:`dynamic_energy`).  Required for
            ``dynamic_energy``, meaningless otherwise.
    """

    action: str
    cell_kind: str
    node_nm: int
    geometry: CacheGeometry
    vdd_mv: Optional[float] = None
    events: Optional[Tuple[Tuple[str, int], ...]] = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValidationError(
                f"unknown estimation action {self.action!r}; "
                f"known: {list(ACTIONS)}"
            )
        if self.cell_kind not in CELL_KINDS:
            raise ValidationError(
                f"unknown cell kind {self.cell_kind!r}; "
                f"known: {list(CELL_KINDS)}"
            )
        if self.node_nm <= 0:
            raise ValidationError(
                f"node_nm must be positive, got {self.node_nm}"
            )
        if self.vdd_mv is not None and self.vdd_mv <= 0:
            raise ValidationError(
                f"vdd_mv must be positive, got {self.vdd_mv}"
            )
        if self.action == "dynamic_energy" and self.events is None:
            raise ValidationError(
                "a dynamic_energy query needs the run's event counts; "
                "build it with EstimationQuery.dynamic_energy(...)"
            )
        if self.action == "leakage_power" and self.vdd_mv is None:
            raise ValidationError(
                "a leakage_power query needs an explicit vdd_mv "
                "(leakage is priced at a specific operating point)"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def dynamic_energy(
        cls,
        events: SRAMEventLog,
        geometry: CacheGeometry,
        cell_kind: str = "8T",
        node_nm: int = 45,
        vdd_mv: Optional[float] = None,
    ) -> "EstimationQuery":
        """Price the dynamic energy of one run's event log."""
        counts = tuple(sorted(events.to_dict().items()))
        return cls(
            action="dynamic_energy",
            cell_kind=cell_kind,
            node_nm=node_nm,
            geometry=geometry,
            vdd_mv=vdd_mv,
            events=counts,
        )

    @classmethod
    def leakage_power(
        cls,
        geometry: CacheGeometry,
        vdd_mv: float,
        cell_kind: str = "8T",
        node_nm: int = 45,
    ) -> "EstimationQuery":
        """Price the whole-array leakage power at one operating point."""
        return cls(
            action="leakage_power",
            cell_kind=cell_kind,
            node_nm=node_nm,
            geometry=geometry,
            vdd_mv=vdd_mv,
        )

    @classmethod
    def area(
        cls,
        geometry: CacheGeometry,
        cell_kind: str = "8T",
        node_nm: int = 45,
    ) -> "EstimationQuery":
        """Macro and buffer area for one cache geometry."""
        return cls(
            action="area",
            cell_kind=cell_kind,
            node_nm=node_nm,
            geometry=geometry,
        )

    # -- derived views -------------------------------------------------------

    def event_log(self) -> SRAMEventLog:
        """Rebuild the event log a ``dynamic_energy`` query carries."""
        if self.events is None:
            raise ValidationError(
                f"a {self.action!r} query carries no event counts"
            )
        return SRAMEventLog(**dict(self.events))

    def payload(self) -> Dict[str, object]:
        """The canonical dictionary form everything downstream digests."""
        return {
            "action": self.action,
            "cell": self.cell_kind,
            "node": self.node_nm,
            "vdd": self.vdd_mv,
            "geometry": {
                "size_bytes": self.geometry.size_bytes,
                "associativity": self.geometry.associativity,
                "block_bytes": self.geometry.block_bytes,
                "address_bits": self.geometry.address_bits,
            },
            "events": (
                dict(self.events) if self.events is not None else None
            ),
        }

    def fingerprint(self) -> str:
        """Content digest of the query (full sha256 hex)."""
        return digest(self.payload())

    def describe(self) -> str:
        """Compact label, e.g. ``dynamic_energy 8T@45nm 64KB/4-way/32B``."""
        vdd = f" @{self.vdd_mv:g}mV" if self.vdd_mv is not None else ""
        return (
            f"{self.action} {self.cell_kind}@{self.node_nm}nm "
            f"{self.geometry.describe()}{vdd}"
        )
