"""Capability-queried dispatch across estimator backends.

The registry is the one object consumers talk to.  Each query is
offered to every registered backend via ``supports()``; the backend
declaring the highest :class:`AccuracyEstimation` wins (ties break by
registration order, so the default ordering makes a deliberate
statement: the characterised library outranks the analytic
coefficients wherever both apply).  A caller — or the CLI's
``--estimator`` flag — can force a specific backend instead, which
turns "would silently fall back" into a loud :class:`ValidationError`.

Estimates are served cache-first when an
:class:`~repro.power.estimator.records.EstimationRecordCache` is
attached: the record key binds backend id, query fingerprint, and the
estimator code version, so a warm cache answers repeat queries with
zero backend calls (``backend_calls`` stays flat — the acceptance
test's lever) and any power-model edit structurally misses.

Telemetry: ``estimator.dispatch`` counts routed queries,
``estimator.cache.hit``/``estimator.cache.miss`` count cache outcomes.
All three are declared in ``repro/obs/names.py``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from repro.errors import ValidationError
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.power.estimator.analytical import AnalyticalEstimator
from repro.power.estimator.library import LibraryEstimator
from repro.power.estimator.protocol import (
    AccuracyEstimation,
    Estimation,
    Estimator,
)
from repro.power.estimator.query import EstimationQuery
from repro.power.estimator.records import EstimationRecordCache, record_key

__all__ = [
    "ESTIMATOR_CHOICES",
    "EstimatorRegistry",
    "default_registry",
]

#: CLI-facing backend spec values: "auto" routes by accuracy, the rest
#: force one backend.
ESTIMATOR_CHOICES = ("auto", "analytical", "library")


class EstimatorRegistry:
    """Ordered backend set with accuracy-based dispatch and caching."""

    def __init__(
        self,
        backends: Optional[Iterable[Estimator]] = None,
        cache: Optional[EstimationRecordCache] = None,
        telemetry: Optional[Telemetry] = None,
        forced_backend: Optional[str] = None,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cache = cache
        #: Calls that actually reached a backend's estimate method,
        #: per backend id.  A fully warm cache keeps these flat.
        self.backend_calls: Dict[str, int] = {}
        self._backends: Dict[str, Estimator] = {}
        for backend in backends or ():
            self.register(backend)
        if forced_backend is not None and forced_backend != "auto":
            if forced_backend not in self._backends:
                raise ValidationError(
                    f"forced estimator backend {forced_backend!r} is not "
                    f"registered; have {sorted(self._backends)}"
                )
            self.forced_backend: Optional[str] = forced_backend
        else:
            self.forced_backend = None

    # -- registration --------------------------------------------------------

    def register(self, backend: Estimator) -> None:
        backend_id = backend.backend_id
        if backend_id in self._backends:
            raise ValidationError(
                f"estimator backend {backend_id!r} is already registered"
            )
        self._backends[backend_id] = backend
        self.backend_calls[backend_id] = 0

    @property
    def backend_ids(self) -> Tuple[str, ...]:
        return tuple(self._backends)

    # -- dispatch ------------------------------------------------------------

    def select(
        self,
        query: EstimationQuery,
        backend_id: Optional[str] = None,
    ) -> Tuple[Estimator, AccuracyEstimation]:
        """The backend that will answer ``query`` and its accuracy.

        With ``backend_id`` (or a registry-level ``forced_backend``)
        the named backend must support the query; otherwise the
        highest-accuracy supporter wins, ties going to the earlier
        registration.
        """
        forced = backend_id if backend_id is not None else self.forced_backend
        if forced is not None:
            try:
                backend = self._backends[forced]
            except KeyError:
                raise ValidationError(
                    f"estimator backend {forced!r} is not registered; "
                    f"have {sorted(self._backends)}"
                ) from None
            accuracy = backend.supports(query)
            if not accuracy.supported:
                raise ValidationError(
                    f"backend {forced!r} does not support {query.describe()}"
                )
            return backend, accuracy
        best: Optional[Tuple[Estimator, AccuracyEstimation]] = None
        for backend in self._backends.values():
            accuracy = backend.supports(query)
            if not accuracy.supported:
                continue
            if best is None or accuracy > best[1]:
                best = (backend, accuracy)
        if best is None:
            raise ValidationError(
                f"no registered backend supports {query.describe()}; "
                f"registered: {sorted(self._backends)}"
            )
        return best

    def estimate(
        self,
        query: EstimationQuery,
        backend_id: Optional[str] = None,
    ) -> Estimation:
        """Route one query: select, consult the cache, fall to backend."""
        backend, _accuracy = self.select(query, backend_id=backend_id)
        if self.telemetry.enabled:
            self.telemetry.registry.inc("estimator.dispatch")
        key = meta = None
        if self.cache is not None:
            key, meta = record_key(backend.backend_id, query)
            cached = self.cache.get(key)
            if cached is not None:
                if self.telemetry.enabled:
                    self.telemetry.registry.inc("estimator.cache.hit")
                return cached
            if self.telemetry.enabled:
                self.telemetry.registry.inc("estimator.cache.miss")
        if query.action == "area":
            estimation = backend.estimate_area(query)
        else:
            estimation = backend.estimate_energy(query)
        self.backend_calls[backend.backend_id] += 1
        if self.cache is not None and key is not None and meta is not None:
            self.cache.put(key, meta, estimation)
        return estimation

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "backends": list(self._backends),
            "forced_backend": self.forced_backend,
            "backend_calls": dict(self.backend_calls),
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats()
        return payload


def default_registry(
    estimator: str = "auto",
    cache_path: Optional[Union[str, "EstimationRecordCache"]] = None,
    telemetry: Optional[Telemetry] = None,
) -> EstimatorRegistry:
    """The standard two-backend registry, CLI-spec flavoured.

    ``estimator`` is one of :data:`ESTIMATOR_CHOICES`; ``cache_path``
    may be a path (a cache is built over it) or an already-constructed
    :class:`EstimationRecordCache` to share between registries.
    """
    if estimator not in ESTIMATOR_CHOICES:
        raise ValidationError(
            f"unknown estimator spec {estimator!r}; "
            f"choose from {ESTIMATOR_CHOICES}"
        )
    cache: Optional[EstimationRecordCache]
    if cache_path is None:
        cache = None
    elif isinstance(cache_path, EstimationRecordCache):
        cache = cache_path
    else:
        cache = EstimationRecordCache(cache_path, telemetry=telemetry)
    return EstimatorRegistry(
        backends=(AnalyticalEstimator(), LibraryEstimator()),
        cache=cache,
        telemetry=telemetry,
        forced_backend=estimator,
    )
