"""The estimator protocol: capability query -> accuracy -> estimation.

Modelled on the Accelergy plug-in interface (see SNIPPETS.md's CACTI
wrapper): a backend first answers ``supports(query)`` with an
:class:`AccuracyEstimation` — ``0`` means "not my department", anything
positive is the backend's self-declared accuracy in percent — and the
registry dispatches each query to the highest-accuracy capable backend.
Estimates come back as :class:`Estimation` records: a flat mapping of
named values plus the accuracy and backend that produced them, which is
exactly the JSON-serialisable shape the estimation-record cache
persists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Protocol, runtime_checkable

from repro.errors import ValidationError

__all__ = ["AccuracyEstimation", "Estimation", "Estimator"]


@dataclass(frozen=True, order=True)
class AccuracyEstimation:
    """A backend's self-declared accuracy for one query, in percent.

    ``0`` means the query is unsupported.  Ordered so the registry can
    ``max()`` over capable backends.
    """

    percent: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.percent <= 100.0:
            raise ValidationError(
                f"accuracy must be in [0, 100], got {self.percent}"
            )

    @property
    def supported(self) -> bool:
        return self.percent > 0.0

    def __bool__(self) -> bool:
        return self.supported


#: Value keys produced per action, the contract between backends and
#: consumers (every backend must fill the full key set for an action).
ENERGY_KEYS = ("read_fj", "write_fj", "buffer_fj", "total_fj")
LEAKAGE_KEYS = ("power_uw",)
AREA_KEYS = (
    "cache_data_bits",
    "set_buffer_bits",
    "tag_buffer_bits",
    "tag_buffer_bits_with_state",
    "set_buffer_overhead",
    "tag_buffer_overhead",
    "cell_area_um2",
    "macro_area_mm2",
)


@dataclass(frozen=True)
class Estimation:
    """One estimation record: named values + provenance.

    Attributes:
        values: the estimated quantities (see the ``*_KEYS`` contracts).
        accuracy_pct: the producing backend's declared accuracy.
        backend: backend id, for provenance in reports and cache meta.
        cached: True when this record was served from the estimation
            cache rather than computed (set by the registry; not part
            of the persisted payload).
    """

    values: Mapping[str, float]
    accuracy_pct: float
    backend: str
    cached: bool = field(default=False, compare=False)

    def __getitem__(self, name: str) -> float:
        try:
            return self.values[name]
        except KeyError:
            raise ValidationError(
                f"estimation from {self.backend!r} has no value "
                f"{name!r}; known: {sorted(self.values)}"
            ) from None

    @property
    def total_fj(self) -> float:
        return self["total_fj"]

    def to_payload(self) -> Dict[str, object]:
        """The JSON shape the estimation-record cache persists."""
        return {
            "values": dict(self.values),
            "accuracy_pct": self.accuracy_pct,
            "backend": self.backend,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "Estimation":
        try:
            values = payload["values"]
            accuracy = payload["accuracy_pct"]
            backend = payload["backend"]
        except (KeyError, TypeError):
            raise ValidationError(
                f"malformed estimation payload: {payload!r}"
            ) from None
        if not isinstance(values, dict) or not isinstance(backend, str):
            raise ValidationError(
                f"malformed estimation payload: {payload!r}"
            )
        return cls(
            values={str(k): float(v) for k, v in values.items()},
            accuracy_pct=float(accuracy),  # type: ignore[arg-type]
            backend=backend,
        )

    def as_cached(self) -> "Estimation":
        """Copy of this record flagged as cache-served."""
        return Estimation(
            values=self.values,
            accuracy_pct=self.accuracy_pct,
            backend=self.backend,
            cached=True,
        )


@runtime_checkable
class Estimator(Protocol):
    """What every energy/area backend implements.

    ``supports`` is the capability query — it must be cheap, pure, and
    never raise for a well-formed query.  ``estimate_energy`` serves
    ``dynamic_energy`` and ``leakage_power`` actions; ``estimate_area``
    serves ``area``.  Backends may assume the registry only routes them
    queries they declared support for.
    """

    backend_id: str

    def supports(self, query) -> AccuracyEstimation:
        """Accuracy for this query; 0 when unsupported."""
        ...

    def estimate_energy(self, query) -> Estimation:
        """Serve a dynamic_energy or leakage_power query."""
        ...

    def estimate_area(self, query) -> Estimation:
        """Serve an area query."""
        ...
