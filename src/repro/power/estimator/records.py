"""Durable estimation-record cache.

The Accelergy CACTI plug-in memoizes ``self.records`` keyed on the
query and persists them to disk ("enable data reuse"); this is the
production version of that idea for the estimator layer.  Records live
in one append-only JSONL file — every ``put`` writes a single line,
flushes, and fsyncs, so a crash can tear at most the final line, and a
torn line is skipped (and counted) on the next load rather than
poisoning the cache.

Keys reuse the content-addressed canonicalisation from
:mod:`repro.store.keys`: a record's identity is the digest of its meta
header ``{kind, backend, query-fingerprint, code-version}``, where the
code version covers :data:`repro.store.version.ESTIMATOR_CODE_PATHS`
(the power models and the geometry code they derive from).  Any edit
to an energy/area model rotates the version and turns the whole cache
into misses — stale estimates are structurally unreachable — while
leaving campaign-row caches untouched.

Hit/miss telemetry is emitted by the registry (see
:mod:`repro.power.estimator.registry`); the cache itself keeps plain
counters for ``stats`` and tests.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.power.estimator.protocol import Estimation
from repro.power.estimator.query import EstimationQuery
from repro.store.keys import canonical_json, digest
from repro.store.version import ESTIMATOR_CODE_PATHS, code_version

__all__ = [
    "EstimationRecordCache",
    "estimator_code_version",
    "record_key",
]

#: Filename used when the cache path is a directory.
RECORDS_FILENAME = "estimations.jsonl"


def estimator_code_version() -> str:
    """Code version of the estimator-result surface (16 hex chars)."""
    return code_version(paths=ESTIMATOR_CODE_PATHS)


def record_key(
    backend_id: str,
    query: EstimationQuery,
    code: Optional[str] = None,
) -> Tuple[str, Dict[str, object]]:
    """(key, meta) identifying one estimation record.

    The key is the digest of the meta header, so a loaded record's
    stored meta can be cross-checked against the expectation — skew
    (a different backend, query, or code version) reads as a miss.
    """
    meta: Dict[str, object] = {
        "kind": "estimation",
        "backend": backend_id,
        "query": query.fingerprint(),
        "code": code if code is not None else estimator_code_version(),
    }
    return digest(meta), meta


class EstimationRecordCache:
    """Fsync'd JSONL cache of :class:`Estimation` records.

    ``path`` may be a file (used as-is) or a directory (the cache file
    is ``estimations.jsonl`` inside it).  The file is replayed once at
    construction; lookups afterwards are in-memory.  Write failures
    degrade to a structured warning — an unwritable cache never fails
    an estimate.
    """

    def __init__(
        self,
        path: Union[str, Path],
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        path = Path(path)
        if path.is_dir() or (not path.exists() and not path.suffix):
            path.mkdir(parents=True, exist_ok=True)
            path = path / RECORDS_FILENAME
        self.path = path
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.counters: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "skipped_lines": 0,
            "write_failures": 0,
        }
        self._records: Dict[str, Estimation] = {}
        self._replay()

    # -- persistence ---------------------------------------------------------

    def _replay(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        except OSError as exc:
            self.telemetry.warn(
                "estimator.cache_unreadable",
                f"estimation cache {self.path} unreadable: {exc}; "
                "starting cold",
            )
            return
        for line_number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                document = json.loads(line)
                key = document["key"]
                meta = document["meta"]
                estimation = Estimation.from_payload(document["payload"])
                expected = digest(meta)
            except (KeyError, TypeError, ValueError):
                # A torn final line from a crashed writer, or hand
                # damage: skip and count, never serve.
                self.counters["skipped_lines"] += 1
                continue
            if expected != key:
                self.counters["skipped_lines"] += 1
                continue
            # Last writer wins — replay order is append order.
            self._records[key] = estimation

    def _append(self, document: Dict[str, object]) -> bool:
        line = canonical_json(document)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            return True
        except OSError as exc:
            self.counters["write_failures"] += 1
            self.telemetry.warn(
                "estimator.cache_unwritable",
                f"estimation cache {self.path} unwritable: {exc}; "
                "record not persisted",
            )
            return False

    # -- lookups -------------------------------------------------------------

    def get(self, key: str) -> Optional[Estimation]:
        """In-memory lookup; counts a hit or a miss."""
        record = self._records.get(key)
        if record is None:
            self.counters["misses"] += 1
            return None
        self.counters["hits"] += 1
        return record.as_cached()

    def put(
        self,
        key: str,
        meta: Dict[str, object],
        estimation: Estimation,
    ) -> bool:
        """Persist one record (append + fsync) and index it."""
        document: Dict[str, object] = {
            "key": key,
            "meta": meta,
            "payload": estimation.to_payload(),
        }
        persisted = self._append(document)
        self._records[key] = estimation
        self.counters["puts"] += 1
        return persisted

    def __len__(self) -> int:
        return len(self._records)

    def stats(self) -> Dict[str, object]:
        return {
            "path": str(self.path),
            "records": len(self._records),
            "code_version": estimator_code_version(),
            **self.counters,
        }
