"""Pluggable energy/area estimation backends.

The estimator layer splits *what to estimate* (an
:class:`EstimationQuery`) from *how to estimate it* (an
:class:`Estimator` backend).  Backends declare per-query capability as
an :class:`AccuracyEstimation`; the :class:`EstimatorRegistry` routes
each query to the most accurate capable backend and serves repeat
queries from a durable :class:`EstimationRecordCache` keyed on backend
id + query fingerprint + estimator code version.

Two backends ship: ``analytical`` (the original CACTI-flavoured
coefficient models) and ``library`` (table-driven characterisation
entries, including the 9T near-threshold cell the analytic models do
not know).  See ``docs/power.md``.
"""

from repro.power.estimator.analytical import (
    ANALYTICAL_ACCURACY_PCT,
    AnalyticalEstimator,
)
from repro.power.estimator.library import (
    CELL_LIBRARY,
    LIBRARY_ACCURACY_PCT,
    CellCharacterization,
    LibraryEstimator,
    MacroEntry,
    derive_macro_entry,
)
from repro.power.estimator.protocol import (
    AREA_KEYS,
    ENERGY_KEYS,
    LEAKAGE_KEYS,
    AccuracyEstimation,
    Estimation,
    Estimator,
)
from repro.power.estimator.query import EstimationQuery
from repro.power.estimator.records import (
    EstimationRecordCache,
    estimator_code_version,
    record_key,
)
from repro.power.estimator.registry import (
    ESTIMATOR_CHOICES,
    EstimatorRegistry,
    default_registry,
)

__all__ = [
    "ANALYTICAL_ACCURACY_PCT",
    "AREA_KEYS",
    "AccuracyEstimation",
    "AnalyticalEstimator",
    "CELL_LIBRARY",
    "CellCharacterization",
    "ENERGY_KEYS",
    "ESTIMATOR_CHOICES",
    "Estimation",
    "EstimationQuery",
    "EstimationRecordCache",
    "Estimator",
    "EstimatorRegistry",
    "LEAKAGE_KEYS",
    "LIBRARY_ACCURACY_PCT",
    "LibraryEstimator",
    "MacroEntry",
    "default_registry",
    "derive_macro_entry",
    "estimator_code_version",
    "record_key",
]
