"""The library backend: table-driven per-macro energy/area entries.

Instead of analytic coefficient formulas, this backend carries a small
characterisation library — one entry per (cell kind, node) that a
real compile/characterisation flow would have produced — and *derives*
the per-macro numbers from macro geometry, the way
``update_lib_area.py`` in the ASAP7 SRAM generator derives macro area
and GE/bit density from row/column counts.  The derived
:class:`MacroEntry` is the "table row" consumers see: energy per row
read/write and per buffer word, leakage, area, and bit density for one
concrete macro.

The library characterises the paper's 8T and 6T cells at 45/32 nm plus
the 9T near-threshold cell from PAPERS.md (256 kb 9T SRAM with 1k
cells/bit-line) at 45 nm — the second technology family the estimator
interface exists to support.  6T at 32 nm is deliberately absent
(push-rule 6T does not characterise cleanly below 45 nm), which is the
hole the registry's analytical fallback covers.

Characterised entries declare a higher accuracy (85 %) than the
analytical backend's 70 %: a table from a characterisation flow beats
a coefficient model where it applies, so the registry prefers this
backend for tabulated macros and falls back elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ValidationError
from repro.power.estimator.protocol import AccuracyEstimation, Estimation
from repro.power.estimator.query import EstimationQuery
from repro.sram.geometry import ArrayGeometry

__all__ = [
    "CellCharacterization",
    "MacroEntry",
    "LibraryEstimator",
    "CELL_LIBRARY",
    "LIBRARY_ACCURACY_PCT",
    "derive_macro_entry",
]

#: Self-declared accuracy of characterised table entries.
LIBRARY_ACCURACY_PCT = 85.0

#: Leakage supply exponent — shared physics with the analytic model
#: (DIBL-driven superlinear growth).
_LEAKAGE_VDD_EXPONENT = 2.5


@dataclass(frozen=True)
class CellCharacterization:
    """Per-cell/per-column characterisation for one (cell, node).

    Energy numbers are femtojoules at ``vdd_nominal_mv`` and scale as
    (Vdd/Vdd_nominal)^2; leakage scales with the shared superlinear
    exponent.  ``cell_area_f2`` is the drawn cell area in square
    feature sizes; ``array_efficiency`` covers the periphery (decoders,
    sense amps, drivers) a real macro wraps around the bit array.
    """

    cell_kind: str
    node_nm: int
    cell_area_f2: float
    array_efficiency: float
    e_bitline_per_column_fj: float
    e_wordline_per_row_fj: float
    e_sense_per_word_fj: float
    e_write_driver_per_column_fj: float
    e_latch_per_word_fj: float
    leak_per_cell_pw: float
    vdd_nominal_mv: float
    vmin_mv: float


#: The characterisation library: (cell_kind, node_nm) -> entry.
CELL_LIBRARY: Dict[Tuple[str, int], CellCharacterization] = {
    ("8T", 45): CellCharacterization(
        cell_kind="8T",
        node_nm=45,
        cell_area_f2=150.0,
        array_efficiency=0.70,
        e_bitline_per_column_fj=0.85,
        e_wordline_per_row_fj=44.0,
        e_sense_per_word_fj=11.0,
        e_write_driver_per_column_fj=1.7,
        e_latch_per_word_fj=2.8,
        leak_per_cell_pw=17.0,
        vdd_nominal_mv=1000.0,
        vmin_mv=400.0,
    ),
    ("8T", 32): CellCharacterization(
        cell_kind="8T",
        node_nm=32,
        cell_area_f2=150.0,
        array_efficiency=0.68,
        e_bitline_per_column_fj=0.64,
        e_wordline_per_row_fj=33.0,
        e_sense_per_word_fj=8.3,
        e_write_driver_per_column_fj=1.3,
        e_latch_per_word_fj=2.1,
        leak_per_cell_pw=25.0,
        vdd_nominal_mv=900.0,
        vmin_mv=380.0,
    ),
    ("6T", 45): CellCharacterization(
        cell_kind="6T",
        node_nm=45,
        cell_area_f2=155.0,
        array_efficiency=0.72,
        e_bitline_per_column_fj=0.82,
        e_wordline_per_row_fj=42.0,
        e_sense_per_word_fj=11.5,
        e_write_driver_per_column_fj=1.65,
        e_latch_per_word_fj=2.9,
        leak_per_cell_pw=12.5,
        vdd_nominal_mv=1000.0,
        vmin_mv=700.0,
    ),
    # 6T at 32 nm is deliberately uncharacterised: push-rule 6T stops
    # scaling cleanly below 45 nm, so no table entry exists and the
    # registry falls back to the analytical coefficients.
    ("9T", 45): CellCharacterization(
        # Near-threshold 9T (PAPERS.md): one extra transistor over 8T
        # buys enhanced write/read at very low supplies — nominal
        # operation is itself near-threshold, leakage per cell is low,
        # and the Vmin floor sits in the subthreshold neighbourhood.
        cell_kind="9T",
        node_nm=45,
        cell_area_f2=170.0,
        array_efficiency=0.66,
        e_bitline_per_column_fj=0.30,
        e_wordline_per_row_fj=18.0,
        e_sense_per_word_fj=5.0,
        e_write_driver_per_column_fj=0.7,
        e_latch_per_word_fj=1.2,
        leak_per_cell_pw=4.0,
        vdd_nominal_mv=600.0,
        vmin_mv=350.0,
    ),
}


@dataclass(frozen=True)
class MacroEntry:
    """One derived table row: absolute numbers for a concrete macro.

    This is the ``update_lib_area.py`` move: the library stores
    per-cell densities, and the per-macro entry — area, bit density,
    energy per row operation — falls out of the macro's row/column
    counts.
    """

    cell: CellCharacterization
    rows: int
    columns: int
    words_per_row: int

    @property
    def bits(self) -> int:
        return self.rows * self.columns

    @property
    def cell_area_um2(self) -> float:
        feature_um = self.cell.node_nm * 1e-3
        return self.cell.cell_area_f2 * feature_um * feature_um

    @property
    def macro_area_mm2(self) -> float:
        """Bit-array area grossed up by the periphery (array efficiency)."""
        array_um2 = self.bits * self.cell_area_um2
        return array_um2 / self.cell.array_efficiency * 1e-6

    @property
    def bit_density_per_um2(self) -> float:
        """Bits per um^2 of macro — the GE/bit-style density figure."""
        return self.bits / (self.macro_area_mm2 * 1e6)

    def row_read_fj(self, words_routed: int) -> float:
        cell = self.cell
        return (
            cell.e_bitline_per_column_fj * self.columns
            + cell.e_wordline_per_row_fj
            + cell.e_sense_per_word_fj * words_routed
        )

    def row_write_fj(self) -> float:
        cell = self.cell
        return (
            cell.e_wordline_per_row_fj
            + cell.e_write_driver_per_column_fj * self.columns
        )

    def buffer_word_fj(self) -> float:
        return self.cell.e_latch_per_word_fj

    def leakage_uw(self, vdd_mv: float) -> float:
        ratio = vdd_mv / self.cell.vdd_nominal_mv
        per_cell_pw = self.cell.leak_per_cell_pw * (
            ratio ** _LEAKAGE_VDD_EXPONENT
        )
        return per_cell_pw * self.bits * 1e-6

    def voltage_scale(self, vdd_mv: float) -> float:
        ratio = vdd_mv / self.cell.vdd_nominal_mv
        return ratio * ratio


def derive_macro_entry(
    cell_kind: str, node_nm: int, array_geometry: ArrayGeometry
) -> MacroEntry:
    """Derive the per-macro table row for one array geometry."""
    try:
        cell = CELL_LIBRARY[(cell_kind, node_nm)]
    except KeyError:
        raise ValidationError(
            f"no library characterisation for {cell_kind} at {node_nm} nm; "
            f"characterised: {sorted(CELL_LIBRARY)}"
        ) from None
    return MacroEntry(
        cell=cell,
        rows=array_geometry.rows,
        columns=array_geometry.columns,
        words_per_row=array_geometry.words_per_row,
    )


class LibraryEstimator:
    """Protocol backend over the characterisation library."""

    backend_id = "library"

    def supports(self, query: EstimationQuery) -> AccuracyEstimation:
        if (query.cell_kind, query.node_nm) not in CELL_LIBRARY:
            return AccuracyEstimation(0.0)
        return AccuracyEstimation(LIBRARY_ACCURACY_PCT)

    def _entry(self, query: EstimationQuery) -> MacroEntry:
        return derive_macro_entry(
            query.cell_kind,
            query.node_nm,
            ArrayGeometry.for_cache(query.geometry),
        )

    # -- energy --------------------------------------------------------------

    def estimate_energy(self, query: EstimationQuery) -> Estimation:
        entry = self._entry(query)
        if query.action == "leakage_power":
            return self._estimation(
                {
                    "power_uw": entry.leakage_uw(
                        query.vdd_mv  # type: ignore[arg-type]
                    )
                }
            )
        events = query.event_log()
        vdd = (
            query.vdd_mv
            if query.vdd_mv is not None
            else entry.cell.vdd_nominal_mv
        )
        scale = entry.voltage_scale(vdd)
        cell = entry.cell
        read_fj = (
            events.row_reads
            * (
                cell.e_bitline_per_column_fj * entry.columns
                + cell.e_wordline_per_row_fj
            )
            + events.words_routed * cell.e_sense_per_word_fj
        ) * scale
        write_fj = events.row_writes * entry.row_write_fj() * scale
        buffer_fj = (
            (events.set_buffer_reads + events.set_buffer_writes)
            * entry.buffer_word_fj()
            * scale
        )
        return self._estimation(
            {
                "read_fj": read_fj,
                "write_fj": write_fj,
                "buffer_fj": buffer_fj,
                "total_fj": read_fj + write_fj + buffer_fj,
            }
        )

    # -- area ----------------------------------------------------------------

    def estimate_area(self, query: EstimationQuery) -> Estimation:
        entry = self._entry(query)
        geometry = query.geometry
        cache_bits = geometry.size_bytes * 8
        set_buffer_bits = geometry.set_bytes * 8
        tag_buffer_bits = (
            geometry.index_bits + geometry.associativity * geometry.tag_bits
        )
        tag_buffer_with_state = (
            tag_buffer_bits + geometry.associativity + 2
        )
        return self._estimation(
            {
                "cache_data_bits": float(cache_bits),
                "set_buffer_bits": float(set_buffer_bits),
                "tag_buffer_bits": float(tag_buffer_bits),
                "tag_buffer_bits_with_state": float(tag_buffer_with_state),
                "set_buffer_overhead": set_buffer_bits / cache_bits,
                "tag_buffer_overhead": tag_buffer_with_state / cache_bits,
                "cell_area_um2": entry.cell_area_um2,
                "macro_area_mm2": entry.macro_area_mm2,
            }
        )

    def _estimation(self, values: Dict[str, float]) -> Estimation:
        return Estimation(
            values=values,
            accuracy_pct=LIBRARY_ACCURACY_PCT,
            backend=self.backend_id,
        )
