"""The analytical backend: the original CACTI-flavoured models.

This is the pre-existing :class:`EnergyModel` / :class:`AreaModel` /
:class:`LeakageModel` trio, refactored to sit *behind* the estimator
protocol instead of being instantiated directly by ``analysis/``.  It
understands the process nodes with a :class:`TechnologyParams` preset
(45/32 nm) and the 6T/8T cells those models parameterise; anything
else — notably the 9T near-threshold cell — reads as unsupported so
the registry routes it to a characterised backend.

Accuracy is declared at CACTI's conventional self-estimate (70 %,
the figure the Accelergy CACTI plug-in ships with): analytic
coefficient models capture ratios well and absolutes loosely.
"""

from __future__ import annotations

from typing import Dict

from repro.power.area import AreaModel
from repro.power.energy import EnergyModel
from repro.power.estimator.protocol import AccuracyEstimation, Estimation
from repro.power.estimator.query import EstimationQuery
from repro.power.leakage import LeakageModel
from repro.power.params import TECH_32NM, TECH_45NM, TechnologyParams
from repro.sram.geometry import ArrayGeometry

__all__ = ["AnalyticalEstimator", "ANALYTICAL_ACCURACY_PCT"]

#: The CACTI-conventional self-declared accuracy of analytic models.
ANALYTICAL_ACCURACY_PCT = 70.0

#: Node -> technology preset; the analytic coefficients only exist for
#: nodes somebody calibrated.
_TECHNOLOGIES: Dict[int, TechnologyParams] = {
    45: TECH_45NM,
    32: TECH_32NM,
}

#: Cells the analytic trio parameterises (leakage presets + area
#: constants exist for exactly these).
_CELLS = ("6T", "8T")


class AnalyticalEstimator:
    """Protocol adapter over ``EnergyModel``/``AreaModel``/``LeakageModel``."""

    backend_id = "analytical"

    def supports(self, query: EstimationQuery) -> AccuracyEstimation:
        if query.node_nm not in _TECHNOLOGIES:
            return AccuracyEstimation(0.0)
        if query.cell_kind not in _CELLS:
            return AccuracyEstimation(0.0)
        return AccuracyEstimation(ANALYTICAL_ACCURACY_PCT)

    # -- energy --------------------------------------------------------------

    def estimate_energy(self, query: EstimationQuery) -> Estimation:
        technology = _TECHNOLOGIES[query.node_nm]
        array_geometry = ArrayGeometry.for_cache(query.geometry)
        if query.action == "leakage_power":
            model = LeakageModel(technology, array_geometry)
            power_uw = model.array_power_uw(
                query.cell_kind, query.vdd_mv  # type: ignore[arg-type]
            )
            return self._estimation({"power_uw": power_uw})
        energy_model = EnergyModel(
            technology, array_geometry, vdd_mv=query.vdd_mv
        )
        breakdown = energy_model.energy_of(query.event_log())
        return self._estimation(
            {
                "read_fj": breakdown.read_fj,
                "write_fj": breakdown.write_fj,
                "buffer_fj": breakdown.buffer_fj,
                "total_fj": breakdown.total_fj,
            }
        )

    # -- area ----------------------------------------------------------------

    def estimate_area(self, query: EstimationQuery) -> Estimation:
        model = AreaModel(node_nm=query.node_nm)
        report = model.report(query.geometry)
        cell_um2 = model.cell_area_um2(query.cell_kind)
        data_bits = query.geometry.size_bytes * 8
        return self._estimation(
            {
                "cache_data_bits": float(report.cache_data_bits),
                "set_buffer_bits": float(report.set_buffer_bits),
                "tag_buffer_bits": float(
                    model.tag_buffer_bits(query.geometry)
                ),
                "tag_buffer_bits_with_state": float(report.tag_buffer_bits),
                "set_buffer_overhead": report.set_buffer_overhead,
                "tag_buffer_overhead": report.tag_buffer_overhead,
                "cell_area_um2": cell_um2,
                "macro_area_mm2": data_bits * cell_um2 * 1e-6,
            }
        )

    def _estimation(self, values: Dict[str, float]) -> Estimation:
        return Estimation(
            values=values,
            accuracy_pct=ANALYTICAL_ACCURACY_PCT,
            backend=self.backend_id,
        )
