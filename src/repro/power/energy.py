"""Dynamic-energy model over SRAM event logs.

Decomposition per event class (all at word granularity, 64 bit/word):

* row read  = precharge(all columns) + wordline + sense(words routed)
* row write = wordline + write drivers(all columns — the column
  selection constraint means every driver fires on a row write)
* Set-Buffer read/write = per-word latch energy

Because WG/WG+RB replace row activations with buffer activity, their
energy advantage falls straight out of the event log — the Section 5.5
expectation ("replace power hungry cache accesses with accessing a
smaller and hence more power efficient structure") made measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ValidationError
from repro.power.params import TechnologyParams
from repro.sram.events import SRAMEventLog
from repro.sram.geometry import ArrayGeometry

__all__ = ["EnergyBreakdown", "EnergyModel"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Dynamic energy of one run, femtojoules."""

    read_fj: float
    write_fj: float
    buffer_fj: float

    @property
    def array_fj(self) -> float:
        return self.read_fj + self.write_fj

    @property
    def total_fj(self) -> float:
        return self.array_fj + self.buffer_fj

    @property
    def total_nj(self) -> float:
        return self.total_fj * 1e-6


class EnergyModel:
    """Maps an event log to energy for one array geometry and Vdd."""

    def __init__(
        self,
        technology: TechnologyParams,
        array_geometry: ArrayGeometry,
        vdd_mv: Optional[float] = None,
    ) -> None:
        self.technology = technology
        self.array_geometry = array_geometry
        self.vdd_mv = (
            vdd_mv if vdd_mv is not None else technology.vdd_nominal_mv
        )
        self._scale = technology.voltage_scale(self.vdd_mv)

    def row_read_energy_fj(self, words_routed: int) -> float:
        """Energy of one row read routing ``words_routed`` words out."""
        tech = self.technology
        columns = self.array_geometry.columns
        raw = (
            tech.e_precharge_per_column_fj * columns
            + tech.e_wordline_fj
            + tech.e_sense_per_word_fj * words_routed
        )
        return raw * self._scale

    def row_write_energy_fj(self) -> float:
        """Energy of one full-row write (all drivers fire)."""
        tech = self.technology
        columns = self.array_geometry.columns
        raw = tech.e_wordline_fj + tech.e_write_driver_per_column_fj * columns
        return raw * self._scale

    def buffer_word_energy_fj(self) -> float:
        return self.technology.e_buffer_per_word_fj * self._scale

    def energy_of(self, events: SRAMEventLog) -> EnergyBreakdown:
        """Total dynamic energy of a run.

        Word-routing energy is apportioned from the aggregate
        ``words_routed`` counter so mixed single-word and full-row reads
        are charged exactly.
        """
        tech = self.technology
        columns = self.array_geometry.columns
        read_fj = (
            events.row_reads
            * (tech.e_precharge_per_column_fj * columns + tech.e_wordline_fj)
            + events.words_routed * tech.e_sense_per_word_fj
        ) * self._scale
        write_fj = events.row_writes * self.row_write_energy_fj()
        buffer_fj = (
            events.set_buffer_reads + events.set_buffer_writes
        ) * self.buffer_word_energy_fj()
        return EnergyBreakdown(
            read_fj=read_fj, write_fj=write_fj, buffer_fj=buffer_fj
        )

    def savings_vs(
        self, events: SRAMEventLog, baseline_events: SRAMEventLog
    ) -> float:
        """Fractional dynamic-energy saving of ``events`` vs a baseline.

        A zero-energy baseline has no meaningful savings fraction —
        returning 0.0 here would read as "no savings" and quietly
        poison downstream aggregates, so it raises instead.
        """
        baseline = self.energy_of(baseline_events).total_fj
        if baseline == 0:
            raise ValidationError(
                "savings_vs baseline has zero dynamic energy (empty event "
                "log?); a savings fraction against it is undefined"
            )
        return 1.0 - self.energy_of(events).total_fj / baseline
