"""Technology parameters and per-event energy coefficients.

The coefficients are CACTI-6.0-flavoured order-of-magnitude constants
(Muralimanohar et al., the tool the paper cites) for a small L1 array.
Absolute joules are not the reproduction target — *ratios* between
techniques are — so the constants only need to respect the relative
costs: a full-row activation dwarfs a word's mux/sense energy, write
drivers on all columns dominate row writes, and the Set-Buffer (a small
latch row next to the drivers) is roughly an order of magnitude cheaper
per word than an array access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ValidationError

__all__ = ["TechnologyParams", "TECH_45NM", "TECH_32NM"]


@dataclass(frozen=True)
class TechnologyParams:
    """One process-node preset.

    Energy coefficients are in femtojoules at ``vdd_nominal_mv`` and
    scale as (Vdd/Vdd_nominal)^2.

    Attributes:
        node_nm: feature size.
        vdd_nominal_mv: nominal supply.
        vdd_levels_mv: the discrete DVFS supply levels available.
        e_precharge_per_column_fj: RBL precharge, per bit column.
        e_wordline_fj: word-line driver pulse (read or write), per row.
        e_sense_per_word_fj: sense + column mux, per word routed out.
        e_write_driver_per_column_fj: write driver firing, per bit column.
        e_buffer_per_word_fj: Set-Buffer latch read or write, per word.
        leak_per_cell_6t_pw: 6T cell leakage power at nominal Vdd, pW.
        leak_per_cell_8t_pw: 8T cell leakage (two extra transistors).
    """

    node_nm: int
    vdd_nominal_mv: float
    vdd_levels_mv: tuple
    e_precharge_per_column_fj: float = 0.8
    e_wordline_fj: float = 40.0
    e_sense_per_word_fj: float = 12.0
    e_write_driver_per_column_fj: float = 1.6
    e_buffer_per_word_fj: float = 3.0
    leak_per_cell_6t_pw: float = 12.0
    leak_per_cell_8t_pw: float = 16.0

    def __post_init__(self) -> None:
        if self.node_nm <= 0:
            raise ConfigurationError(f"node_nm must be > 0, got {self.node_nm}")
        if self.vdd_nominal_mv <= 0:
            raise ConfigurationError(
                f"vdd_nominal_mv must be > 0, got {self.vdd_nominal_mv}"
            )
        if not self.vdd_levels_mv:
            raise ConfigurationError("at least one DVFS level is required")
        for level in self.vdd_levels_mv:
            if level <= 0:
                raise ConfigurationError(f"bad DVFS level {level}")

    def voltage_scale(self, vdd_mv: float) -> float:
        """Dynamic-energy scale factor (Vdd/Vnominal)^2."""
        if vdd_mv <= 0:
            raise ValidationError(f"vdd_mv must be positive, got {vdd_mv}")
        ratio = vdd_mv / self.vdd_nominal_mv
        return ratio * ratio


TECH_45NM = TechnologyParams(
    node_nm=45,
    vdd_nominal_mv=1000.0,
    vdd_levels_mv=(1000.0, 900.0, 800.0, 700.0, 600.0, 500.0, 400.0),
)
"""45 nm-class preset (the node where 8T overtakes 6T density)."""

TECH_32NM = TechnologyParams(
    node_nm=32,
    vdd_nominal_mv=900.0,
    vdd_levels_mv=(900.0, 800.0, 700.0, 600.0, 500.0, 400.0, 350.0),
    e_precharge_per_column_fj=0.6,
    e_wordline_fj=30.0,
    e_sense_per_word_fj=9.0,
    e_write_driver_per_column_fj=1.2,
    e_buffer_per_word_fj=2.2,
    leak_per_cell_6t_pw=18.0,
    leak_per_cell_8t_pw=24.0,
)
"""32 nm-class preset (Chang et al.'s 8T target node)."""
