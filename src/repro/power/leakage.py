"""Static (leakage) power model.

Leakage is the reason voltage scaling matters for caches: an L1 leaks
continuously through every cell.  The model is deliberately simple —
per-cell leakage at nominal Vdd from the technology preset, scaled
superlinearly with supply (DIBL makes subthreshold leakage roughly
exponential in Vds; a quadratic-plus term is enough for the trends the
reproduction needs).

8T cells pay ~33 % more leakage per cell (two extra transistors) but
tolerate a much lower Vmin (see :mod:`repro.power.voltage`), which is
the trade the paper's introduction describes: at the 6T Vmin the 8T
array leaks more, but the 8T array may keep scaling down and win.
"""

from __future__ import annotations

from repro.power.params import TechnologyParams
from repro.sram.geometry import ArrayGeometry
from repro.errors import ValidationError

__all__ = ["LeakageModel"]

# Exponent of the Vdd dependence of leakage power (I_leak rises with
# Vdd via DIBL and the P=V*I product adds one more power of V).
_LEAKAGE_VDD_EXPONENT = 2.5


class LeakageModel:
    """Array leakage power vs supply voltage."""

    def __init__(
        self, technology: TechnologyParams, array_geometry: ArrayGeometry
    ) -> None:
        self.technology = technology
        self.array_geometry = array_geometry

    def per_cell_pw(self, cell_kind: str, vdd_mv: float) -> float:
        """Leakage power of one cell at ``vdd_mv``, picowatts."""
        if vdd_mv <= 0:
            raise ValidationError(f"vdd_mv must be positive, got {vdd_mv}")
        if cell_kind == "6T":
            nominal = self.technology.leak_per_cell_6t_pw
        elif cell_kind == "8T":
            nominal = self.technology.leak_per_cell_8t_pw
        else:
            raise ValidationError(f"unknown cell kind {cell_kind!r}")
        ratio = vdd_mv / self.technology.vdd_nominal_mv
        return nominal * (ratio ** _LEAKAGE_VDD_EXPONENT)

    def array_power_uw(self, cell_kind: str, vdd_mv: float) -> float:
        """Whole-array leakage power, microwatts."""
        cells = self.array_geometry.total_cells
        return self.per_cell_pw(cell_kind, vdd_mv) * cells * 1e-6

    def scaling_win_fraction(
        self, vdd_6t_min_mv: float, vdd_8t_min_mv: float
    ) -> float:
        """Leakage saving of an 8T array at its Vmin vs 6T at its Vmin.

        Positive when the 8T array's deeper voltage scaling more than
        pays for its extra transistors — the paper's premise.
        """
        power_6t = self.array_power_uw("6T", vdd_6t_min_mv)
        power_8t = self.array_power_uw("8T", vdd_8t_min_mv)
        if power_6t == 0:
            # A zero-power 6T baseline (degenerate geometry or preset)
            # makes the win fraction undefined; refuse rather than
            # report "no win" and mislead the scaling comparison.
            raise ValidationError(
                "6T baseline leakage is zero; the 8T scaling-win "
                "fraction is undefined against a zero-power baseline"
            )
        return 1.0 - power_8t / power_6t
