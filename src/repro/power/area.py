"""Area model — reproduces the paper's Section 5.4.

The paper's two claims:

* the Set-Buffer holds exactly one cache set (128 B at the baseline
  64 KB / 4-way / 32 B geometry) — under 0.2 % of the cache's data
  capacity;
* the Tag-Buffer needs fewer than 150 bits at 48-bit physical
  addresses (set index + one tag per way).

Cell-area constants follow the paper's citations: 8T cells carry a
nominal ~30 % transistor overhead, but Morita et al. observe that in
nodes at and beyond 45 nm, design-rule-friendly 8T layouts are denser
than push-rule 6T cells — encoded here as a node-dependent cell factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheGeometry
from repro.errors import ValidationError

__all__ = ["AreaModel", "AreaReport"]

# Cell areas in F^2 (square feature sizes), planar-node ballparks.
_AREA_6T_F2_LEGACY = 120.0  # push-rule 6T above 45 nm
_AREA_6T_F2_SCALED = 150.0  # 6T stops scaling cleanly at/below 45 nm
_AREA_8T_F2 = 146.0  # regular-layout 8T, stable across nodes

# ECC check bits per 64-bit data word.  Interleaved arrays get away
# with SEC-DED (Hamming 72,64).  Chang et al.'s non-interleaved layout
# must correct the multi-bit bursts interleaving would have spread:
# a DEC-capable BCH over 64 bits needs ~13 check bits (+1 for
# detection), nearly doubling the ECC storage.
_ECC_CHECK_BITS = {"secded": 8, "multi_bit": 14}


@dataclass(frozen=True)
class AreaReport:
    """Section 5.4 numbers for one cache geometry."""

    cache_data_bits: int
    set_buffer_bits: int
    tag_buffer_bits: int
    set_buffer_overhead: float
    tag_buffer_overhead: float

    @property
    def total_overhead(self) -> float:
        return self.set_buffer_overhead + self.tag_buffer_overhead


class AreaModel:
    """Cell/array/buffer area accounting."""

    def __init__(self, node_nm: int = 45) -> None:
        if node_nm <= 0:
            raise ValidationError(f"node_nm must be positive, got {node_nm}")
        self.node_nm = node_nm

    def cell_area_f2(self, cell_kind: str) -> float:
        """Cell area in F^2 for this node."""
        if cell_kind == "8T":
            return _AREA_8T_F2
        if cell_kind == "6T":
            if self.node_nm > 45:
                return _AREA_6T_F2_LEGACY
            return _AREA_6T_F2_SCALED
        raise ValidationError(f"unknown cell kind {cell_kind!r}")

    def cell_area_um2(self, cell_kind: str) -> float:
        feature_um = self.node_nm * 1e-3
        return self.cell_area_f2(cell_kind) * feature_um * feature_um

    def eight_t_denser(self) -> bool:
        """True when 8T beats 6T density at this node (Morita et al.)."""
        return self.cell_area_f2("8T") < self.cell_area_f2("6T")

    # -- Section 5.4 -----------------------------------------------------------

    def tag_buffer_bits(self, geometry: CacheGeometry) -> int:
        """Set index plus one tag per way — the paper's <150-bit count."""
        return geometry.index_bits + geometry.associativity * geometry.tag_bits

    def tag_buffer_bits_with_state(self, geometry: CacheGeometry) -> int:
        """Including per-way valid bits plus buffer valid and Dirty."""
        return (
            self.tag_buffer_bits(geometry) + geometry.associativity + 2
        )

    def set_buffer_bits(self, geometry: CacheGeometry) -> int:
        """One cache set's worth of latches."""
        return geometry.set_bytes * 8

    def ecc_bits(self, geometry: CacheGeometry, scheme: str) -> int:
        """ECC storage for the whole data array under ``scheme``.

        ``"secded"`` is what bit interleaving enables; ``"multi_bit"``
        is what Chang et al.'s non-interleaved layout forces.
        """
        try:
            check_bits = _ECC_CHECK_BITS[scheme]
        except KeyError:
            raise ValidationError(
                f"unknown ECC scheme {scheme!r}; known: "
                f"{sorted(_ECC_CHECK_BITS)}"
            ) from None
        words = geometry.size_bytes // 8
        return words * check_bits

    def ecc_overhead(self, geometry: CacheGeometry, scheme: str) -> float:
        """ECC bits as a fraction of the data bits."""
        return self.ecc_bits(geometry, scheme) / (geometry.size_bytes * 8)

    def report(self, geometry: CacheGeometry) -> AreaReport:
        """Buffer overheads relative to the cache data array."""
        cache_bits = geometry.size_bytes * 8
        set_buffer = self.set_buffer_bits(geometry)
        tag_buffer = self.tag_buffer_bits_with_state(geometry)
        return AreaReport(
            cache_data_bits=cache_bits,
            set_buffer_bits=set_buffer,
            tag_buffer_bits=tag_buffer,
            set_buffer_overhead=set_buffer / cache_bits,
            tag_buffer_overhead=tag_buffer / cache_bits,
        )
