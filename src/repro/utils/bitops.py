"""Bit-level arithmetic helpers.

Cache address decomposition and SRAM array geometry are all powers of
two, so these helpers favour exactness over generality: ``log2_exact``
raises if its argument is not a power of two rather than silently
truncating.
"""

from __future__ import annotations
from repro.errors import ValidationError

__all__ = [
    "is_power_of_two",
    "log2_exact",
    "bit_mask",
    "extract_bits",
    "round_up_pow2",
]


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``n`` such that ``2**n == value``.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValidationError(f"expected a positive power of two, got {value!r}")
    return value.bit_length() - 1


def bit_mask(width: int) -> int:
    """Return a mask with the ``width`` low-order bits set.

    ``bit_mask(0)`` is 0; negative widths are rejected.
    """
    if width < 0:
        raise ValidationError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def extract_bits(value: int, low: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``low``.

    Example:
        >>> extract_bits(0b1101_0110, low=2, width=3)
        5
    """
    if low < 0:
        raise ValidationError(f"low bit index must be non-negative, got {low}")
    return (value >> low) & bit_mask(width)


def round_up_pow2(value: int) -> int:
    """Round ``value`` up to the nearest power of two (min 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()
