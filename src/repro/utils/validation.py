"""Uniform argument validation helpers.

Every constructor in the library validates its inputs eagerly so that a
bad configuration fails at build time with a descriptive message instead
of corrupting a multi-minute simulation half-way through.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union

from repro.utils.bitops import is_power_of_two
from repro.errors import TypeContractError, ValidationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_power_of_two",
    "check_in_range",
    "check_type",
]


def check_positive(name: str, value: Union[int, float]) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: Union[int, float]) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if not is_power_of_two(value):
        raise ValidationError(f"{name} must be a positive power of two, got {value!r}")


def check_in_range(
    name: str,
    value: Union[int, float],
    low: Union[int, float],
    high: Union[int, float],
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_type(
    name: str, value: Any, expected: Union[Type, Tuple[Type, ...]]
) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``.

    ``bool`` is deliberately rejected when ``expected`` is ``int`` alone,
    because a stray ``True`` in a size field is almost always a bug.
    """
    if expected is int and isinstance(value, bool):
        raise TypeContractError(f"{name} must be int, got bool {value!r}")
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else "/".join(t.__name__ for t in expected)
        )
        raise TypeContractError(
            f"{name} must be {expected_names}, got {type(value).__name__} {value!r}"
        )
