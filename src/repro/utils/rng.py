"""Deterministic random sources.

The paper notes that Pin runs are not repeatable, which forced the
authors to evaluate every technique in a single run.  Our substitute
traces are fully repeatable instead: every stochastic component draws
from a :class:`DeterministicRNG` derived from a single experiment seed,
so re-running any figure reproduces it bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar
from repro.errors import TypeContractError

T = TypeVar("T")

__all__ = ["derive_seed", "DeterministicRNG"]


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a stable child seed from a root seed and a name path.

    Uses SHA-256 so that unrelated components (e.g. two benchmarks, or
    the address stream vs. the value stream of one benchmark) never see
    correlated randomness even for adjacent seeds.
    """
    payload = repr(root_seed).encode() + b"\x00" + "\x00".join(names).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class DeterministicRNG:
    """A seeded random source with the handful of draws the library needs.

    Thin wrapper over :mod:`random.Random` that (a) forbids unseeded
    construction and (b) exposes ``fork`` for creating independent child
    streams by name.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeContractError(f"seed must be int, got {type(seed).__name__}")
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    def fork(self, *names: str) -> "DeterministicRNG":
        """Create an independent child stream identified by ``names``."""
        return DeterministicRNG(derive_seed(self._seed, *names))

    def uniform(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one element with the given (unnormalised) weights."""
        return self._random.choices(items, weights=weights, k=1)[0]

    def geometric(self, mean: float) -> int:
        """Geometric draw (support >= 1) with the given mean.

        Used for burst lengths; ``mean <= 1`` degenerates to constant 1.
        """
        if mean <= 1.0:
            return 1
        stop_probability = 1.0 / mean
        length = 1
        while self._random.random() >= stop_probability:
            length += 1
        return length

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def sample_bits(self, width: int) -> int:
        """Uniform ``width``-bit integer."""
        if width <= 0:
            return 0
        return self._random.getrandbits(width)

    def maybe(self, probability: float) -> bool:
        """Bernoulli draw."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def state_snapshot(self) -> Optional[tuple]:
        """Expose internal state for tests that assert stream independence."""
        return self._random.getstate()
