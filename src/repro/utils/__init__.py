"""Shared low-level utilities used across the reproduction.

The submodules are deliberately tiny and dependency-free:

``bitops``
    Power-of-two and bit-field arithmetic used by address mappers and
    SRAM geometry code.
``validation``
    Argument-checking helpers that raise uniform, descriptive errors.
``rng``
    A thin deterministic random-source wrapper so every simulation run
    is repeatable from a single integer seed.
``tables``
    Plain-text table rendering used by the figure-reproduction reports.
"""

from repro.utils.bitops import (
    bit_mask,
    extract_bits,
    is_power_of_two,
    log2_exact,
    round_up_pow2,
)
from repro.utils.rng import DeterministicRNG, derive_seed
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_type,
)

__all__ = [
    "bit_mask",
    "extract_bits",
    "is_power_of_two",
    "log2_exact",
    "round_up_pow2",
    "DeterministicRNG",
    "derive_seed",
    "format_table",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_power_of_two",
    "check_type",
]
