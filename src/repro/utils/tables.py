"""Plain-text table rendering.

The benchmark harness prints each reproduced figure as an aligned text
table (one row per benchmark, one column per series) in the same layout
the paper's bar charts use.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence
from repro.errors import ValidationError

__all__ = ["format_table"]


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with two decimals; all other cells via ``str``.
    The first column is left-aligned (labels), the rest right-aligned
    (numbers), which matches how the reproduced figures read.
    """
    string_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)
