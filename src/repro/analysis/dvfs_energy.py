"""End-to-end energy: the paper's whole pitch in one table.

The introduction's argument chain, priced out:

* a **6T** cache cannot scale below its read-stability Vmin, so it
  burns high-voltage dynamic energy and leakage — but needs no RMW;
* an **8T** cache runs at its much lower Vmin, slashing per-access
  energy and leakage — but bit interleaving forces RMW, clawing back
  dynamic energy through extra array accesses;
* **8T + WG+RB** keeps the low voltage *and* eliminates most of the RMW
  tax: the configuration the paper is arguing for.

For each benchmark this analysis runs the matching controller, charges
dynamic energy from its event log at the cell's floor voltage, and adds
leakage integrated over the run's elapsed cycles (from the timing
model, at the floor level's frequency).  The result is total cache
energy per configuration — who wins, and by how much.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.estimators import resolve_estimator
from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.perf.timing import TimingSimulator
from repro.power.estimator import EstimationQuery, EstimatorRegistry
from repro.power.params import TECH_45NM, TechnologyParams
from repro.power.voltage import DVFSController
from repro.sim.simulator import run_simulation
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import benchmark_names, get_profile

__all__ = ["dvfs_energy_endgame"]

#: The three configurations the paper's introduction compares.
_CONFIGS = (
    ("6T @ 6T-Vmin", "conventional", "6T"),
    ("8T+RMW @ 8T-Vmin", "rmw", "8T"),
    ("8T+WG+RB @ 8T-Vmin", "wg_rb", "8T"),
)


def dvfs_energy_endgame(
    accesses: int = 10_000,
    seed: int = 2012,
    geometry: CacheGeometry = BASELINE_GEOMETRY,
    technology: TechnologyParams = TECH_45NM,
    benchmarks: Optional[Sequence[str]] = None,
    estimator: Optional[Union[str, EstimatorRegistry]] = None,
) -> FigureResult:
    """Total (dynamic + leakage) cache energy per configuration."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    registry = resolve_estimator(estimator)

    floors = {}
    for label, technique, cell in _CONFIGS:
        controller = DVFSController(technology, cell)
        floors[label] = controller.lowest_level()

    rows = []
    totals = {label: 0.0 for label, _, _ in _CONFIGS}
    for name in names:
        trace = materialize(generate_trace(get_profile(name), accesses, seed=seed))
        row = [name]
        for label, technique, cell in _CONFIGS:
            level = floors[label]
            sim_result = run_simulation(trace, technique, geometry)
            dynamic_fj = registry.estimate(
                EstimationQuery.dynamic_energy(
                    sim_result.events,
                    geometry,
                    cell_kind=cell,
                    node_nm=technology.node_nm,
                    vdd_mv=level.vdd_mv,
                )
            )["total_fj"]
            perf = TimingSimulator(technique, geometry).run(trace)
            elapsed_seconds = perf.elapsed_cycles / (
                level.frequency_ghz * 1e9
            )
            leakage_uw = registry.estimate(
                EstimationQuery.leakage_power(
                    geometry,
                    cell_kind=cell,
                    node_nm=technology.node_nm,
                    vdd_mv=level.vdd_mv,
                )
            )["power_uw"]
            leakage_fj = (
                leakage_uw
                * 1e-6  # uW -> W
                * elapsed_seconds
                * 1e15  # J -> fJ
            )
            total_nj = (dynamic_fj + leakage_fj) * 1e-6
            totals[label] += total_nj
            row.append(total_nj)
        rows.append(tuple(row))
    count = len(names)
    rows.append(("AVG",) + tuple(totals[label] / count for label, _, _ in _CONFIGS))

    mean_6t = totals["6T @ 6T-Vmin"] / count
    mean_rmw = totals["8T+RMW @ 8T-Vmin"] / count
    mean_wgrb = totals["8T+WG+RB @ 8T-Vmin"] / count
    return FigureResult(
        figure_id="dvfs_energy",
        title=(
            "Endgame: total cache energy per benchmark run (nJ), each "
            "cell at its Vmin DVFS floor"
        ),
        headers=("benchmark",) + tuple(label for label, _, _ in _CONFIGS),
        rows=rows,
        summary={
            "mean_6t_nj": mean_6t,
            "mean_8t_rmw_nj": mean_rmw,
            "mean_8t_wgrb_nj": mean_wgrb,
            "wgrb_vs_6t_saving_pct": 100.0 * (1 - mean_wgrb / mean_6t),
            "wgrb_vs_rmw_saving_pct": 100.0 * (1 - mean_wgrb / mean_rmw),
        },
    )
