"""ASCII bar-chart rendering for reproduced figures.

The paper's figures are grouped bar charts; :func:`render_bars` turns a
:class:`FigureResult` into the closest terminal equivalent — one block
per row, one horizontal bar per numeric series — so
``repro-8t figure fig9 --bars`` looks like Figure 9 rather than a bare
table.
"""

from __future__ import annotations

from typing import List

from repro.analysis.result import FigureResult
from repro.errors import ValidationError

__all__ = ["render_bars"]

_BAR_CHARACTER = "█"
_HALF_CHARACTER = "▌"


def _bar(value: float, maximum: float, width: int) -> str:
    if maximum <= 0:
        return ""
    units = value / maximum * width
    full = int(units)
    text = _BAR_CHARACTER * full
    if units - full >= 0.5:
        text += _HALF_CHARACTER
    return text


def render_bars(result: FigureResult, width: int = 40) -> str:
    """Render a figure's numeric columns as horizontal bars.

    Non-numeric cells are skipped; bars are scaled to the maximum value
    across all numeric cells so series are comparable (matching the
    shared y-axis of the paper's charts).
    """
    if width < 4:
        raise ValidationError(f"width must be at least 4, got {width}")
    numeric_columns = [
        column
        for column in range(1, len(result.headers))
        if any(
            isinstance(row[column], (int, float)) for row in result.rows
        )
    ]
    maximum = 0.0
    for row in result.rows:
        for column in numeric_columns:
            value = row[column]
            if isinstance(value, (int, float)):
                maximum = max(maximum, float(value))

    label_width = max(
        [len(str(result.headers[c])) for c in numeric_columns] + [1]
    )
    lines: List[str] = [result.title, "=" * len(result.title)]
    for row in result.rows:
        lines.append(str(row[0]))
        for column in numeric_columns:
            value = row[column]
            if not isinstance(value, (int, float)):
                continue
            header = str(result.headers[column]).rjust(label_width)
            bar = _bar(float(value), maximum, width)
            lines.append(f"  {header} |{bar} {value:.2f}")
    return "\n".join(lines)
