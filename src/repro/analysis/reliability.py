"""Reliability analysis: interleaving vs voltage (the paper's premise).

Not a numbered figure in the paper — this quantifies the Section 1/2
claim that bit interleaving plus one-bit correction is what makes
low-voltage 8T caches viable, which is the entire reason the
column-selection problem (and hence RMW, and hence WG) exists.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.result import FigureResult
from repro.sram.ecc import InterleavedRowLayout
from repro.sram.faults import FaultInjector
from repro.utils.rng import DeterministicRNG

__all__ = ["reliability_vs_voltage"]

DEFAULT_VOLTAGES_MV = (1000.0, 800.0, 600.0, 400.0)


def reliability_vs_voltage(
    strikes: int = 20_000,
    voltages_mv: Sequence[float] = DEFAULT_VOLTAGES_MV,
    interleave_words: int = 16,
    seed: int = 2012,
) -> FigureResult:
    """Uncorrectable-strike fraction vs Vdd, with and without interleaving."""
    rng = DeterministicRNG(seed)
    interleaved_layout = InterleavedRowLayout(words=interleave_words)
    flat_layout = InterleavedRowLayout(words=1, bits_per_word=interleaved_layout.columns)
    rows = []
    summary = {}
    for vdd in voltages_mv:
        interleaved = FaultInjector(
            interleaved_layout, rng.fork("interleaved", str(vdd))
        ).inject(strikes, vdd)
        flat = FaultInjector(
            flat_layout, rng.fork("flat", str(vdd))
        ).inject(strikes, vdd)
        rows.append(
            (
                f"{vdd:.0f} mV",
                100.0 * interleaved.uncorrectable_fraction,
                100.0 * flat.uncorrectable_fraction,
            )
        )
        summary[f"interleaved_uncorrectable_{int(vdd)}mv"] = (
            100.0 * interleaved.uncorrectable_fraction
        )
        summary[f"flat_uncorrectable_{int(vdd)}mv"] = (
            100.0 * flat.uncorrectable_fraction
        )
    return FigureResult(
        figure_id="reliability",
        title=(
            "Premise check: uncorrectable strike fraction vs Vdd "
            f"(SEC-DED, {interleave_words}-way interleave vs none, %)"
        ),
        headers=("Vdd", "interleaved", "non-interleaved"),
        rows=rows,
        summary=summary,
    )
