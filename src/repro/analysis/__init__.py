"""Figure-level analyses: one module per paper figure/claim.

Every module produces a :class:`FigureResult` — a labelled table with
exactly the rows/series the paper's figure plots — and
:func:`reproduce_figure` is the front door used by the benchmark
harness and the examples.
"""

from repro.analysis.result import FigureResult
from repro.analysis.frequency import figure3_access_frequency
from repro.analysis.scenarios import figure4_scenarios
from repro.analysis.silent import figure5_silent_writes
from repro.analysis.rmw_overhead import claim_rmw_overhead
from repro.analysis.reductions import (
    figure9_access_reduction,
    figure10_block_size,
    figure11_cache_size,
)
from repro.analysis.area import section54_area
from repro.analysis.power_perf import section55_power_performance
from repro.analysis.reliability import reliability_vs_voltage
from repro.analysis.figures import (
    ESTIMATOR_AWARE_IDS,
    FIGURE_IDS,
    reproduce_figure,
)
from repro.analysis.export import figure_to_csv
from repro.analysis.report import generate_report, write_report
from repro.analysis.bars import render_bars
from repro.analysis.dvfs_energy import dvfs_energy_endgame
from repro.analysis.estimators import resolve_estimator
from repro.analysis.overheads import check_overhead_claims, overhead_report

__all__ = [
    "ESTIMATOR_AWARE_IDS",
    "check_overhead_claims",
    "overhead_report",
    "resolve_estimator",
    "FigureResult",
    "figure3_access_frequency",
    "figure4_scenarios",
    "figure5_silent_writes",
    "claim_rmw_overhead",
    "figure9_access_reduction",
    "figure10_block_size",
    "figure11_cache_size",
    "section54_area",
    "section55_power_performance",
    "reliability_vs_voltage",
    "FIGURE_IDS",
    "reproduce_figure",
    "figure_to_csv",
    "generate_report",
    "write_report",
    "render_bars",
    "dvfs_energy_endgame",
]
