"""Figures 9, 10 and 11 — cache access frequency reduction.

Figure 9: WG and WG+RB vs the RMW baseline at 64 KB / 4-way / 32 B
(paper: 27 % and 33 % on average, bwaves up to 47 % for WG).

Figure 10: the same at 32 KB / 64 B blocks (paper: 29 % and 37 % —
bigger blocks raise the Set-Buffer hit rate).

Figure 11: 32 KB vs 128 KB with 32 B blocks (paper: WG 26.9 %/26.6 %,
WG+RB 32.6 %/32.1 % — essentially insensitive to cache size).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.result import FigureResult
from repro.cache.config import CacheGeometry
from repro.sim.campaign import CampaignResult, run_campaign
from repro.sim.experiment import ExperimentConfig

__all__ = [
    "figure9_access_reduction",
    "figure10_block_size",
    "figure11_cache_size",
]

_TECHNIQUES = ("conventional", "rmw", "wg", "wg_rb")


def _campaign(
    geometry: CacheGeometry,
    accesses: int,
    seed: int,
    benchmarks: Optional[Sequence[str]],
) -> CampaignResult:
    config = ExperimentConfig(
        geometry=geometry,
        benchmarks=tuple(benchmarks) if benchmarks else (),
        techniques=_TECHNIQUES,
        accesses_per_benchmark=accesses,
        seed=seed,
    )
    return run_campaign(config)


def _reduction_rows(campaign: CampaignResult):
    rows = []
    for row in campaign.rows:
        rows.append(
            (
                row.benchmark,
                100.0 * row.access_reduction("wg"),
                100.0 * row.access_reduction("wg_rb"),
            )
        )
    rows.append(
        (
            "AVG",
            100.0 * campaign.mean_reduction("wg"),
            100.0 * campaign.mean_reduction("wg_rb"),
        )
    )
    return rows


def figure9_access_reduction(
    accesses: int = 20_000,
    seed: int = 2012,
    benchmarks: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Reproduce Figure 9 (baseline geometry)."""
    geometry = CacheGeometry(size_bytes=64 * 1024, associativity=4, block_bytes=32)
    campaign = _campaign(geometry, accesses, seed, benchmarks)
    return FigureResult(
        figure_id="fig9",
        title=(
            "Figure 9: access frequency reduction vs RMW, "
            f"{geometry.describe()} (%)"
        ),
        headers=("benchmark", "WG", "WG+RB"),
        rows=_reduction_rows(campaign),
        summary={
            "mean_wg_pct": 100.0 * campaign.mean_reduction("wg"),
            "mean_wgrb_pct": 100.0 * campaign.mean_reduction("wg_rb"),
            "max_wg_pct": 100.0 * campaign.max_reduction("wg"),
        },
        paper_values={
            "mean_wg_pct": 27.0,
            "mean_wgrb_pct": 33.0,
            "max_wg_pct": 47.0,
        },
    )


def figure10_block_size(
    accesses: int = 20_000,
    seed: int = 2012,
    benchmarks: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Reproduce Figure 10 (32 KB cache, 64 B blocks)."""
    geometry = CacheGeometry(size_bytes=32 * 1024, associativity=4, block_bytes=64)
    campaign = _campaign(geometry, accesses, seed, benchmarks)
    return FigureResult(
        figure_id="fig10",
        title=(
            "Figure 10: access frequency reduction vs RMW, "
            f"{geometry.describe()} (%)"
        ),
        headers=("benchmark", "WG", "WG+RB"),
        rows=_reduction_rows(campaign),
        summary={
            "mean_wg_pct": 100.0 * campaign.mean_reduction("wg"),
            "mean_wgrb_pct": 100.0 * campaign.mean_reduction("wg_rb"),
        },
        paper_values={"mean_wg_pct": 29.0, "mean_wgrb_pct": 37.0},
    )


def figure11_cache_size(
    accesses: int = 20_000,
    seed: int = 2012,
    benchmarks: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Reproduce Figure 11 (32 KB vs 128 KB, 32 B blocks)."""
    small = CacheGeometry(size_bytes=32 * 1024, associativity=4, block_bytes=32)
    large = CacheGeometry(size_bytes=128 * 1024, associativity=4, block_bytes=32)
    campaign_small = _campaign(small, accesses, seed, benchmarks)
    campaign_large = _campaign(large, accesses, seed, benchmarks)
    rows = []
    for row_small, row_large in zip(campaign_small.rows, campaign_large.rows):
        rows.append(
            (
                row_small.benchmark,
                100.0 * row_small.access_reduction("wg"),
                100.0 * row_small.access_reduction("wg_rb"),
                100.0 * row_large.access_reduction("wg"),
                100.0 * row_large.access_reduction("wg_rb"),
            )
        )
    rows.append(
        (
            "AVG",
            100.0 * campaign_small.mean_reduction("wg"),
            100.0 * campaign_small.mean_reduction("wg_rb"),
            100.0 * campaign_large.mean_reduction("wg"),
            100.0 * campaign_large.mean_reduction("wg_rb"),
        )
    )
    return FigureResult(
        figure_id="fig11",
        title="Figure 11: access frequency reduction vs RMW, 32KB vs 128KB (%)",
        headers=(
            "benchmark",
            "WG 32KB",
            "WG+RB 32KB",
            "WG 128KB",
            "WG+RB 128KB",
        ),
        rows=rows,
        summary={
            "wg_32k_pct": 100.0 * campaign_small.mean_reduction("wg"),
            "wg_128k_pct": 100.0 * campaign_large.mean_reduction("wg"),
            "wgrb_32k_pct": 100.0 * campaign_small.mean_reduction("wg_rb"),
            "wgrb_128k_pct": 100.0 * campaign_large.mean_reduction("wg_rb"),
        },
        paper_values={
            "wg_32k_pct": 26.9,
            "wg_128k_pct": 26.6,
            "wgrb_32k_pct": 32.6,
            "wgrb_128k_pct": 32.1,
        },
    )
