"""Section 5.4 — area overhead of the Set-Buffer and Tag-Buffer.

The paper: at 64 KB / 4-way / 32 B the Set-Buffer is one 128 B set
(< 0.2 % of the cache) and the Tag-Buffer is under 150 bits at 48-bit
physical addresses.

Area numbers come through the estimator registry (see
:mod:`repro.power.estimator`), so ``--estimator`` selects which
backend's area table answers and cached estimation records are reused
across runs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.estimators import resolve_estimator
from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.power.estimator import EstimationQuery, EstimatorRegistry

__all__ = ["section54_area"]


def section54_area(
    geometries: Sequence[CacheGeometry] = (BASELINE_GEOMETRY,),
    node_nm: int = 45,
    estimator: Optional[Union[str, EstimatorRegistry]] = None,
    cell_kind: str = "8T",
) -> FigureResult:
    """Compute the Section 5.4 area numbers for one or more geometries."""
    registry = resolve_estimator(estimator)
    rows = []
    estimations = []
    for geometry in geometries:
        estimation = registry.estimate(
            EstimationQuery.area(geometry, cell_kind=cell_kind, node_nm=node_nm)
        )
        estimations.append(estimation)
        rows.append(
            (
                geometry.describe(),
                geometry.set_bytes,
                estimation["set_buffer_bits"],
                100.0 * estimation["set_buffer_overhead"],
                estimation["tag_buffer_bits"],
                estimation["tag_buffer_bits_with_state"],
            )
        )
    baseline = estimations[0]
    return FigureResult(
        figure_id="sec5.4",
        title="Section 5.4: buffer area overhead",
        headers=(
            "geometry",
            "set bytes",
            "Set-Buffer bits",
            "Set-Buffer %",
            "Tag-Buffer bits (paper)",
            "Tag-Buffer bits (+state)",
        ),
        rows=rows,
        summary={
            "set_buffer_overhead_pct": 100.0
            * baseline["set_buffer_overhead"],
            "tag_buffer_bits": baseline["tag_buffer_bits"],
        },
        paper_values={
            "set_buffer_overhead_pct": 0.2,
            "tag_buffer_bits": 150.0,
        },
    )
