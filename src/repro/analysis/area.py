"""Section 5.4 — area overhead of the Set-Buffer and Tag-Buffer.

The paper: at 64 KB / 4-way / 32 B the Set-Buffer is one 128 B set
(< 0.2 % of the cache) and the Tag-Buffer is under 150 bits at 48-bit
physical addresses.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.power.area import AreaModel

__all__ = ["section54_area"]


def section54_area(
    geometries: Sequence[CacheGeometry] = (BASELINE_GEOMETRY,),
    node_nm: int = 45,
) -> FigureResult:
    """Compute the Section 5.4 area numbers for one or more geometries."""
    model = AreaModel(node_nm=node_nm)
    rows = []
    for geometry in geometries:
        report = model.report(geometry)
        rows.append(
            (
                geometry.describe(),
                geometry.set_bytes,
                report.set_buffer_bits,
                100.0 * report.set_buffer_overhead,
                model.tag_buffer_bits(geometry),
                report.tag_buffer_bits,
            )
        )
    baseline_report = model.report(geometries[0])
    return FigureResult(
        figure_id="sec5.4",
        title="Section 5.4: buffer area overhead",
        headers=(
            "geometry",
            "set bytes",
            "Set-Buffer bits",
            "Set-Buffer %",
            "Tag-Buffer bits (paper)",
            "Tag-Buffer bits (+state)",
        ),
        rows=rows,
        summary={
            "set_buffer_overhead_pct": 100.0
            * baseline_report.set_buffer_overhead,
            "tag_buffer_bits": float(model.tag_buffer_bits(geometries[0])),
        },
        paper_values={
            "set_buffer_overhead_pct": 0.2,
            "tag_buffer_bits": 150.0,
        },
    )
