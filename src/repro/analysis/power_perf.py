"""Section 5.5 — power and performance directions.

The paper forecasts (without measuring): WG's write-latency cost is off
the critical path and negligible; WG+RB *improves* read latency because
Set-Buffer hits are faster than array reads; both techniques cut power
because they replace full-array activations with small-buffer activity.

This module quantifies all three with the energy model and the
port-contention timing model.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.analysis.estimators import resolve_estimator
from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.errors import ValidationError
from repro.perf.timing import evaluate_performance
from repro.power.estimator import EstimationQuery, EstimatorRegistry
from repro.power.params import TECH_45NM, TechnologyParams
from repro.sim.comparison import compare_techniques
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import benchmark_names, get_profile

__all__ = ["section55_power_performance"]

_TECHNIQUES = ("rmw", "wg", "wg_rb")


def section55_power_performance(
    accesses: int = 15_000,
    seed: int = 2012,
    geometry: CacheGeometry = BASELINE_GEOMETRY,
    technology: TechnologyParams = TECH_45NM,
    benchmarks: Optional[Sequence[str]] = None,
    estimator: Optional[Union[str, EstimatorRegistry]] = None,
) -> FigureResult:
    """Energy savings and read-latency effects of WG / WG+RB vs RMW."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    registry = resolve_estimator(estimator)

    def total_fj(events) -> float:
        estimation = registry.estimate(
            EstimationQuery.dynamic_energy(
                events, geometry, cell_kind="8T", node_nm=technology.node_nm
            )
        )
        return estimation["total_fj"]

    rows = []
    sums = {"wg_energy": 0.0, "wgrb_energy": 0.0, "rmw_lat": 0.0,
            "wg_lat": 0.0, "wgrb_lat": 0.0}
    for name in names:
        trace = materialize(generate_trace(get_profile(name), accesses, seed=seed))
        comparison = compare_techniques(trace, geometry, techniques=_TECHNIQUES)
        baseline_fj = total_fj(comparison.result("rmw").events)
        if baseline_fj == 0:
            raise ValidationError(
                f"benchmark {name!r}: RMW baseline has zero dynamic "
                "energy; savings fractions are undefined"
            )
        wg_saving = 1.0 - total_fj(comparison.result("wg").events) / baseline_fj
        wgrb_saving = (
            1.0 - total_fj(comparison.result("wg_rb").events) / baseline_fj
        )
        perf = evaluate_performance(trace, geometry, techniques=_TECHNIQUES)
        rmw_latency = perf["rmw"].mean_read_latency
        wg_latency = perf["wg"].mean_read_latency
        wgrb_latency = perf["wg_rb"].mean_read_latency
        sums["wg_energy"] += wg_saving
        sums["wgrb_energy"] += wgrb_saving
        sums["rmw_lat"] += rmw_latency
        sums["wg_lat"] += wg_latency
        sums["wgrb_lat"] += wgrb_latency
        rows.append(
            (
                name,
                100.0 * wg_saving,
                100.0 * wgrb_saving,
                rmw_latency,
                wg_latency,
                wgrb_latency,
            )
        )
    count = len(names)
    rows.append(
        (
            "AVG",
            100.0 * sums["wg_energy"] / count,
            100.0 * sums["wgrb_energy"] / count,
            sums["rmw_lat"] / count,
            sums["wg_lat"] / count,
            sums["wgrb_lat"] / count,
        )
    )
    return FigureResult(
        figure_id="sec5.5",
        title=(
            "Section 5.5: dynamic-energy saving vs RMW (%) and mean read "
            "latency (cycles)"
        ),
        headers=(
            "benchmark",
            "WG energy",
            "WG+RB energy",
            "RMW read lat",
            "WG read lat",
            "WG+RB read lat",
        ),
        rows=rows,
        summary={
            "mean_wg_energy_saving_pct": 100.0 * sums["wg_energy"] / count,
            "mean_wgrb_energy_saving_pct": 100.0 * sums["wgrb_energy"] / count,
            "mean_rmw_read_latency": sums["rmw_lat"] / count,
            "mean_wgrb_read_latency": sums["wgrb_lat"] / count,
        },
    )
