"""One-shot reproduction report.

Runs every registered figure and assembles a single markdown document
with the measured-vs-paper summary — the machine-generated counterpart
of EXPERIMENTS.md.  Used by ``repro-8t report``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.estimators import resolve_estimator
from repro.analysis.figures import (
    ESTIMATOR_AWARE_IDS,
    FIGURE_IDS,
    reproduce_figure,
)
from repro.analysis.result import FigureResult
from repro.obs.spans import span
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.power.estimator import EstimatorRegistry

__all__ = ["generate_report", "write_report"]

#: Figures that take no trace-length argument.
_PARAMETERLESS = ("sec5.4",)
_SEED_ONLY = ("reliability",)


def generate_report(
    accesses: int = 15_000,
    seed: int = 2012,
    figure_ids: Optional[Sequence[str]] = None,
    telemetry: Optional[Telemetry] = None,
    estimator: Optional[Union[str, EstimatorRegistry]] = None,
) -> str:
    """Reproduce every figure and render one markdown report.

    Each figure runs under a ``figure.<id>`` span; pass ``telemetry``
    to land those phases in a metrics registry or on a trace timeline
    (the per-figure timings in the report itself come from the same
    spans).  ``estimator`` (a backend spec or a ready registry) is
    shared across every estimator-aware figure, so they draw on one
    estimation-record cache.
    """
    ids = list(figure_ids) if figure_ids else list(FIGURE_IDS)
    telem = telemetry if telemetry is not None else NULL_TELEMETRY
    registry = resolve_estimator(estimator, telemetry=telemetry)
    results: Dict[str, FigureResult] = {}
    timings: Dict[str, float] = {}
    for figure_id in ids:
        kwargs: Dict[str, object] = {}
        if figure_id in _SEED_ONLY:
            kwargs["seed"] = seed
        elif figure_id not in _PARAMETERLESS:
            kwargs["accesses"] = accesses
            kwargs["seed"] = seed
        if figure_id in ESTIMATOR_AWARE_IDS:
            kwargs["estimator"] = registry
        with span(telem, f"figure.{figure_id}", category="figure") as timing:
            results[figure_id] = reproduce_figure(figure_id, **kwargs)
        timings[figure_id] = timing.elapsed
    return _render(results, timings, accesses, seed)


def _render(
    results: Dict[str, FigureResult],
    timings: Dict[str, float],
    accesses: int,
    seed: int,
) -> str:
    lines: List[str] = [
        "# Reproduction report",
        "",
        "Paper: *Performance and Power Solutions for Caches Using 8T "
        "SRAM Cells* (Farahani & Baniasadi, MICRO 2012).",
        "",
        f"Settings: {accesses} accesses/benchmark, seed {seed}.  "
        "Regenerate with `repro-8t report`.",
        "",
        "## Summary (measured vs paper)",
        "",
        "| figure | metric | measured | paper |",
        "|---|---|---|---|",
    ]
    for figure_id, result in results.items():
        for key, value in result.summary.items():
            paper = result.paper_values.get(key)
            paper_text = f"{paper:.2f}" if paper is not None else "—"
            lines.append(
                f"| {figure_id} | {key} | {value:.2f} | {paper_text} |"
            )
    lines.append("")
    lines.append("## Figure tables")
    for figure_id, result in results.items():
        lines.append("")
        lines.append(f"### {figure_id}  ({timings[figure_id]:.1f}s)")
        lines.append("")
        lines.append("```")
        lines.append(result.render())
        lines.append("```")
    lines.append("")
    return "\n".join(lines)


def write_report(
    path: Union[str, Path],
    accesses: int = 15_000,
    seed: int = 2012,
    figure_ids: Optional[Sequence[str]] = None,
    telemetry: Optional[Telemetry] = None,
    estimator: Optional[Union[str, EstimatorRegistry]] = None,
) -> Path:
    """Generate and save the report; returns the path."""
    path = Path(path)
    path.write_text(
        generate_report(
            accesses=accesses,
            seed=seed,
            figure_ids=figure_ids,
            telemetry=telemetry,
            estimator=estimator,
        ),
        encoding="utf-8",
    )
    return path
