"""Section 1 claim — RMW's cache-access overhead.

The paper: "RMW increases cache access frequency by more than 32 % on
average (max 47 %)" relative to a cache without the column selection
issue.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.sim.campaign import run_campaign
from repro.sim.experiment import ExperimentConfig

__all__ = ["claim_rmw_overhead"]


def claim_rmw_overhead(
    accesses: int = 20_000,
    seed: int = 2012,
    geometry: CacheGeometry = BASELINE_GEOMETRY,
    benchmarks: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Measure RMW's access increase over a conventional (6T) cache."""
    config = ExperimentConfig(
        geometry=geometry,
        benchmarks=tuple(benchmarks) if benchmarks else (),
        techniques=("conventional", "rmw"),
        accesses_per_benchmark=accesses,
        seed=seed,
    )
    campaign = run_campaign(config)
    rows = [
        (row.benchmark, 100.0 * row.rmw_overhead) for row in campaign.rows
    ]
    rows.append(("AVG", 100.0 * campaign.mean_rmw_overhead))
    return FigureResult(
        figure_id="claim_rmw",
        title="Section 1 claim: RMW access-frequency increase (%)",
        headers=("benchmark", "increase %"),
        rows=rows,
        summary={
            "mean_overhead_pct": 100.0 * campaign.mean_rmw_overhead,
            "max_overhead_pct": 100.0 * campaign.max_rmw_overhead,
        },
        paper_values={"mean_overhead_pct": 32.0, "max_overhead_pct": 47.0},
    )
