"""Common result container for figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.utils.tables import format_table

__all__ = ["FigureResult"]


@dataclass
class FigureResult:
    """One reproduced figure/table.

    Attributes:
        figure_id: e.g. ``"fig9"`` or ``"sec5.4"``.
        title: human-readable caption.
        headers: column names; first column is the row label.
        rows: table body (floats rendered with two decimals).
        summary: named scalar take-aways (e.g. ``{"mean_wg": 0.24}``),
            used by tests and EXPERIMENTS.md.
        paper_values: what the paper reports for the same scalars, for
            side-by-side presentation where known.
    """

    figure_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    summary: Dict[str, float] = field(default_factory=dict)
    paper_values: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Plain-text rendering of the figure (table + summary lines)."""
        lines = [format_table(self.headers, self.rows, title=self.title)]
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                paper = self.paper_values.get(key)
                if paper is not None:
                    lines.append(
                        f"{key}: measured {value:.3f} | paper {paper:.3f}"
                    )
                else:
                    lines.append(f"{key}: measured {value:.3f}")
        return "\n".join(lines)
