"""File export: figure CSVs, metrics JSON, interval-snapshot CSVs."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Union

from repro.analysis.result import FigureResult
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import IntervalSnapshot

__all__ = ["figure_to_csv", "metrics_to_json", "snapshots_to_csv"]


def figure_to_csv(result: FigureResult, path: Union[str, Path]) -> int:
    """Write a figure's table to CSV; returns the number of data rows."""
    count = 0
    with open(path, "w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow(row)
            count += 1
    return count


def metrics_to_json(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write a registry's full state as pretty-printed JSON.

    This is the ``--metrics-out`` payload: the exact
    :meth:`MetricsRegistry.state_dict` shape, so a file written here
    can be read back and merged into another registry with
    ``MetricsRegistry.from_state(json.load(f))``.
    """
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(registry.state_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


#: Column order of :func:`snapshots_to_csv`.
SNAPSHOT_HEADERS = (
    "label",
    "window_index",
    "end_request",
    "window_size",
    "array_accesses",
    "accesses_per_request",
    "hits",
    "misses",
    "miss_rate",
    "set_buffer_occupancy",
)


def snapshots_to_csv(
    snapshots: Iterable[IntervalSnapshot], path: Union[str, Path]
) -> int:
    """Write interval snapshots (``--snapshots-out``); returns row count."""
    count = 0
    with open(path, "w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(SNAPSHOT_HEADERS)
        for snap in snapshots:
            writer.writerow(
                (
                    snap.label,
                    snap.window_index,
                    snap.end_request,
                    snap.window_size,
                    snap.array_accesses,
                    f"{snap.accesses_per_request:.4f}",
                    snap.hits,
                    snap.misses,
                    f"{snap.miss_rate:.4f}",
                    snap.set_buffer_occupancy,
                )
            )
            count += 1
    return count
