"""CSV export for reproduced figures."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.analysis.result import FigureResult

__all__ = ["figure_to_csv"]


def figure_to_csv(result: FigureResult, path: Union[str, Path]) -> int:
    """Write a figure's table to CSV; returns the number of data rows."""
    count = 0
    with open(path, "w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow(row)
            count += 1
    return count
